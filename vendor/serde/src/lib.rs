//! Offline stub of `serde`.
//!
//! Provides just enough surface for `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` to compile in a container with no
//! registry access. The derives (from the sibling `serde_derive` stub) expand
//! to nothing, so the traits here are never implemented — which is fine, as
//! no code in the workspace calls serialization at runtime. Swap this for the
//! real `serde` once a registry is reachable.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
