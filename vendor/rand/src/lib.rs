//! Offline stub of the `rand` 0.8 API surface used by this workspace.
//!
//! The container has no registry access, so this crate re-implements exactly
//! what `crn-sim` and `crn-popproto` call: `StdRng::seed_from_u64`,
//! `Rng::gen::<f64>()` and `Rng::gen_range` over `f64`/integer ranges. The
//! generator is xoshiro256** seeded via splitmix64 — statistically solid for
//! simulation, deterministic for a given seed, but NOT the same stream as the
//! real `StdRng` (ChaCha12). Swap for the real crate once a registry is
//! reachable; seeded tests pin behaviour only through public outcomes, not
//! raw streams.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types samplable by [`Rng::gen`] (stands in for rand's `Standard` distribution).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = rng.gen();
        let value = self.start + (self.end - self.start) * u;
        // The scaled sum can round up to `end`; keep the range half-open.
        if value >= self.end {
            self.end.next_down().max(self.start)
        } else {
            value
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); span is far below 2^63
                // in practice so a single rejection loop converges fast.
                loop {
                    let x = rng.next_u64();
                    let hi = ((x as u128 * span as u128) >> 64) as u64;
                    let lo = (x as u128 * span as u128) as u64;
                    if lo >= span || lo >= (u64::MAX - span + 1) % span {
                        return self.start + hi as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn same_seed_same_stream() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn gen_range_respects_bounds() {
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..1000 {
                let x = rng.gen_range(3u64..17);
                assert!((3..17).contains(&x));
                let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
                assert!(f > 0.0 && f < 1.0);
                let u: f64 = rng.gen();
                assert!((0.0..1.0).contains(&u));
            }
        }

        #[test]
        fn small_ranges_hit_every_value() {
            let mut rng = StdRng::seed_from_u64(1);
            let mut seen = [false; 5];
            for _ in 0..500 {
                seen[rng.gen_range(0usize..5)] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }
}
