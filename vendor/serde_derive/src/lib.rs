//! Offline stub of `serde_derive`.
//!
//! The container this workspace builds in has no registry access, and nothing
//! in the workspace actually serializes data yet — the `#[derive(Serialize,
//! Deserialize)]` attributes only document intent. These derives therefore
//! accept the same syntax as the real macros (including `#[serde(...)]`
//! helper attributes such as `#[serde(skip)]`) and expand to nothing. Swap
//! `vendor/serde*` for the real crates once a registry is reachable.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Stub of serde's `Serialize` derive: validates nothing, emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Stub of serde's `Deserialize` derive: validates nothing, emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
