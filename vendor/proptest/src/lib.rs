//! Offline stub of the `proptest` API surface used by this workspace.
//!
//! The container has no registry access, so this crate re-implements the
//! subset the workspace's property tests rely on: the `proptest!` macro (with
//! an optional `#![proptest_config(..)]` header), integer-range strategies,
//! `proptest::collection::vec`, and `prop_assert!`/`prop_assert_eq!`. Cases
//! are sampled from a splitmix64 stream seeded by the test's name, so every
//! run explores the same deterministic set of inputs. Unlike the real
//! proptest there is no shrinking: a failing case re-panics with the case
//! number and the sampled arguments after the original assertion message.
//! Swap for the real crate once a registry is reachable.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    // The span must go through the unsigned counterpart: a
                    // signed span wider than $t::MAX would sign-extend via
                    // `as u128` and sample far outside the range.
                    let span = self.end.wrapping_sub(self.start) as $u as u128;
                    let offset = (rng.next_u64() as u128 % span) as $u;
                    self.start.wrapping_add(offset as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(
        i8 => u8, i16 => u16, i32 => u32, i64 => u64,
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize
    );

    impl Strategy for Range<i128> {
        type Value = i128;
        fn sample(&self, rng: &mut TestRng) -> i128 {
            assert!(self.start < self.end, "cannot sample empty range");
            let span = (self.end - self.start) as u128;
            self.start + (rng.next_u64() as u128 % span) as i128
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Number of elements a [`fn@vec`] strategy may produce.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self {
                start: len,
                end: len + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self {
                start: range.start,
                end: range.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy producing vectors of `element`, with a length
    /// either fixed (`usize`) or drawn from a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The deterministic case generator behind `proptest!`.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// splitmix64 stream seeded from the test name: deterministic per test,
    /// decorrelated across tests.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for the named test.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name, xored into a fixed golden seed.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                state: hash ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Checks a boolean property inside `proptest!`, panicking on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Checks an equality property inside `proptest!`, panicking on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }` is
/// expanded to a `#[test]` that checks the body against `config.cases`
/// deterministically sampled argument tuples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            config = <$crate::test_runner::Config as ::std::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                    let sampled = format!(
                        concat!("case ", "{}", $(": ", stringify!($arg), " = {:?}"),+),
                        case $(, &$arg)+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if outcome.is_err() {
                        panic!("property {} failed for {sampled}", stringify!($name));
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i64..6, y in 0u64..10) {
            prop_assert!((-5..6).contains(&x));
            prop_assert!(y < 10);
        }

        #[test]
        fn wide_signed_ranges_stay_in_bounds(x in -100i8..100, y in i64::MIN..i64::MAX) {
            // The spans here exceed the signed type's MAX, which once
            // sign-extended through `as u128` and sampled out of range.
            prop_assert!((-100..100).contains(&x));
            prop_assert!(y < i64::MAX);
        }

        #[test]
        fn vecs_have_requested_lengths(
            fixed in collection::vec(0u64..5, 3),
            ranged in collection::vec(collection::vec(0i64..3, 2), 1..4),
        ) {
            prop_assert_eq!(fixed.len(), 3);
            prop_assert!((1..4).contains(&ranged.len()));
            prop_assert!(ranged.iter().all(|inner| inner.len() == 2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        #[should_panic(expected = "failed for case")]
        fn failing_property_reports_sampled_arguments(x in 0u64..4) {
            prop_assert!(x > 100, "deliberately impossible");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("case");
        let mut b = crate::test_runner::TestRng::deterministic("case");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
