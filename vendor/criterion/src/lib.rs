//! Offline stub of the `criterion` API surface used by this workspace.
//!
//! The container has no registry access, so this crate provides the harness
//! shape the benches compile against: `Criterion::default()` with the builder
//! setters, `bench_function`, `benchmark_group`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark runs
//! `sample_size` timed batches sized to roughly fill `measurement_time` after
//! a warm-up, and prints mean wall-clock time per iteration — honest numbers,
//! but none of real criterion's statistics, outlier analysis, or HTML
//! reports. Swap for the real crate once a registry is reachable.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmark result.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark harness: collects settings, runs and reports benchmarks.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples > 0, "sample size must be positive");
        self.sample_size = samples;
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Sets the warm-up time before measurement starts.
    #[must_use]
    pub fn warm_up_time(mut self, time: Duration) -> Self {
        self.warm_up_time = time;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.into(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    fn run_one<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            sample_time: self.measurement_time / self.sample_size as u32,
            sample_size: self.sample_size,
            mean: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        println!(
            "{id}: {:>12.3?} /iter ({} iterations)",
            bencher.mean, bencher.iterations
        );
    }
}

/// A group of related benchmarks sharing the parent harness settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&id, f);
        self
    }

    /// Ends the group. (No-op in the stub; kept for API compatibility.)
    pub fn finish(self) {}
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    warm_up_time: Duration,
    sample_time: Duration,
    sample_size: usize,
    mean: Duration,
    iterations: u64,
}

impl Bencher {
    /// Measures `routine`, discarding its output via [`black_box`].
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters as u32;

        // Size each sample batch to roughly fill sample_time.
        let batch =
            (self.sample_time.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64;
        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iterations += batch;
        }
        self.mean = total / iterations.max(1) as u32;
        self.iterations = iterations;
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        c.bench_function("stub_smoke", |b| b.iter(|| calls = calls.wrapping_add(1)));
        let mut group = c.benchmark_group("group");
        group.bench_function("inner", |b| b.iter(|| black_box(3 * 7)));
        group.finish();
    }
}
