//! Tiny command-line flag parser.
//!
//! Each subcommand declares which flags take a value and which are switches;
//! everything else is positional.  `--flag value` and `--flag=value` are both
//! accepted.  Unknown flags are usage errors (exit code 2).

use std::collections::{BTreeMap, BTreeSet};

/// Parsed arguments of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Args {
    /// Positional arguments in order (typically file paths).
    pub positionals: Vec<String>,
    values: BTreeMap<String, String>,
    switches: BTreeSet<String>,
}

impl Args {
    /// Parses `raw`, accepting the given value-taking flags and switches.
    ///
    /// # Errors
    ///
    /// Returns a usage message for unknown flags or missing values.
    pub fn parse(
        raw: &[String],
        value_flags: &[&str],
        switch_flags: &[&str],
    ) -> Result<Args, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let token = &raw[i];
            if let Some(flag) = token.strip_prefix('-').filter(|_| token.len() > 1) {
                let flag = flag.strip_prefix('-').unwrap_or(flag);
                let (name, inline) = match flag.split_once('=') {
                    Some((name, value)) => (name, Some(value.to_owned())),
                    None => (flag, None),
                };
                if value_flags.contains(&name) {
                    let value = match inline {
                        Some(value) => value,
                        None => {
                            i += 1;
                            raw.get(i)
                                .cloned()
                                .ok_or_else(|| format!("flag `--{name}` needs a value"))?
                        }
                    };
                    args.values.insert(name.to_owned(), value);
                } else if switch_flags.contains(&name) {
                    if inline.is_some() {
                        return Err(format!("flag `--{name}` does not take a value"));
                    }
                    args.switches.insert(name.to_owned());
                } else {
                    return Err(format!("unknown flag `--{name}`"));
                }
            } else {
                args.positionals.push(token.clone());
            }
            i += 1;
        }
        Ok(args)
    }

    /// The value of `flag`, if given.
    #[must_use]
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// Whether the switch `flag` was given.
    #[must_use]
    pub fn switch(&self, flag: &str) -> bool {
        self.switches.contains(flag)
    }

    /// The value of `flag` parsed as `u64`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns a usage message when the value is not a number.
    pub fn u64_or(&self, flag: &str, default: u64) -> Result<u64, String> {
        match self.value(flag) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| format!("flag `--{flag}` needs an integer, got `{text}`")),
        }
    }

    /// The value of `flag` parsed as `usize`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns a usage message when the value is not a number.
    pub fn usize_or(&self, flag: &str, default: usize) -> Result<usize, String> {
        match self.value(flag) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| format!("flag `--{flag}` needs an integer, got `{text}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn positionals_values_and_switches() {
        let args = Args::parse(
            &strings(&["a.crn", "--bound", "5", "--json", "--seed=9", "b.crn"]),
            &["bound", "seed"],
            &["json"],
        )
        .unwrap();
        assert_eq!(args.positionals, vec!["a.crn", "b.crn"]);
        assert_eq!(args.value("bound"), Some("5"));
        assert_eq!(args.u64_or("seed", 0).unwrap(), 9);
        assert_eq!(args.u64_or("bound", 0).unwrap(), 5);
        assert_eq!(args.u64_or("missing", 7).unwrap(), 7);
        assert!(args.switch("json"));
        assert!(!args.switch("spot"));
    }

    #[test]
    fn short_flags_are_accepted() {
        let args = Args::parse(&strings(&["-o", "out.crn"]), &["o"], &[]).unwrap();
        assert_eq!(args.value("o"), Some("out.crn"));
    }

    #[test]
    fn errors_are_usage_messages() {
        assert!(Args::parse(&strings(&["--nope"]), &[], &[]).is_err());
        assert!(Args::parse(&strings(&["--bound"]), &["bound"], &[]).is_err());
        assert!(Args::parse(&strings(&["--json=1"]), &[], &["json"]).is_err());
        let args = Args::parse(&strings(&["--bound", "x"]), &["bound"], &[]).unwrap();
        assert!(args.u64_or("bound", 0).is_err());
    }
}
