//! The `crn` binary: a thin wrapper over [`crn_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(crn_cli::run(&args));
}
