//! `crn characterize`: the Section 7 pipeline over `fn` items.

use crn_core::{characterize, Characterization, Lemma41Witness};
use crn_lang::ast::{Document, Item};
use crn_lang::spec_to_item;

use crate::args::Args;
use crate::commands::{load_or_usage, usage_error, EXIT_OK, EXIT_VERDICT};
use crate::json::Json;

fn witness_text(witness: &Lemma41Witness) -> String {
    format!(
        "witness (Lemma 4.1): base {}, step {}, delta {}, {} elements verified",
        witness.base, witness.step, witness.delta, witness.verified_elements
    )
}

fn witness_json(witness: &Lemma41Witness) -> Json {
    Json::obj(vec![
        ("base", Json::uints(witness.base.iter().copied())),
        ("step", Json::uints(witness.step.iter().copied())),
        ("delta", Json::uints(witness.delta.iter().copied())),
        (
            "verified_elements",
            Json::UInt(witness.verified_elements as u64),
        ),
    ])
}

/// Runs `crn characterize <file> [--item NAME] [--bound N] [--json]`.
///
/// Characterizes every `fn` item (or the named one) on `[0, bound]^d`.
/// Exit codes: 0 when every examined function received a conclusive verdict
/// (obliviously computable *or* provably impossible), 1 when any verdict was
/// inconclusive, 2 on usage/parse errors.
pub fn run(raw: &[String]) -> i32 {
    let args = match Args::parse(raw, &["item", "bound"], &["json"]) {
        Ok(args) => args,
        Err(message) => return usage_error(&message),
    };
    let [path] = args.positionals.as_slice() else {
        return usage_error("`crn characterize` needs exactly one file");
    };
    let bound = match args.u64_or("bound", 8) {
        Ok(bound) => bound,
        Err(message) => return usage_error(&message),
    };
    let ws = match load_or_usage(path) {
        Ok(ws) => ws,
        Err(code) => return code,
    };
    let targets: Vec<&(String, crn_semilinear::SemilinearFunction)> = match args.value("item") {
        Some(name) => match ws.fns.iter().find(|(n, _)| n == name) {
            Some(entry) => vec![entry],
            None => return usage_error(&format!("`{path}` has no fn item named `{name}`")),
        },
        None => ws.fns.iter().collect(),
    };
    if targets.is_empty() {
        println!("{path}: no fn items to characterize");
        return EXIT_OK;
    }
    let mut exit = EXIT_OK;
    let mut reports = Vec::new();
    for (name, f) in targets {
        let outcome = characterize(f, bound);
        let json = args.switch("json");
        if !json {
            println!("{path}: fn {name} (bound {bound})");
        }
        match outcome {
            Ok(Characterization::ObliviouslyComputable { spec }) => {
                let doc = Document {
                    items: vec![Item::Spec(spec_to_item(&format!("{name}_spec"), &spec))],
                };
                let text = crn_lang::print(&doc);
                if json {
                    reports.push(Json::obj(vec![
                        ("item", Json::str(name.as_str())),
                        ("verdict", Json::str("computable")),
                        ("spec", Json::str(text.as_str())),
                    ]));
                } else {
                    println!("  verdict: obliviously computable");
                    print!("{text}");
                }
            }
            Ok(Characterization::NotObliviouslyComputable { reason, witness }) => {
                if json {
                    reports.push(Json::obj(vec![
                        ("item", Json::str(name.as_str())),
                        ("verdict", Json::str("impossible")),
                        ("reason", Json::str(reason.as_str())),
                        ("witness", witness.as_ref().map_or(Json::Null, witness_json)),
                    ]));
                } else {
                    println!("  verdict: not obliviously computable");
                    println!("  reason: {reason}");
                    if let Some(witness) = &witness {
                        println!("  {}", witness_text(witness));
                    }
                }
            }
            Ok(Characterization::Inconclusive { reason }) => {
                exit = EXIT_VERDICT;
                if json {
                    reports.push(Json::obj(vec![
                        ("item", Json::str(name.as_str())),
                        ("verdict", Json::str("inconclusive")),
                        ("reason", Json::str(reason.as_str())),
                    ]));
                } else {
                    println!("  verdict: inconclusive");
                    println!("  reason: {reason}");
                }
            }
            Err(e) => {
                exit = EXIT_VERDICT;
                if json {
                    reports.push(Json::obj(vec![
                        ("item", Json::str(name.as_str())),
                        ("verdict", Json::str("inconclusive")),
                        ("reason", Json::str(e.to_string().as_str())),
                    ]));
                } else {
                    println!("  verdict: inconclusive");
                    println!("  reason: {e}");
                }
            }
        }
    }
    if args.switch("json") {
        let mut fields = vec![
            ("command", Json::str("characterize")),
            ("file", Json::str(path.as_str())),
            ("bound", Json::UInt(bound)),
            ("results", Json::Arr(reports)),
        ];
        crate::commands::push_metrics(&mut fields);
        println!("{}", Json::obj(fields));
    }
    exit
}
