//! `crn synthesize`: compile a spec (or a characterizable `fn`) into an
//! output-oblivious CRN, emitted back in the `.crn` text format.

use crn_core::{characterize, synthesize, Characterization, ObliviousSpec};
use crn_lang::ast::{Document, Item};
use crn_lang::{crn_to_item, spec_to_item};

use crate::args::Args;
use crate::commands::{load_or_usage, usage_error, EXIT_OK, EXIT_USAGE, EXIT_VERDICT};

/// Characterizes a `fn` item and returns its spec, or the exit code for a
/// non-computable verdict (already reported on stderr).
fn characterized_spec(
    name: &str,
    f: &crn_semilinear::SemilinearFunction,
    bound: u64,
) -> Result<ObliviousSpec, i32> {
    match characterize(f, bound) {
        Ok(Characterization::ObliviouslyComputable { spec }) => Ok(spec),
        Ok(Characterization::NotObliviouslyComputable { reason, .. }) => {
            eprintln!("error: fn `{name}` is not obliviously computable: {reason}");
            Err(EXIT_VERDICT)
        }
        Ok(Characterization::Inconclusive { reason }) => {
            eprintln!("error: characterization of fn `{name}` is inconclusive: {reason}");
            Err(EXIT_VERDICT)
        }
        Err(e) => {
            eprintln!("error: characterization of fn `{name}` failed: {e}");
            Err(EXIT_VERDICT)
        }
    }
}

/// Runs `crn synthesize <file> [--item NAME] [--bound N] [-o OUT]`.
///
/// The source item may be a `spec` (compiled directly via Lemma 6.1/6.2) or a
/// `fn` (characterized first; synthesis proceeds only on a computable
/// verdict).  Without `--item`, a document with exactly one `spec` item (or,
/// failing that, exactly one `fn` item) is unambiguous.
///
/// The emitted document contains the spec and the constructed CRN with a
/// `computes` link, so `crn verify OUT` and `crn sim OUT --input …` work with
/// no further wiring.  Exit codes: 0 on success, 1 when the function is
/// impossible/inconclusive or the construction fails, 2 on usage/parse
/// errors.
pub fn run(raw: &[String]) -> i32 {
    let args = match Args::parse(raw, &["item", "bound", "o"], &[]) {
        Ok(args) => args,
        Err(message) => return usage_error(&message),
    };
    let [path] = args.positionals.as_slice() else {
        return usage_error("`crn synthesize` needs exactly one file");
    };
    let bound = match args.u64_or("bound", 8) {
        Ok(bound) => bound,
        Err(message) => return usage_error(&message),
    };
    let ws = match load_or_usage(path) {
        Ok(ws) => ws,
        Err(code) => return code,
    };

    // Pick the source item and obtain its oblivious spec.
    let find_spec = |name: &str| ws.specs.iter().find(|(n, _)| n == name);
    let find_fn = |name: &str| ws.fns.iter().find(|(n, _)| n == name);
    let (name, spec): (String, ObliviousSpec) = match args.value("item") {
        Some(name) => {
            if let Some((n, spec)) = find_spec(name) {
                (n.clone(), spec.clone())
            } else if let Some((n, f)) = find_fn(name) {
                match characterized_spec(n, f, bound) {
                    Ok(spec) => (n.clone(), spec),
                    Err(code) => return code,
                }
            } else {
                return usage_error(&format!("`{path}` has no spec or fn item named `{name}`"));
            }
        }
        None => match (ws.specs.as_slice(), ws.fns.as_slice()) {
            ([(n, spec)], _) => (n.clone(), spec.clone()),
            ([], [(n, f)]) => match characterized_spec(n, f, bound) {
                Ok(spec) => (n.clone(), spec),
                Err(code) => return code,
            },
            _ => {
                return usage_error(
                    "the document has several candidate items; pick one with `--item NAME`",
                )
            }
        },
    };

    let crn = match synthesize(&spec) {
        Ok(crn) => crn,
        Err(e) => {
            eprintln!("error: the Lemma 6.2 construction failed: {e}");
            return EXIT_VERDICT;
        }
    };
    let spec_name = format!("{name}_spec");
    let crn_name = format!("{name}_crn");
    let doc = Document {
        items: vec![
            Item::Spec(spec_to_item(&spec_name, &spec)),
            Item::Crn(crn_to_item(&crn_name, &crn, Some(&spec_name), None)),
        ],
    };
    let text = crn_lang::print(&doc);
    match args.value("o") {
        Some(out) => {
            if let Err(e) = std::fs::write(out, &text) {
                eprintln!("error: cannot write `{out}`: {e}");
                return EXIT_USAGE;
            }
            eprintln!(
                "synthesized `{name}` -> {out}: {} species, {} reactions, output-oblivious: {}",
                crn.species_count(),
                crn.reaction_count(),
                crn.is_output_oblivious()
            );
        }
        None => print!("{text}"),
    }
    EXIT_OK
}
