//! `crn compose`: materialize a `pipeline` item into a self-contained `.crn`
//! document through the capture-proof composition engine.

use crn_lang::ast::{Document, Item};
use crn_lang::crn_to_item;

use crate::args::Args;
use crate::commands::lint::LintReport;
use crate::commands::{
    load_or_usage, resolve_link, usage_error, EXIT_OK, EXIT_USAGE, EXIT_VERDICT,
};
use crate::json::Json;

/// Runs `crn compose <file> [--item NAME] [-o OUT] [--json]
/// [--allow-non-oblivious] [--deny-warnings]`.
///
/// Composes the named `pipeline` item (or the document's only one) and emits
/// the result as a self-contained document: the linked `fn`/`spec` item (if
/// any) plus the composed CRN with its `computes` link, ready for
/// `crn verify OUT` and `crn sim OUT --input …`.
///
/// Observation 2.2 only covers wirings whose upstream modules are
/// output-oblivious, so a pipeline that feeds a non-oblivious stage forward
/// is refused with exit code 1 unless `--allow-non-oblivious` is given (the
/// escape hatch that reproduces the paper's Section 1.2 counterexample).
///
/// Structural lint findings (`C001`–`C009`, see `crn lint`) on the composed
/// CRN are printed to stderr — stdout carries the composed document — and
/// listed in the `--json` payload; with `--deny-warnings` any finding also
/// forces exit 1.  Exit codes: 0 composed, 1 refused wiring,
/// dangling/mismatched `computes` link, or denied warning, 2 usage/parse
/// errors.
pub fn run(raw: &[String]) -> i32 {
    let args = match Args::parse(
        raw,
        &["item", "o"],
        &["json", "allow-non-oblivious", "deny-warnings"],
    ) {
        Ok(args) => args,
        Err(message) => return usage_error(&message),
    };
    let [path] = args.positionals.as_slice() else {
        return usage_error("`crn compose` needs exactly one file");
    };
    let ws = match load_or_usage(path) {
        Ok(ws) => ws,
        Err(code) => return code,
    };
    let name: &str = match args.value("item") {
        Some(name) => match ws.pipeline(name) {
            Some(_) => name,
            None => return usage_error(&format!("`{path}` has no pipeline item named `{name}`")),
        },
        None => match ws.pipelines.as_slice() {
            [(name, _)] => name,
            [] => return usage_error(&format!("`{path}` has no pipeline items to compose")),
            _ => {
                return usage_error(
                    "the document has several pipeline items; pick one with `--item NAME`",
                )
            }
        },
    };
    let (Some(info), Some(lowered)) = (ws.pipeline(name), ws.crn(name)) else {
        return usage_error(&format!("`{path}` has no pipeline item named `{name}`"));
    };

    if !info.non_oblivious_feeders.is_empty() && !args.switch("allow-non-oblivious") {
        eprintln!(
            "error: pipeline `{name}` feeds non-output-oblivious stage{} {} into a downstream \
             module; Observation 2.2 does not apply, so the composed CRN may overproduce",
            if info.non_oblivious_feeders.len() == 1 {
                ""
            } else {
                "s"
            },
            info.non_oblivious_feeders
                .iter()
                .map(|s| format!("`{s}`"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        eprintln!(
            "help: make the stage output-oblivious (e.g. via Observation 2.4), or pass \
             `--allow-non-oblivious` to compose anyway"
        );
        return EXIT_VERDICT;
    }

    // A dangling or dimension-mismatched computes link is a verdict failure,
    // consistent with `crn check`/`crn verify`.
    if let Some(computes) = lowered.computes.as_deref() {
        if let Err(problem) = resolve_link(&ws, name, computes) {
            eprintln!("error: {problem}");
            return EXIT_VERDICT;
        }
    }

    // Lint the composed CRN: capture-renamed internal species that end up
    // dead or an output that a stage still consumes are exactly the defects
    // composition can introduce.  Warnings go to stderr because stdout
    // carries the composed document.
    let summary = crate::commands::lint::collect(&ws);
    let warnings: Vec<LintReport> = summary
        .warnings
        .into_iter()
        .filter(|w| w.item == name)
        .collect();
    let notes: Vec<_> = summary
        .notes
        .into_iter()
        .filter(|n| n.item == name)
        .collect();
    if !args.switch("json") {
        for warning in &warnings {
            eprint!("{}", warning.rendered);
        }
        for note in &notes {
            eprintln!("note: {}: {}", note.item, note.message);
        }
    }
    let exit = if warnings.is_empty() || !args.switch("deny-warnings") {
        EXIT_OK
    } else {
        EXIT_VERDICT
    };

    let mut items = Vec::new();
    if let Some(computes) = lowered.computes.as_deref() {
        if let Some(linked) = ws
            .doc
            .items
            .iter()
            .find(|item| item.name() == computes && !item.is_crn_like())
        {
            items.push(linked.clone());
        }
    }
    items.push(Item::Crn(crn_to_item(
        name,
        &lowered.crn,
        lowered.computes.as_deref(),
        None,
    )));
    let text = crn_lang::print(&Document { items });

    // Write the output file first: a failed write must not leave a success
    // report on stdout (machine consumers parse the --json payload).
    if let Some(out) = args.value("o") {
        if let Err(e) = std::fs::write(out, &text) {
            eprintln!("error: cannot write `{out}`: {e}");
            return EXIT_USAGE;
        }
    }
    if args.switch("json") {
        let mut fields = vec![
            ("command", Json::str("compose")),
            ("file", Json::str(path.as_str())),
            ("item", Json::str(name)),
            ("stages", Json::UInt(info.stage_count as u64)),
            ("species", Json::UInt(lowered.crn.species_count() as u64)),
            ("reactions", Json::UInt(lowered.crn.reaction_count() as u64)),
            (
                "output_oblivious",
                Json::Bool(lowered.crn.is_output_oblivious()),
            ),
            (
                "non_oblivious_stages",
                Json::Arr(
                    info.non_oblivious_feeders
                        .iter()
                        .map(|s| Json::str(s.as_str()))
                        .collect(),
                ),
            ),
            (
                "warnings",
                Json::Arr(warnings.iter().map(LintReport::to_json).collect()),
            ),
            (
                "notes",
                Json::Arr(
                    notes
                        .iter()
                        .map(crate::commands::lint::LintNote::to_json)
                        .collect(),
                ),
            ),
            ("document", Json::str(text.as_str())),
        ];
        crate::commands::push_metrics(&mut fields);
        println!("{}", Json::obj(fields));
        return exit;
    }
    match args.value("o") {
        Some(out) => {
            eprintln!(
                "composed pipeline `{name}` ({} stages) -> {out}: {} species, {} reactions, \
                 output-oblivious: {}",
                info.stage_count,
                lowered.crn.species_count(),
                lowered.crn.reaction_count(),
                lowered.crn.is_output_oblivious()
            );
        }
        None => print!("{text}"),
    }
    exit
}
