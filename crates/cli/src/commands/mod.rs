//! The `crn` subcommands.
//!
//! Every command returns a process exit code with a fixed meaning:
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success: the command ran and its verdict is positive |
//! | 1 | verdict failure: the command ran but found a negative answer (a failing input, an invalid presentation, an inconclusive characterization, a non-converging simulation) |
//! | 2 | usage or parse error: bad flags, unreadable file, or a `.crn` document that does not parse/lower |
//!
//! Corpus CI steps assert on these classes, so they are part of the CLI's
//! contract; see `DESIGN.md`.

pub mod characterize;
pub mod check;
pub mod compose;
pub mod fmt;
pub mod lint;
pub mod profile;
pub mod sim;
pub mod synthesize;
pub mod verify;

use crate::json::Json;
use crate::workspace::{Target, Workspace};

/// Success.
pub const EXIT_OK: i32 = 0;
/// The command ran but its verdict is negative.
pub const EXIT_VERDICT: i32 = 1;
/// Bad usage, unreadable input, or a document that does not parse/lower.
pub const EXIT_USAGE: i32 = 2;

/// Loads a workspace, mapping failures to a printed message + exit 2.
pub(crate) fn load_or_usage(path: &str) -> Result<Workspace, i32> {
    Workspace::load(path).map_err(|message| {
        eprintln!("{message}");
        EXIT_USAGE
    })
}

/// Prints a usage error and returns exit 2.
pub(crate) fn usage_error(message: &str) -> i32 {
    eprintln!("error: {message}");
    eprintln!("run `crn help` for usage");
    EXIT_USAGE
}

/// Resolves the `computes` link of a crn item (existence + dimension check
/// only; no box validation).  Returns a human-readable problem on failure.
pub(crate) fn resolve_link<'a>(
    ws: &'a Workspace,
    crn_name: &str,
    computes: &str,
) -> Result<Target<'a>, String> {
    let target = ws.target(computes).ok_or_else(|| {
        format!("crn `{crn_name}` computes `{computes}`, but no fn or spec item has that name")
    })?;
    // Do not trust the caller to have resolved the crn: an unresolved name
    // here is a usage problem to report, not a precondition to panic on.
    let crn = ws
        .crn(crn_name)
        .ok_or_else(|| format!("no crn or pipeline item named `{crn_name}`"))?;
    if crn.crn.dim() != target.dim() {
        return Err(format!(
            "crn `{crn_name}` has {} inputs but `{computes}` has {} parameters",
            crn.crn.dim(),
            target.dim()
        ));
    }
    Ok(target)
}

/// Resolves the `computes` target of a crn item, additionally validating
/// that it evaluates on the whole box `[0, bound]^d` so a later
/// [`Target::eval`] sweep cannot silently coerce failures to 0.  Commands
/// that evaluate a single point should use [`resolve_link`] +
/// [`Target::try_eval`] instead (a box sized by the input magnitude would
/// enumerate `(max+1)^d` points).
pub(crate) fn resolve_target<'a>(
    ws: &'a Workspace,
    crn_name: &str,
    computes: &str,
    bound: u64,
) -> Result<Target<'a>, String> {
    let target = resolve_link(ws, crn_name, computes)?;
    target
        .validate_on_box(bound)
        .map_err(|e| format!("`{computes}` {e}"))?;
    Ok(target)
}

/// Appends the versioned `metrics` object (see [`crn_report::metrics_json`])
/// to a `--json` report's top-level fields when profiling is enabled.  The
/// field is absent without `--profile`, so stdout stays byte-identical for
/// unprofiled runs.
pub(crate) fn push_metrics(fields: &mut Vec<(&str, Json)>) {
    if crn_obs::enabled() {
        fields.push(("metrics", crn_report::metrics_json(&crn_obs::snapshot())));
    }
}

/// Parses a comma-separated input vector such as `3,5`.
pub(crate) fn parse_input(text: &str) -> Result<Vec<u64>, String> {
    text.split(',')
        .map(|part| {
            part.trim()
                .parse::<u64>()
                .map_err(|_| format!("`--input` needs comma-separated counts, got `{text}`"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_vector_parsing() {
        assert_eq!(parse_input("3,5").unwrap(), vec![3, 5]);
        assert_eq!(parse_input(" 7 ").unwrap(), vec![7]);
        assert!(parse_input("3;5").is_err());
        assert!(parse_input("").is_err());
    }

    #[test]
    fn resolve_target_checks_names_and_dims() {
        let ws = Workspace::from_source(
            "mem.crn",
            "fn one(x) { case x >= 0: 1; }\n\
             crn c { inputs X1 X2; output Y; computes one; X1 + X2 -> Y; }\n\
             crn d { inputs X; output Y; computes nope; X -> Y; }\n",
        )
        .unwrap();
        let err = resolve_target(&ws, "c", "one", 3).unwrap_err();
        assert!(err.contains("2 inputs"), "{err}");
        let err = resolve_target(&ws, "d", "nope", 3).unwrap_err();
        assert!(err.contains("no fn or spec item"), "{err}");
    }
}
