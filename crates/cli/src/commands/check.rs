//! `crn check`: parse, lower and validate one or more documents.

use crate::args::Args;
use crate::commands::lint::{LintNote, LintReport};
use crate::commands::{resolve_target, usage_error, EXIT_OK, EXIT_USAGE, EXIT_VERDICT};
use crate::json::Json;
use crate::workspace::Workspace;

/// Runs `crn check <file>... [--bound N] [--json] [--deny-warnings]`.
///
/// Exit codes: 2 when any file does not parse or lower; 1 when every file
/// loads but some content is invalid (a `fn` presentation that is not
/// total/disjoint on the box, a `spec` that is not nondecreasing, a dangling
/// or dimension-mismatched `computes` link); 0 otherwise.  All files are
/// always examined (the worst class wins), so a batch `--json` report covers
/// every file even when one fails to load.
///
/// Structural lint findings (`C001`–`C009`, see `crn lint`) are printed as
/// non-blocking warnings and listed in the `--json` payload, along with any
/// "analysis incomplete" truncation notes; with `--deny-warnings` any
/// finding also forces exit 1 (notes never do).
pub fn run(raw: &[String]) -> i32 {
    let args = match Args::parse(raw, &["bound"], &["json", "deny-warnings"]) {
        Ok(args) => args,
        Err(message) => return usage_error(&message),
    };
    if args.positionals.is_empty() {
        return usage_error("`crn check` needs at least one file");
    }
    let bound = match args.u64_or("bound", 6) {
        Ok(bound) => bound,
        Err(message) => return usage_error(&message),
    };
    let mut exit = EXIT_OK;
    let mut reports = Vec::new();
    for path in &args.positionals {
        let ws = match Workspace::load(path) {
            Ok(ws) => ws,
            Err(message) => {
                exit = exit.max(EXIT_USAGE);
                if args.switch("json") {
                    reports.push(Json::obj(vec![
                        ("file", Json::str(path.as_str())),
                        ("ok", Json::Bool(false)),
                        ("problems", Json::Arr(vec![Json::str(message.as_str())])),
                    ]));
                } else {
                    eprintln!("{message}");
                }
                continue;
            }
        };
        let mut problems: Vec<String> = Vec::new();
        for (name, f) in &ws.fns {
            if let Err(e) = f.validate_on_box(bound) {
                problems.push(format!(
                    "fn `{name}` is not a valid presentation on [0, {bound}]^{}: {e}",
                    f.dim()
                ));
            }
        }
        for (name, spec) in &ws.specs {
            match spec.check_nondecreasing_on_box(bound) {
                Ok(None) => {}
                Ok(Some((x, y))) => problems.push(format!(
                    "spec `{name}` is not nondecreasing: f({x}) > f({y}) although {x} ≤ {y}"
                )),
                Err(e) => problems.push(format!("spec `{name}` cannot be evaluated: {e}")),
            }
        }
        for (name, lowered) in &ws.crns {
            if let Some(computes) = &lowered.computes {
                if let Err(problem) = resolve_target(&ws, name, computes, bound) {
                    problems.push(problem);
                }
            }
        }
        let summary = crate::commands::lint::collect(&ws);
        let warnings = summary.warnings;
        if args.switch("json") {
            reports.push(Json::obj(vec![
                ("file", Json::str(path.as_str())),
                ("crns", Json::UInt(ws.crns.len() as u64)),
                ("fns", Json::UInt(ws.fns.len() as u64)),
                ("specs", Json::UInt(ws.specs.len() as u64)),
                ("ok", Json::Bool(problems.is_empty())),
                (
                    "problems",
                    Json::Arr(problems.iter().map(|p| Json::str(p.as_str())).collect()),
                ),
                (
                    "warnings",
                    Json::Arr(warnings.iter().map(LintReport::to_json).collect()),
                ),
                (
                    "notes",
                    Json::Arr(summary.notes.iter().map(LintNote::to_json).collect()),
                ),
            ]));
        } else {
            if problems.is_empty() {
                println!(
                    "{path}: ok ({} crn, {} fn, {} spec item{})",
                    ws.crns.len(),
                    ws.fns.len(),
                    ws.specs.len(),
                    if ws.doc.items.len() == 1 { "" } else { "s" }
                );
                for (name, lowered) in &ws.crns {
                    let kind = match ws.pipeline(name) {
                        Some(info) => format!("pipeline {name} ({} stages)", info.stage_count),
                        None => format!("crn {name}"),
                    };
                    println!(
                        "  {kind}: {} species, {} reactions, output-oblivious: {}",
                        lowered.crn.species_count(),
                        lowered.crn.reaction_count(),
                        lowered.crn.is_output_oblivious()
                    );
                }
            } else {
                println!("{path}: INVALID");
                for problem in &problems {
                    println!("  {problem}");
                }
            }
            for warning in &warnings {
                println!(
                    "  warning[{}] {}: {}",
                    warning.code, warning.item, warning.message
                );
            }
            for note in &summary.notes {
                println!("  note {}: {}", note.item, note.message);
            }
        }
        if !problems.is_empty() || (!warnings.is_empty() && args.switch("deny-warnings")) {
            exit = exit.max(EXIT_VERDICT);
        }
    }
    if args.switch("json") {
        let mut fields = vec![
            ("command", Json::str("check")),
            ("files", Json::Arr(reports)),
        ];
        crate::commands::push_metrics(&mut fields);
        println!("{}", Json::obj(fields));
    }
    exit
}
