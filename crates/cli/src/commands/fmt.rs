//! `crn fmt`: canonical formatting (the pretty-printer as a command).

use crate::args::Args;
use crate::commands::{usage_error, EXIT_OK, EXIT_USAGE, EXIT_VERDICT};

/// Runs `crn fmt <file>... [--write | --check]`.
///
/// Without flags the canonical form is printed to stdout.  `--write`
/// rewrites each file in place; `--check` prints nothing and exits 1 when
/// any file is not already canonical (this is how the corpus stays in
/// round-trip form).
pub fn run(raw: &[String]) -> i32 {
    let args = match Args::parse(raw, &[], &["write", "check"]) {
        Ok(args) => args,
        Err(message) => return usage_error(&message),
    };
    if args.positionals.is_empty() {
        return usage_error("`crn fmt` needs at least one file");
    }
    if args.switch("write") && args.switch("check") {
        return usage_error("`--write` and `--check` are mutually exclusive");
    }
    let mut exit = EXIT_OK;
    for path in &args.positionals {
        let source = match std::fs::read_to_string(path) {
            Ok(source) => source,
            Err(e) => {
                eprintln!("error: cannot read `{path}`: {e}");
                return EXIT_USAGE;
            }
        };
        let doc = match crn_lang::parse(&source) {
            Ok(doc) => doc,
            Err(d) => {
                eprint!("{}", d.render(&source, path));
                return EXIT_USAGE;
            }
        };
        let canonical = crn_lang::print(&doc);
        if args.switch("check") {
            if canonical != source {
                println!("{path}: not canonical (run `crn fmt --write {path}`)");
                exit = EXIT_VERDICT;
            }
        } else if args.switch("write") {
            if canonical != source {
                if let Err(e) = std::fs::write(path, &canonical) {
                    eprintln!("error: cannot write `{path}`: {e}");
                    return EXIT_USAGE;
                }
                println!("{path}: rewritten");
            }
        } else {
            print!("{canonical}");
        }
    }
    exit
}
