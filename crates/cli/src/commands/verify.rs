//! `crn verify`: reachability-based verification of `computes` claims.

use crn_model::reachability::oracle::{check_on_box_naive, check_on_box_naive_stats};
use crn_model::{
    check_on_box, check_on_box_baseline, check_on_box_baseline_stats, check_on_box_reference,
    check_on_box_reference_stats, check_on_box_stats, BoxCheckStats,
};
use crn_sim::runner::spot_check_on_box;

use crate::args::Args;
use crate::commands::{load_or_usage, resolve_target, usage_error, EXIT_OK, EXIT_VERDICT};
use crate::json::Json;

/// Runs `crn verify <file> [--item NAME] [--bound N] [--max-configs N]
/// [--engine incremental|baseline|reference|seed] [--stats] [--spot]
/// [--max-steps N] [--seed S] [--json] [--deny-warnings]`.
///
/// For each `crn` item with a `computes` link (or the named one), checks
/// stable computation of the linked function on every input of
/// `[0, bound]^d`: exhaustively via the reachability engine by default, or by
/// seeded stochastic spot checks with `--spot` (for CRNs whose reachable
/// space outgrows `--max-configs`).
///
/// `--engine` selects the exhaustive backend: `incremental` (default) runs
/// the incremental box engine (symmetry orbits, cross-point memoization),
/// `baseline` (alias `pruned`) the analysis-pruned engine without the
/// incremental layers, `reference` the unpruned hash-interned engine and
/// `seed` the naive fixpoint oracle — all must produce identical verdicts,
/// which the CI corpus smoke step cross-checks.  `--engine` is meaningless
/// under `--spot` and refused there.
///
/// `--stats` prints one line of engine counters per verified item to stderr
/// as JSON — points checked versus statically decided, cache-served or
/// symmetry-replayed, cache hit rate, explored configurations — and, with
/// `--json`, attaches the same object to the item's report.  Every exhaustive
/// engine supports it; counters a backend does not track (e.g. the seed
/// oracle's cache fields) simply stay zero.  It is refused under `--spot`,
/// which never runs a box sweep.
///
/// Structural lint findings on the verified items are echoed to stderr in
/// short form (stdout carries the verdicts); with `--deny-warnings` any
/// finding forces exit 1 even when every verdict passes.  Exit codes: 0 all
/// pass, 1 any failing or unverifiable input (or denied warning), 2
/// usage/parse errors.
pub fn run(raw: &[String]) -> i32 {
    let args = match Args::parse(
        raw,
        &[
            "item",
            "bound",
            "max-configs",
            "max-steps",
            "seed",
            "engine",
        ],
        &["spot", "json", "deny-warnings", "stats"],
    ) {
        Ok(args) => args,
        Err(message) => return usage_error(&message),
    };
    let [path] = args.positionals.as_slice() else {
        return usage_error("`crn verify` needs exactly one file");
    };
    let (bound, max_configs, max_steps, seed) = match (
        args.u64_or("bound", 4),
        args.usize_or("max-configs", 200_000),
        args.u64_or("max-steps", 1_000_000),
        args.u64_or("seed", 7),
    ) {
        (Ok(a), Ok(b), Ok(c), Ok(d)) => (a, b, c, d),
        (Err(m), ..) | (_, Err(m), ..) | (_, _, Err(m), _) | (_, _, _, Err(m)) => {
            return usage_error(&m)
        }
    };
    let engine = args.value("engine").unwrap_or("incremental");
    if !matches!(
        engine,
        "incremental" | "baseline" | "pruned" | "reference" | "seed"
    ) {
        return usage_error(&format!(
            "unknown engine `{engine}`; expected `incremental`, `baseline`, `reference` or `seed`"
        ));
    }
    if args.value("engine").is_some() && args.switch("spot") {
        return usage_error("`--engine` selects the exhaustive backend; drop it or drop `--spot`");
    }
    if args.switch("stats") && args.switch("spot") {
        return usage_error(
            "`--stats` reports the exhaustive engines' box-sweep counters; drop `--spot`",
        );
    }
    let ws = match load_or_usage(path) {
        Ok(ws) => ws,
        Err(code) => return code,
    };
    // Lint findings ride along on stderr so a verified-but-smelly document is
    // never silently blessed; stdout stays reserved for the verdicts.
    let summary = crate::commands::lint::collect(&ws);
    for warning in &summary.warnings {
        eprintln!(
            "warning[{}] {}: {}",
            warning.code, warning.item, warning.message
        );
    }
    for note in &summary.notes {
        eprintln!("note: {}: {}", note.item, note.message);
    }
    let denied_warnings = !summary.warnings.is_empty() && args.switch("deny-warnings");
    let targets: Vec<&String> = match args.value("item") {
        Some(name) => match ws.crns.iter().find(|(n, _)| n == name) {
            Some((n, lowered)) => {
                if lowered.computes.is_none() {
                    return usage_error(&format!(
                        "crn `{name}` has no `computes` link, so there is nothing to verify against"
                    ));
                }
                vec![n]
            }
            None => return usage_error(&format!("`{path}` has no crn item named `{name}`")),
        },
        None => ws
            .crns
            .iter()
            .filter(|(_, lowered)| lowered.computes.is_some())
            .map(|(n, _)| n)
            .collect(),
    };
    if targets.is_empty() {
        println!("{path}: no crn items with a `computes` link; nothing to verify");
        return if denied_warnings {
            EXIT_VERDICT
        } else {
            EXIT_OK
        };
    }
    let mut exit = if denied_warnings {
        EXIT_VERDICT
    } else {
        EXIT_OK
    };
    let mut reports = Vec::new();
    for name in targets {
        // Both lookups were established above, but re-resolve defensively:
        // an inconsistency is a usage error (exit 2), never a panic.
        let Some(lowered) = ws.crn(name) else {
            return usage_error(&format!("`{path}` has no crn item named `{name}`"));
        };
        let Some(computes) = lowered.computes.as_deref() else {
            return usage_error(&format!(
                "crn `{name}` has no `computes` link, so there is nothing to verify against"
            ));
        };
        let json = args.switch("json");
        let fail = |message: String, reports: &mut Vec<Json>| {
            if json {
                reports.push(Json::obj(vec![
                    ("item", Json::str(name.as_str())),
                    ("computes", Json::str(computes)),
                    ("ok", Json::Bool(false)),
                    ("reason", Json::str(message.as_str())),
                ]));
            } else {
                println!(
                    "{path}: crn {name} vs {computes} on [0, {bound}]^{}: FAIL",
                    lowered.crn.dim()
                );
                println!("  {message}");
            }
            EXIT_VERDICT
        };
        let target = match resolve_target(&ws, name, computes, bound) {
            Ok(target) => target,
            Err(problem) => {
                exit = fail(problem, &mut reports);
                continue;
            }
        };
        let eval = |x: &crn_numeric::NVec| target.eval(x);
        let mut stats: Option<BoxCheckStats> = None;
        if args.switch("spot") {
            match spot_check_on_box(&lowered.crn, eval, bound, max_steps, seed) {
                Ok(0) => {}
                Ok(mismatches) => {
                    exit = fail(
                        format!("{mismatches} input(s) missed the expected output within {max_steps} steps"),
                        &mut reports,
                    );
                    continue;
                }
                Err(e) => {
                    exit = fail(format!("simulation failed: {e}"), &mut reports);
                    continue;
                }
            }
        } else {
            // All backends share one verdict contract; the stdout success
            // line is engine-independent on purpose, so CI can diff the
            // incremental run against the other engines byte for byte.
            let outcome = if args.switch("stats") {
                let (outcome, sweep_stats) = match engine {
                    "reference" => {
                        check_on_box_reference_stats(&lowered.crn, eval, bound, max_configs)
                    }
                    "seed" => check_on_box_naive_stats(&lowered.crn, eval, bound, max_configs),
                    "baseline" | "pruned" => {
                        check_on_box_baseline_stats(&lowered.crn, eval, bound, max_configs)
                    }
                    _ => check_on_box_stats(&lowered.crn, eval, bound, max_configs),
                };
                stats = Some(sweep_stats);
                outcome
            } else {
                match engine {
                    "reference" => check_on_box_reference(&lowered.crn, eval, bound, max_configs),
                    "seed" => check_on_box_naive(&lowered.crn, eval, bound, max_configs),
                    "baseline" | "pruned" => {
                        check_on_box_baseline(&lowered.crn, eval, bound, max_configs)
                    }
                    _ => check_on_box(&lowered.crn, eval, bound, max_configs),
                }
            };
            if let Some(sweep_stats) = &stats {
                // One self-contained JSON line per item on stderr, so stdout
                // stays byte-comparable across engines.
                eprintln!(
                    "{}",
                    Json::obj(vec![
                        ("item", Json::str(name.as_str())),
                        ("stats", stats_object(sweep_stats)),
                    ])
                );
            }
            match outcome {
                Ok(None) => {}
                Ok(Some(verdict)) => {
                    exit = fail(
                        format!(
                            "input {} expects {}: {}",
                            verdict.input,
                            verdict.expected_output,
                            verdict
                                .failure
                                .unwrap_or_else(|| "stable computation fails".to_owned())
                        ),
                        &mut reports,
                    );
                    continue;
                }
                Err(e) => {
                    exit = fail(
                        format!("exhaustive search gave up: {e}; retry with --spot or a larger --max-configs"),
                        &mut reports,
                    );
                    continue;
                }
            }
        }
        let method = if args.switch("spot") {
            "spot"
        } else {
            "exhaustive"
        };
        if json {
            let mut fields = vec![
                ("item", Json::str(name.as_str())),
                ("computes", Json::str(computes)),
                ("method", Json::str(method)),
                ("bound", Json::UInt(bound)),
                ("ok", Json::Bool(true)),
            ];
            if let Some(sweep_stats) = &stats {
                fields.push(("stats", stats_object(sweep_stats)));
            }
            reports.push(Json::obj(fields));
        } else {
            println!(
                "{path}: crn {name} vs {computes} on [0, {bound}]^{}: ok ({method})",
                lowered.crn.dim()
            );
        }
    }
    if args.switch("json") {
        let mut fields = vec![
            ("command", Json::str("verify")),
            ("file", Json::str(path.as_str())),
            ("results", Json::Arr(reports)),
        ];
        crate::commands::push_metrics(&mut fields);
        println!("{}", Json::obj(fields));
    }
    exit
}

/// The `--stats` engine counters as a JSON object.
fn stats_object(stats: &BoxCheckStats) -> Json {
    Json::obj(vec![
        ("points", Json::UInt(stats.points)),
        ("evaluated", Json::UInt(stats.evaluated)),
        ("symmetry_skipped", Json::UInt(stats.symmetry_skipped)),
        ("static_pass", Json::UInt(stats.static_pass)),
        ("static_fail", Json::UInt(stats.static_fail)),
        ("decided", Json::UInt(stats.decided)),
        ("cache_served", Json::UInt(stats.cache_served)),
        ("configs_explored", Json::UInt(stats.configs_explored)),
        ("cache_lookups", Json::UInt(stats.cache_lookups)),
        ("cache_hits", Json::UInt(stats.cache_hits)),
        ("cache_entries", Json::UInt(stats.cache_entries)),
        ("publish_suppressed", Json::UInt(stats.publish_suppressed)),
        ("cache_hit_rate", Json::Float(stats.cache_hit_rate())),
    ])
}
