//! `crn profile`: check, verify and sim back to back, with a per-phase
//! breakdown.

use crn_model::check_on_box;
use crn_numeric::NVec;
use crn_sim::Ensemble;

use crate::args::Args;
use crate::commands::{
    load_or_usage, resolve_link, resolve_target, usage_error, EXIT_OK, EXIT_VERDICT,
};
use crate::json::Json;

/// Runs `crn profile <file> [--item NAME] [--bound N] [--trials N] [--seed S]
/// [--max-configs N] [--max-steps N] [--json]`.
///
/// Profiling-first sibling of running `crn check`, `crn verify` and `crn sim`
/// separately: the [`crn_obs`] layer is forced on, the document flows through
/// four phases — `load` (parse + lower), `check` (lint), `verify` (exhaustive
/// reachability for every `computes` link) and `sim` (one Gillespie ensemble
/// per item with an `init` declaration) — and stdout gets a per-phase wall
/// time breakdown.  With `--json` the report also carries the full versioned
/// `metrics` object, exactly as `--json --profile` would on the individual
/// commands.
///
/// The defaults (`--bound 3`, `--trials 8`) are deliberately smaller than the
/// verify/sim defaults: this command is a profiling sweep, not a gate.  Lint
/// findings are echoed to stderr as usual.  Exit codes: 0 every phase passed,
/// 1 any verify or sim failure, 2 usage/parse errors.
pub fn run(raw: &[String]) -> i32 {
    let args = match Args::parse(
        raw,
        &[
            "item",
            "bound",
            "trials",
            "seed",
            "max-configs",
            "max-steps",
        ],
        &["json"],
    ) {
        Ok(args) => args,
        Err(message) => return usage_error(&message),
    };
    let [path] = args.positionals.as_slice() else {
        return usage_error("`crn profile` needs exactly one file");
    };
    let (bound, trials, seed, max_configs, max_steps) = match (
        args.u64_or("bound", 3),
        args.u64_or("trials", 8),
        args.u64_or("seed", 1),
        args.usize_or("max-configs", 200_000),
        args.u64_or("max-steps", 1_000_000),
    ) {
        (Ok(a), Ok(b), Ok(c), Ok(d), Ok(e)) => (a, b, c, d, e),
        (Err(m), ..)
        | (_, Err(m), ..)
        | (_, _, Err(m), ..)
        | (_, _, _, Err(m), _)
        | (_, _, _, _, Err(m)) => return usage_error(&m),
    };
    let Ok(trials) = u32::try_from(trials.max(1)) else {
        return usage_error("`--trials` is too large");
    };
    // Force profiling on for the phases; when the caller already enabled it
    // (global `--profile`), leave the registry lifecycle to the driver.
    let was_enabled = crn_obs::enabled();
    if !was_enabled {
        crn_obs::reset();
        crn_obs::set_enabled(true);
    }
    let outcome = phases(
        path,
        args.value("item"),
        bound,
        trials,
        seed,
        max_configs,
        max_steps,
    );
    let snapshot = crn_obs::snapshot();
    if !was_enabled {
        crn_obs::set_enabled(false);
        crn_obs::reset();
    }
    let (exit, report) = match outcome {
        Ok(result) => result,
        Err(code) => return code,
    };
    let nanos = |phase: &str| phase_nanos(&snapshot, phase);
    if args.switch("json") {
        let phase = |name: &str, extra: Vec<(&'static str, Json)>| {
            let mut fields = vec![
                ("name", Json::str(name)),
                ("nanos", Json::UInt(nanos(name))),
            ];
            fields.extend(extra);
            Json::obj(fields)
        };
        let fields = vec![
            ("command", Json::str("profile")),
            ("file", Json::str(path.as_str())),
            ("bound", Json::UInt(bound)),
            ("trials", Json::UInt(u64::from(trials))),
            ("seed", Json::UInt(seed)),
            (
                "phases",
                Json::Arr(vec![
                    phase("load", vec![]),
                    phase("check", vec![("warnings", Json::UInt(report.warnings))]),
                    phase(
                        "verify",
                        vec![
                            ("items", Json::UInt(report.verified)),
                            ("failures", Json::UInt(report.verify_failures)),
                        ],
                    ),
                    phase(
                        "sim",
                        vec![
                            ("items", Json::UInt(report.simulated)),
                            ("failures", Json::UInt(report.sim_failures)),
                        ],
                    ),
                ]),
            ),
            ("ok", Json::Bool(exit == EXIT_OK)),
            ("metrics", crn_report::metrics_json(&snapshot)),
        ];
        println!("{}", Json::obj(fields));
    } else {
        println!("{path}: profile (bound {bound}, trials {trials}, seed {seed})");
        println!("  load    {}", crn_obs::format_nanos(nanos("load")));
        println!(
            "  check   {}  ({} warning(s))",
            crn_obs::format_nanos(nanos("check")),
            report.warnings
        );
        println!(
            "  verify  {}  ({} item(s), {} failure(s))",
            crn_obs::format_nanos(nanos("verify")),
            report.verified,
            report.verify_failures
        );
        println!(
            "  sim     {}  ({} item(s), {} failure(s))",
            crn_obs::format_nanos(nanos("sim")),
            report.simulated,
            report.sim_failures
        );
    }
    exit
}

/// Per-phase outcome counts (wall times live in the span snapshot).
#[derive(Default)]
struct PhaseReport {
    warnings: u64,
    verified: u64,
    verify_failures: u64,
    simulated: u64,
    sim_failures: u64,
}

/// Total nanoseconds of the span named `phase`, wherever it nested (at the
/// root without the global `--profile`, under `cli.profile/` with it).
fn phase_nanos(snapshot: &crn_obs::MetricsSnapshot, phase: &str) -> u64 {
    snapshot
        .spans
        .iter()
        .find(|(path, _)| path == phase || path.ends_with(&format!("/{phase}")))
        .map_or(0, |(_, span)| span.total_nanos)
}

/// Runs the four phases; `Err` carries a usage exit code.
fn phases(
    path: &str,
    item: Option<&str>,
    bound: u64,
    trials: u32,
    seed: u64,
    max_configs: usize,
    max_steps: u64,
) -> Result<(i32, PhaseReport), i32> {
    let ws = {
        let _span = crn_obs::span("load");
        load_or_usage(path)?
    };
    if let Some(name) = item {
        if ws.crn(name).is_none() {
            return Err(usage_error(&format!(
                "`{path}` has no crn item named `{name}`"
            )));
        }
    }
    let mut report = PhaseReport::default();
    let summary = {
        let _span = crn_obs::span("check");
        crate::commands::lint::collect(&ws)
    };
    for warning in &summary.warnings {
        eprintln!(
            "warning[{}] {}: {}",
            warning.code, warning.item, warning.message
        );
    }
    for note in &summary.notes {
        eprintln!("note: {}: {}", note.item, note.message);
    }
    report.warnings = summary.warnings.len() as u64;
    let mut exit = EXIT_OK;
    {
        let _span = crn_obs::span("verify");
        for (name, lowered) in &ws.crns {
            if item.is_some_and(|only| only != name) {
                continue;
            }
            let Some(computes) = lowered.computes.as_deref() else {
                continue;
            };
            report.verified += 1;
            let ok = match resolve_target(&ws, name, computes, bound) {
                Err(_) => false,
                Ok(target) => {
                    let eval = |x: &NVec| target.eval(x);
                    matches!(
                        check_on_box(&lowered.crn, eval, bound, max_configs),
                        Ok(None)
                    )
                }
            };
            if !ok {
                report.verify_failures += 1;
                exit = EXIT_VERDICT;
            }
        }
    }
    {
        let _span = crn_obs::span("sim");
        for (name, lowered) in &ws.crns {
            if item.is_some_and(|only| only != name) {
                continue;
            }
            let x = match &lowered.init {
                Some(init) => init.clone(),
                None if lowered.crn.dim() == 0 => NVec::zeros(0),
                None => continue,
            };
            report.simulated += 1;
            let expected = lowered
                .computes
                .as_deref()
                .and_then(|computes| resolve_link(&ws, name, computes).ok())
                .and_then(|target| target.try_eval(&x).ok());
            let ok = match Ensemble::new(&lowered.crn)
                .with_max_steps(max_steps)
                .run(&x, trials, seed)
            {
                Err(_) => false,
                Ok(summary) => {
                    let converged = summary.silent_fraction == 1.0 && summary.outputs.len() == 1;
                    match expected {
                        None => converged,
                        Some(value) => converged && summary.outputs == vec![value],
                    }
                }
            };
            if !ok {
                report.sim_failures += 1;
                exit = EXIT_VERDICT;
            }
        }
    }
    Ok((exit, report))
}
