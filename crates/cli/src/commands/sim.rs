//! `crn sim`: stochastic (Gillespie) ensemble simulation.

use crn_numeric::NVec;
use crn_sim::Ensemble;

use crate::args::Args;
use crate::commands::{load_or_usage, parse_input, resolve_link, usage_error};
use crate::commands::{EXIT_OK, EXIT_VERDICT};
use crate::json::Json;

/// Runs `crn sim <file> [--item NAME] [--input a,b,…] [--trials N]
/// [--workers W] [--seed S] [--max-steps N] [--json] [--deny-warnings]`.
///
/// Simulates each targeted `crn` item as an [`Ensemble`] of independent
/// Gillespie trials on its input — `--input` if given, otherwise the item's
/// `init` declaration.  A run *converges* when every trial reaches silence
/// with one common output value; when the item has a `computes` link the
/// output must also equal the linked function's value.
///
/// Structural lint findings on the document are echoed to stderr in short
/// form; with `--deny-warnings` any finding forces exit 1 even when every
/// trial converges.  Exit codes: 0 all converged (and correct), 1 otherwise
/// (or denied warning), 2 usage/parse errors.
pub fn run(raw: &[String]) -> i32 {
    let args = match Args::parse(
        raw,
        &["item", "input", "trials", "workers", "seed", "max-steps"],
        &["json", "deny-warnings"],
    ) {
        Ok(args) => args,
        Err(message) => return usage_error(&message),
    };
    let [path] = args.positionals.as_slice() else {
        return usage_error("`crn sim` needs exactly one file");
    };
    let (trials, workers, seed, max_steps) = match (
        args.u64_or("trials", 16),
        args.usize_or("workers", 0),
        args.u64_or("seed", 1),
        args.u64_or("max-steps", 10_000_000),
    ) {
        (Ok(a), Ok(b), Ok(c), Ok(d)) => (a, b, c, d),
        (Err(m), ..) | (_, Err(m), ..) | (_, _, Err(m), _) | (_, _, _, Err(m)) => {
            return usage_error(&m)
        }
    };
    let Ok(trials) = u32::try_from(trials.max(1)) else {
        return usage_error("`--trials` is too large");
    };
    let ws = match load_or_usage(path) {
        Ok(ws) => ws,
        Err(code) => return code,
    };
    let explicit_input = match args.value("input").map(parse_input).transpose() {
        Ok(input) => input,
        Err(message) => return usage_error(&message),
    };
    // Lint findings ride along on stderr, mirroring `crn verify`: a trial
    // that converges on a structurally defective CRN is still worth flagging.
    let summary = crate::commands::lint::collect(&ws);
    for warning in &summary.warnings {
        eprintln!(
            "warning[{}] {}: {}",
            warning.code, warning.item, warning.message
        );
    }
    for note in &summary.notes {
        eprintln!("note: {}: {}", note.item, note.message);
    }
    let denied_warnings = !summary.warnings.is_empty() && args.switch("deny-warnings");
    let targets: Vec<&String> = match args.value("item") {
        Some(name) => match ws.crns.iter().find(|(n, _)| n == name) {
            Some((n, _)) => vec![n],
            None => return usage_error(&format!("`{path}` has no crn item named `{name}`")),
        },
        None => {
            let simulable: Vec<&String> = ws
                .crns
                .iter()
                .filter(|(_, lowered)| {
                    // Zero-input CRNs need no init: their input is ().
                    explicit_input.is_some() || lowered.init.is_some() || lowered.crn.dim() == 0
                })
                .map(|(n, _)| n)
                .collect();
            if explicit_input.is_some() && simulable.len() > 1 {
                return usage_error(
                    "`--input` with several crn items is ambiguous; pick one with `--item NAME`",
                );
            }
            simulable
        }
    };
    if targets.is_empty() {
        if explicit_input.is_some() {
            return usage_error(&format!(
                "`--input` was given but `{path}` has no crn items to simulate"
            ));
        }
        println!("{path}: no crn items with an `init` declaration; nothing to simulate");
        return if denied_warnings {
            EXIT_VERDICT
        } else {
            EXIT_OK
        };
    }
    let mut exit = if denied_warnings {
        EXIT_VERDICT
    } else {
        EXIT_OK
    };
    let mut reports = Vec::new();
    for name in targets {
        // Resolved defensively: an unresolved target is a usage error
        // (exit 2), never a panic.
        let Some(lowered) = ws.crn(name) else {
            return usage_error(&format!("`{path}` has no crn item named `{name}`"));
        };
        let x = match (&explicit_input, &lowered.init) {
            (Some(input), _) => NVec::from(input.clone()),
            (None, Some(init)) => init.clone(),
            (None, None) if lowered.crn.dim() == 0 => NVec::zeros(0),
            (None, None) => {
                return usage_error(&format!(
                    "crn `{name}` has no `init` declaration; give an input with `--input a,b,…`"
                ))
            }
        };
        if x.dim() != lowered.crn.dim() {
            return usage_error(&format!(
                "crn `{name}` takes {} inputs, got {}",
                lowered.crn.dim(),
                x.dim()
            ));
        }
        // Resolve the expected output when a computes link exists (a dangling
        // link is a verdict failure here, consistent with `crn check`).
        // Only the one input point is evaluated (no box scan — `x` can be
        // huge), and evaluation failures are surfaced, not coerced to 0.
        let expected = match &lowered.computes {
            None => None,
            Some(computes) => {
                let value = resolve_link(&ws, name, computes).and_then(|target| {
                    target
                        .try_eval(&x)
                        .map_err(|e| format!("`{computes}` cannot be evaluated at {x}: {e}"))
                });
                match value {
                    Ok(value) => Some(value),
                    Err(problem) => {
                        println!("{path}: crn {name}: FAIL\n  {problem}");
                        exit = EXIT_VERDICT;
                        continue;
                    }
                }
            }
        };
        let mut ensemble = Ensemble::new(&lowered.crn).with_max_steps(max_steps);
        if workers > 0 {
            ensemble = ensemble.with_workers(workers);
        }
        let summary = match ensemble.run(&x, trials, seed) {
            Ok(summary) => summary,
            Err(e) => return usage_error(&format!("simulation of crn `{name}` failed: {e}")),
        };
        let converged = summary.silent_fraction == 1.0 && summary.outputs.len() == 1;
        let correct = match expected {
            None => converged,
            Some(value) => converged && summary.outputs == vec![value],
        };
        if !correct {
            exit = EXIT_VERDICT;
        }
        if args.switch("json") {
            reports.push(Json::obj(vec![
                ("item", Json::str(name.as_str())),
                ("input", Json::uints(x.iter().copied())),
                ("trials", Json::UInt(u64::from(trials))),
                ("seed", Json::UInt(seed)),
                ("outputs", Json::uints(summary.outputs.iter().copied())),
                ("expected", expected.map_or(Json::Null, Json::UInt)),
                ("silent_fraction", Json::Float(summary.silent_fraction)),
                ("mean_steps", Json::Float(summary.steps.mean)),
                ("p95_steps", Json::Float(summary.steps.p95)),
                ("mean_time", Json::Float(summary.time.mean)),
                ("converged", Json::Bool(converged)),
                ("correct", Json::Bool(correct)),
            ]));
        } else {
            let outputs: Vec<String> = summary.outputs.iter().map(u64::to_string).collect();
            println!(
                "{path}: crn {name} on {x}: outputs {{{}}}, silent {:.0}%, mean steps {:.1}{}",
                outputs.join(", "),
                summary.silent_fraction * 100.0,
                summary.steps.mean,
                match expected {
                    None => String::new(),
                    Some(value) => format!(
                        ", expected {value}: {}",
                        if correct { "ok" } else { "MISMATCH" }
                    ),
                }
            );
        }
    }
    if args.switch("json") {
        let mut fields = vec![
            ("command", Json::str("sim")),
            ("file", Json::str(path.as_str())),
            ("results", Json::Arr(reports)),
        ];
        crate::commands::push_metrics(&mut fields);
        println!("{}", Json::obj(fields));
    }
    exit
}
