//! `crn lint`: structural static analysis with stable warning codes.
//!
//! Runs the `crn_model::analysis` lints (`C001`–`C009`) over every `crn` and
//! `pipeline` item of each document and reports the findings as
//! span-anchored, compiler-style warnings.  Findings never block by default
//! (exit 0); `--deny-warnings` promotes any finding to exit 1, which is what
//! the CI corpus smoke step asserts on the adversarial document.

use crn_lang::ast::Item;
use crn_lang::span::{Diagnostic, Span};
use crn_model::analysis::lint_full;

use crate::args::Args;
use crate::commands::{usage_error, EXIT_OK, EXIT_USAGE, EXIT_VERDICT};
use crate::json::Json;
use crate::workspace::Workspace;

/// One rendered lint finding, ready for human and JSON output.
pub(crate) struct LintReport {
    /// The `crn`/`pipeline` item the finding is about.
    pub item: String,
    /// The stable code, e.g. `"C003"`.
    pub code: &'static str,
    /// The finding's message (species names substituted in).
    pub message: String,
    /// 1-based source line of the anchoring span.
    pub line: usize,
    /// 1-based source column of the anchoring span.
    pub col: usize,
    /// The full compiler-style rendering (`warning: …` with source excerpt).
    pub rendered: String,
}

impl LintReport {
    /// The finding as a JSON object (for `--json` payloads).
    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("item", Json::str(self.item.as_str())),
            ("code", Json::str(self.code)),
            ("message", Json::str(self.message.as_str())),
            ("line", Json::UInt(self.line as u64)),
            ("col", Json::UInt(self.col as u64)),
        ])
    }
}

/// One "analysis incomplete" note: an internal enumeration cap truncated a
/// lint's search, so its silence is not a proof of absence.
pub(crate) struct LintNote {
    /// The `crn`/`pipeline` item the truncated analysis ran on.
    pub item: String,
    /// The note text (starts with "analysis incomplete:").
    pub message: String,
}

impl LintNote {
    /// The note as a JSON object (for `--json` payloads).
    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("item", Json::str(self.item.as_str())),
            ("message", Json::str(self.message.as_str())),
        ])
    }
}

/// The full lint result of one workspace: span-anchored warnings plus the
/// truncation notes.
pub(crate) struct LintSummary {
    pub warnings: Vec<LintReport>,
    pub notes: Vec<LintNote>,
}

/// Runs every analysis lint over every `crn`/`pipeline` item of `ws`,
/// anchoring each finding to the most specific source span available:
/// the offending reaction when the lint is reaction-anchored, the `output`
/// declaration for output-starvation findings, the first reaction mentioning
/// the species for dead-species findings, and the whole item otherwise
/// (composed pipelines have no per-reaction source).
pub(crate) fn collect(ws: &Workspace) -> LintSummary {
    let mut reports = Vec::new();
    let mut notes = Vec::new();
    for (name, lowered) in &ws.crns {
        let ast = ws
            .doc
            .items
            .iter()
            .find(|item| item.is_crn_like() && item.name() == name);
        let item_span = ast.map(Item::span).unwrap_or_default();
        let crn_ast = match ast {
            Some(Item::Crn(ci)) => Some(ci),
            _ => None,
        };
        let outcome = lint_full(&lowered.crn);
        for message in outcome.notes {
            notes.push(LintNote {
                item: name.clone(),
                message,
            });
        }
        for finding in outcome.findings {
            let species_name = finding
                .species
                .map(|s| lowered.crn.crn().species().name(s).to_owned());
            let span = anchor_span(crn_ast, &finding, species_name.as_deref(), item_span);
            let diagnostic = Diagnostic::new(
                format!("[{}] {}: {}", finding.code, name, finding.message),
                span,
            );
            let (line, col) = diagnostic.line_col(&ws.source);
            reports.push(LintReport {
                item: name.clone(),
                code: finding.code.as_str(),
                message: finding.message.clone(),
                line,
                col,
                rendered: diagnostic.render_with_level(&ws.source, &ws.path, "warning"),
            });
        }
    }
    LintSummary {
        warnings: reports,
        notes,
    }
}

/// The most specific span for one finding (see [`collect`]).
fn anchor_span(
    crn_ast: Option<&crn_lang::ast::CrnItem>,
    finding: &crn_model::Lint,
    species_name: Option<&str>,
    item_span: Span,
) -> Span {
    let Some(ci) = crn_ast else {
        return item_span;
    };
    if let Some(r) = finding.reaction {
        if let Some(reaction) = ci.reactions.get(r) {
            return reaction.span;
        }
    }
    if finding.code == crn_model::LintCode::OutputExcluded {
        return ci.output_span;
    }
    if let Some(name) = species_name {
        let mentions = |side: &[(u64, String)]| side.iter().any(|(_, s)| s == name);
        if let Some(reaction) = ci
            .reactions
            .iter()
            .find(|rx| mentions(&rx.reactants) || mentions(&rx.products))
        {
            return reaction.span;
        }
    }
    item_span
}

/// Runs `crn lint <file>... [--json] [--deny-warnings]`.
///
/// Exit codes: 2 when any file does not parse or lower; 1 when
/// `--deny-warnings` is given and any finding was reported; 0 otherwise
/// (findings alone never block).
pub fn run(raw: &[String]) -> i32 {
    let args = match Args::parse(raw, &[], &["json", "deny-warnings"]) {
        Ok(args) => args,
        Err(message) => return usage_error(&message),
    };
    if args.positionals.is_empty() {
        return usage_error("`crn lint` needs at least one file");
    }
    let mut exit = EXIT_OK;
    let mut reports = Vec::new();
    for path in &args.positionals {
        let ws = match Workspace::load(path) {
            Ok(ws) => ws,
            Err(message) => {
                exit = exit.max(EXIT_USAGE);
                if args.switch("json") {
                    reports.push(Json::obj(vec![
                        ("file", Json::str(path.as_str())),
                        ("ok", Json::Bool(false)),
                        ("error", Json::str(message.as_str())),
                    ]));
                } else {
                    eprintln!("{message}");
                }
                continue;
            }
        };
        let summary = collect(&ws);
        if args.switch("json") {
            reports.push(Json::obj(vec![
                ("file", Json::str(path.as_str())),
                ("ok", Json::Bool(true)),
                (
                    "warnings",
                    Json::Arr(summary.warnings.iter().map(LintReport::to_json).collect()),
                ),
                (
                    "notes",
                    Json::Arr(summary.notes.iter().map(LintNote::to_json).collect()),
                ),
            ]));
        } else {
            if summary.warnings.is_empty() {
                println!("{path}: clean ({} crn items linted)", ws.crns.len());
            } else {
                println!(
                    "{path}: {} warning{}",
                    summary.warnings.len(),
                    if summary.warnings.len() == 1 { "" } else { "s" }
                );
                for finding in &summary.warnings {
                    print!("{}", finding.rendered);
                }
            }
            // Truncation notes are never silent: a capped enumeration means
            // the absence of a finding is not a proof of absence.
            for note in &summary.notes {
                println!("note: {}: {}", note.item, note.message);
            }
        }
        if !summary.warnings.is_empty() && args.switch("deny-warnings") {
            exit = exit.max(EXIT_VERDICT);
        }
    }
    if args.switch("json") {
        let mut fields = vec![
            ("command", Json::str("lint")),
            ("files", Json::Arr(reports)),
        ];
        crate::commands::push_metrics(&mut fields);
        println!("{}", Json::obj(fields));
    }
    exit
}
