//! Loading a `.crn` file into lowered semantic objects.
//!
//! [`Workspace::load`] reads a file, parses it with `crn-lang` and lowers
//! every item; any failure is returned as a rendered, span-annotated
//! diagnostic (the caller maps it to exit code 2).  Commands then pick their
//! targets out of the workspace by item kind and name.  `pipeline` items are
//! composed during loading and listed in [`Workspace::crns`] alongside the
//! raw `crn` items (they share one namespace), so `check`, `verify` and
//! `sim` accept pipeline targets with no extra wiring; their composition
//! metadata lives in [`Workspace::pipelines`].

use crn_core::ObliviousSpec;
use crn_lang::ast::Document;
use crn_lang::lower::{lower_document, LoweredCrn};
use crn_numeric::NVec;
use crn_semilinear::SemilinearFunction;

/// Composition metadata of a lowered `pipeline` item (the composed CRN
/// itself is in [`Workspace::crns`] under the pipeline's name).
#[derive(Debug)]
pub struct PipelineInfo {
    /// Number of composed stages.
    pub stage_count: usize,
    /// Stages that feed a downstream module although they are not
    /// output-oblivious (see `crn compose`'s enforcement).
    pub non_oblivious_feeders: Vec<String>,
}

/// A loaded and fully lowered `.crn` file.
#[derive(Debug)]
pub struct Workspace {
    /// The path the file was loaded from (used in diagnostics).
    pub path: String,
    /// The raw source text (for rendering span-anchored lint warnings).
    pub source: String,
    /// The parsed document (for canonical re-printing).
    pub doc: Document,
    /// Lowered `crn` items in source order, followed by the composed
    /// `pipeline` items in source order.
    pub crns: Vec<(String, LoweredCrn)>,
    /// Lowered `fn` items, in source order.
    pub fns: Vec<(String, SemilinearFunction)>,
    /// Lowered `spec` items, in source order.
    pub specs: Vec<(String, ObliviousSpec)>,
    /// Composition metadata for each `pipeline` item, in source order.
    pub pipelines: Vec<(String, PipelineInfo)>,
}

/// A resolvable evaluation target: the meaning of a `fn` or `spec` item.
#[derive(Debug)]
pub enum Target<'a> {
    /// A semilinear function presentation.
    SemilinearFn(&'a SemilinearFunction),
    /// An oblivious specification.
    Spec(&'a ObliviousSpec),
}

impl Target<'_> {
    /// The input dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        match self {
            Target::SemilinearFn(f) => f.dim(),
            Target::Spec(s) => s.dim(),
        }
    }

    /// Evaluates the target at `x` (0 on evaluation failure; callers validate
    /// the presentation on the box of interest first — see
    /// [`Target::validate_on_box`]).
    #[must_use]
    pub fn eval(&self, x: &NVec) -> u64 {
        match self {
            Target::SemilinearFn(f) => f.eval(x).unwrap_or(0),
            Target::Spec(s) => s.eval(x).unwrap_or(0),
        }
    }

    /// Evaluates the target at `x`, surfacing evaluation failures (a partial
    /// presentation or a spec with negative values) instead of coercing them
    /// to 0.
    ///
    /// # Errors
    ///
    /// Returns the evaluation failure as text.
    pub fn try_eval(&self, x: &NVec) -> Result<u64, String> {
        match self {
            Target::SemilinearFn(f) => f.eval(x).map_err(|e| e.to_string()),
            Target::Spec(s) => s.eval(x).map_err(|e| e.to_string()),
        }
    }

    /// Checks that the target evaluates successfully on every point of
    /// `[0, bound]^d`, so a later [`Target::eval`] sweep over that box cannot
    /// silently coerce failures to 0.
    ///
    /// # Errors
    ///
    /// Returns the first failure as text.
    pub fn validate_on_box(&self, bound: u64) -> Result<(), String> {
        match self {
            Target::SemilinearFn(f) => f
                .validate_on_box(bound)
                .map_err(|e| format!("not a valid presentation on [0, {bound}]^{}: {e}", f.dim())),
            Target::Spec(s) => {
                for x in NVec::box_iter(s.dim(), bound) {
                    s.eval(&x)
                        .map_err(|e| format!("cannot be evaluated at {x}: {e}"))?;
                }
                Ok(())
            }
        }
    }
}

impl Workspace {
    /// Loads and lowers `path`.
    ///
    /// # Errors
    ///
    /// Returns a rendered diagnostic (IO, parse or lowering failure); the
    /// caller maps it to exit code 2.
    pub fn load(path: &str) -> Result<Workspace, String> {
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("error: cannot read `{path}`: {e}"))?;
        Self::from_source(path, &source)
    }

    /// Parses and lowers in-memory source (the file at `path` for messages).
    ///
    /// # Errors
    ///
    /// Returns a rendered diagnostic on parse or lowering failure.
    pub fn from_source(path: &str, source: &str) -> Result<Workspace, String> {
        let doc = crn_lang::parse(source).map_err(|d| d.render(source, path))?;
        let lowered = lower_document(&doc).map_err(|d| d.render(source, path))?;
        let mut crns = lowered.crns;
        let mut pipelines = Vec::with_capacity(lowered.pipelines.len());
        for (name, pipeline) in lowered.pipelines {
            pipelines.push((
                name.clone(),
                PipelineInfo {
                    stage_count: pipeline.stage_count,
                    non_oblivious_feeders: pipeline.non_oblivious_feeders,
                },
            ));
            crns.push((
                name,
                LoweredCrn {
                    crn: pipeline.crn,
                    init: None,
                    computes: pipeline.computes,
                },
            ));
        }
        Ok(Workspace {
            path: path.to_owned(),
            source: source.to_owned(),
            doc,
            crns,
            fns: lowered.fns,
            specs: lowered.specs,
            pipelines,
        })
    }

    /// Resolves a `fn` or `spec` item by name.
    #[must_use]
    pub fn target(&self, name: &str) -> Option<Target<'_>> {
        if let Some((_, f)) = self.fns.iter().find(|(n, _)| n == name) {
            return Some(Target::SemilinearFn(f));
        }
        self.specs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| Target::Spec(s))
    }

    /// The `crn` or composed `pipeline` item named `name`.
    #[must_use]
    pub fn crn(&self, name: &str) -> Option<&LoweredCrn> {
        self.crns.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// The composition metadata of the `pipeline` item named `name`.
    #[must_use]
    pub fn pipeline(&self, name: &str) -> Option<&PipelineInfo> {
        self.pipelines
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_resolves_targets() {
        let ws = Workspace::from_source(
            "mem.crn",
            "fn min2(x1, x2) { case x1 <= x2: x1; otherwise: x2; }\n\
             crn min {\n  inputs X1 X2;\n  output Y;\n  computes min2;\n  X1 + X2 -> Y;\n}\n",
        )
        .unwrap();
        assert_eq!(ws.crns.len(), 1);
        assert_eq!(ws.fns.len(), 1);
        let target = ws.target("min2").unwrap();
        assert_eq!(target.dim(), 2);
        assert_eq!(target.eval(&NVec::from(vec![4, 9])), 4);
        assert!(ws.crn("min").is_some());
        assert!(ws.crn("nope").is_none());
        assert!(ws.target("nope").is_none());
    }

    #[test]
    fn parse_errors_are_rendered_with_location() {
        let err = Workspace::from_source("bad.crn", "crn x {").unwrap_err();
        assert!(err.contains("bad.crn:1:8"), "{err}");
        assert!(err.starts_with("error:"));
    }

    #[test]
    fn pipelines_are_composed_and_targetable_like_crns() {
        let ws = Workspace::from_source(
            "mem.crn",
            "crn min_stage { inputs X1 X2; output Y; X1 + X2 -> Y; }\n\
             crn double_stage { inputs X; output Y; X -> 2Y; }\n\
             pipeline two_min { inputs a b; stage m = min_stage(a, b); \
             stage d = double_stage(m); output d; }\n",
        )
        .unwrap();
        assert_eq!(ws.crns.len(), 3);
        assert_eq!(ws.pipelines.len(), 1);
        let info = ws.pipeline("two_min").unwrap();
        assert_eq!(info.stage_count, 2);
        assert!(info.non_oblivious_feeders.is_empty());
        let composed = ws.crn("two_min").unwrap();
        assert_eq!(composed.crn.dim(), 2);
        assert!(composed.init.is_none());
    }

    #[test]
    fn pipeline_lowering_failures_render_like_parse_errors() {
        let err = Workspace::from_source(
            "mem.crn",
            "pipeline p {\n  inputs a;\n  stage s = nothing(a);\n  output s;\n}\n",
        )
        .unwrap_err();
        assert!(err.contains("mem.crn:3"), "{err}");
        assert!(err.contains("no crn or pipeline item"), "{err}");
    }
}
