//! A minimal JSON value and writer.
//!
//! The vendored `serde` is a derive-only stub with no serialization engine,
//! so the CLI's `--json` output is produced by this ~100-line emitter
//! instead.  It covers exactly what the machine-readable reports need:
//! objects, arrays, strings, integers, floats and booleans, with RFC 8259
//! string escaping.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (species counts, trial counts, …).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float, printed with Rust's shortest round-trip formatting.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    #[must_use]
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// Convenience constructor for an object.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(key, value)| (key.to_owned(), value))
                .collect(),
        )
    }

    /// An array of unsigned integers.
    #[must_use]
    pub fn uints(values: impl IntoIterator<Item = u64>) -> Json {
        Json::Arr(values.into_iter().map(Json::UInt).collect())
    }
}

fn escape(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(out, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(out, "\\\"")?,
            '\\' => write!(out, "\\\\")?,
            '\n' => write!(out, "\\n")?,
            '\r' => write!(out, "\\r")?,
            '\t' => write!(out, "\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    write!(out, "\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(value) => write!(f, "{value}"),
            Json::UInt(value) => write!(f, "{value}"),
            Json::Int(value) => write!(f, "{value}"),
            Json::Float(value) => {
                if value.is_finite() {
                    write!(f, "{value}")
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(value) => escape(value, f),
            Json::Arr(values) => {
                write!(f, "[")?;
                for (i, value) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{value}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    escape(key, f)?;
                    write!(f, ":{value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let value = Json::obj(vec![
            ("command", Json::str("sim")),
            ("outputs", Json::uints([3, 4])),
            ("silent_fraction", Json::Float(1.0)),
            ("correct", Json::Bool(true)),
            ("witness", Json::Null),
        ]);
        assert_eq!(
            value.to_string(),
            r#"{"command":"sim","outputs":[3,4],"silent_fraction":1,"correct":true,"witness":null}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").to_string(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }
}
