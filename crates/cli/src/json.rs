//! Re-export of the shared JSON emitter.
//!
//! The value type moved to the `crn_report` crate so that metrics, CLI
//! reports, and the future `crn serve` share one emitter; this module keeps
//! the CLI's historical `crate::json::Json` paths compiling.

pub use crn_report::Json;
