//! `crn-cli`: the `crn` command-line driver.
//!
//! The binary turns the workspace into a batch service: `.crn` documents
//! written in the `crn-lang` text format flow through every layer —
//! parsing (`crn-lang`), the Section 7 characterization and Lemma 6.1/6.2
//! synthesis (`crn-core`), exhaustive reachability checking (`crn-model`) and
//! stochastic ensemble simulation (`crn-sim`) — with no Rust code written by
//! the user.
//!
//! | subcommand | pipeline stage |
//! |---|---|
//! | `crn check` | parse + lower + validate (plus non-blocking lint warnings) |
//! | `crn lint` | structural + semantic static analysis: stable codes `C001`–`C009` |
//! | `crn characterize` | semilinear `fn` → spec / impossibility witness |
//! | `crn synthesize` | spec (or `fn`) → output-oblivious CRN, emitted as text |
//! | `crn compose` | `pipeline` item → composed CRN via the capture-proof engine |
//! | `crn verify` | CRN vs `computes` link on a box, exhaustive or spot |
//! | `crn sim` | Gillespie ensemble with `--trials/--workers/--seed` |
//! | `crn profile` | check + verify + sim back to back, per-phase breakdown |
//! | `crn fmt` | canonical formatting (`--check` gates the corpus in CI) |
//!
//! The global `--profile` flag (any command, any position) turns on the
//! [`crn_obs`] metrics layer and prints a profile table on stderr after the
//! command finishes; stdout stays byte-identical except for the versioned
//! `metrics` object that `--json` reports then embed.
//!
//! Exit codes are a contract: `0` success, `1` verdict failure, `2`
//! usage/parse error (see [`commands`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
pub mod commands;
pub mod json;
pub mod workspace;

pub use commands::{EXIT_OK, EXIT_USAGE, EXIT_VERDICT};

const USAGE: &str = "\
crn — characterize, synthesize, verify and simulate CRNs from .crn files

USAGE:
  crn <command> [arguments] [--profile]

COMMANDS:
  check <file>...        parse, lower and validate documents; prints
                         non-blocking lint warnings
                         [--bound N=6] [--json] [--deny-warnings]
  lint <file>...         structural + semantic static analysis (stable codes
                         C001-C009: dead species, unfireable reactions,
                         consumed output, starved leader, excluded output,
                         unmarked siphon, output-locking trap, unbounded
                         species, transient reaction)
                         [--json] [--deny-warnings]
  characterize <file>    run the Section 7 pipeline on fn items
                         [--item NAME] [--bound N=8] [--json]
  synthesize <file>      compile a spec (or characterizable fn) to a CRN
                         [--item NAME] [--bound N=8] [-o OUT]
  compose <file>         materialize a pipeline item into a composed CRN;
                         lint warnings for the composed item go to stderr
                         [--item NAME] [-o OUT] [--json]
                         [--allow-non-oblivious] [--deny-warnings]
  verify <file>          check `computes` links by exhaustive reachability;
                         lint warnings go to stderr
                         [--item NAME] [--bound N=4] [--max-configs N=200000]
                         [--engine pruned|reference|seed] [--stats] [--spot]
                         [--max-steps N=1000000] [--seed S=7] [--json]
                         [--deny-warnings]
  sim <file>             Gillespie ensemble simulation; lint warnings go to
                         stderr
                         [--item NAME] [--input a,b,...] [--trials N=16]
                         [--workers W=auto] [--seed S=1]
                         [--max-steps N=10000000] [--json] [--deny-warnings]
  profile <file>         run the check, verify and sim phases back to back
                         with profiling on and report a per-phase breakdown
                         [--item NAME] [--bound N=3] [--trials N=8]
                         [--seed S=1] [--max-configs N=200000]
                         [--max-steps N=1000000] [--json]
  fmt <file>...          canonical formatting [--write | --check]
  help                   print this message

GLOBAL FLAGS:
  --profile              collect metrics and spans during the command and
                         print a deterministic profile table on stderr after
                         it finishes; with --json the report also embeds a
                         versioned `metrics` object.  Stdout is byte-identical
                         with and without --profile (except that opt-in
                         object).

EXIT CODES:
  0  success             1  verdict failure        2  usage or parse error
  Lint warnings never change the exit code unless --deny-warnings is given,
  which promotes any warning to exit 1.
";

/// Runs the CLI on `args` (without the program name) and returns the process
/// exit code.
///
/// The global `--profile` switch may appear anywhere in `args`; it is
/// stripped before dispatch, turns the [`crn_obs`] layer on for the duration
/// of the command, and prints the collected profile table on stderr *after*
/// the command has fully returned — so the table can never interleave with
/// the command's own stderr output (lint warnings, `--stats` lines).
#[must_use]
pub fn run(args: &[String]) -> i32 {
    let mut args: Vec<String> = args.to_vec();
    let given = args.len();
    args.retain(|arg| arg != "--profile");
    let profiling = args.len() != given;
    if profiling {
        crn_obs::reset();
        crn_obs::set_enabled(true);
    }
    let code = dispatch(&args);
    if profiling {
        // The `cli.<command>` span guard has dropped by now, so the snapshot
        // includes the whole command.  Disable and reset before printing so
        // in-process callers (tests) can run commands back to back.
        let snapshot = crn_obs::snapshot();
        crn_obs::set_enabled(false);
        crn_obs::reset();
        eprint!("{}", snapshot.render_table());
    }
    code
}

/// Dispatches one subcommand, timing it under a `cli.<command>` span.
fn dispatch(args: &[String]) -> i32 {
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return EXIT_USAGE;
    };
    let _span = crn_obs::span(&format!("cli.{command}"));
    match command.as_str() {
        "check" => commands::check::run(rest),
        "lint" => commands::lint::run(rest),
        "characterize" => commands::characterize::run(rest),
        "synthesize" => commands::synthesize::run(rest),
        "compose" => commands::compose::run(rest),
        "verify" => commands::verify::run(rest),
        "sim" => commands::sim::run(rest),
        "profile" => commands::profile::run(rest),
        "fmt" => commands::fmt::run(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            EXIT_OK
        }
        other => {
            eprintln!("error: unknown command `{other}`");
            eprint!("{USAGE}");
            EXIT_USAGE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_command_and_unknown_command_are_usage_errors() {
        assert_eq!(run(&[]), EXIT_USAGE);
        assert_eq!(run(&["frobnicate".to_owned()]), EXIT_USAGE);
    }

    #[test]
    fn help_succeeds() {
        assert_eq!(run(&["help".to_owned()]), EXIT_OK);
    }
}
