//! Corpus tests: every `corpus/*.crn` file parses, round-trips through the
//! canonical pretty-printer, and the CLI's outputs over the corpus match the
//! checked-in goldens under `corpus/expected/`.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root exists")
}

fn corpus_files() -> Vec<PathBuf> {
    let dir = repo_root().join("corpus");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("corpus directory exists")
        .map(|entry| entry.expect("readable corpus entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "crn"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 10,
        "the corpus must keep at least 10 .crn files, found {}",
        files.len()
    );
    files
}

/// Runs the `crn` binary from the repo root; returns (exit code, stdout).
fn run_crn(args: &[&str]) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_crn"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("the crn binary runs");
    (
        output.status.code().expect("exit code"),
        String::from_utf8(output.stdout).expect("utf-8 stdout"),
    )
}

#[test]
fn every_corpus_file_round_trips_bit_identically() {
    for path in corpus_files() {
        let source = std::fs::read_to_string(&path).expect("corpus file reads");
        let doc = crn_lang::parse(&source)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        let once = crn_lang::print(&doc);
        let reparsed = crn_lang::parse(&once)
            .unwrap_or_else(|e| panic!("printed {} does not re-parse: {e}", path.display()));
        assert_eq!(
            reparsed,
            doc,
            "{}: printing changed the AST",
            path.display()
        );
        assert_eq!(
            crn_lang::print(&reparsed),
            once,
            "{}: printing is not a fixed point",
            path.display()
        );
    }
}

#[test]
fn every_corpus_file_passes_check() {
    for path in corpus_files() {
        let rel = format!("corpus/{}", path.file_name().unwrap().to_str().unwrap());
        let (code, _) = run_crn(&["check", &rel]);
        assert_eq!(code, 0, "crn check {rel} failed");
    }
}

/// Golden outputs: (corpus stem, subcommand, extra args, expected exit code).
const GOLDENS: &[(&str, &str, &[&str], i32)] = &[
    ("figure1_min", "characterize", &[], 0),
    ("max_impossible", "characterize", &[], 0),
    ("figure7", "characterize", &[], 0),
    ("staircase", "characterize", &[], 0),
    ("mod3", "characterize", &[], 0),
    ("equation2", "characterize", &[], 0),
    ("figure1_max", "verify", &[], 0),
    ("figure1_min", "check", &[], 0),
    ("figure1_double", "sim", &["--trials", "4"], 0),
    ("pipeline_two_min", "check", &[], 0),
    ("pipeline_two_min", "compose", &[], 0),
    ("pipeline_adversarial", "compose", &[], 0),
    // `crn lint` goldens: one per corpus document, pinning the full
    // span-rendered warning output (exit 0 — findings never block without
    // --deny-warnings; see lint_deny_warnings_exit_code below).
    ("add", "lint", &[], 0),
    ("compound_spec", "lint", &[], 0),
    ("equation2", "lint", &[], 0),
    ("figure1_double", "lint", &[], 0),
    ("figure1_max", "lint", &[], 0),
    ("figure1_min", "lint", &[], 0),
    ("figure7", "lint", &[], 0),
    ("floor_three_halves", "lint", &[], 0),
    ("lint_adversarial", "lint", &[], 0),
    ("max_impossible", "lint", &[], 0),
    ("min_one", "lint", &[], 0),
    ("min_spec", "lint", &[], 0),
    ("mod3", "lint", &[], 0),
    ("pipeline_adversarial", "lint", &[], 0),
    ("pipeline_non_oblivious", "lint", &[], 0),
    ("pipeline_two_min", "lint", &[], 0),
    ("siphon_deadlock", "lint", &[], 0),
    ("staircase", "lint", &[], 0),
    ("t_invariant_cycle", "lint", &[], 0),
    ("truncated_subtraction", "lint", &[], 0),
];

#[test]
fn corpus_golden_outputs_match() {
    for &(stem, command, extra, expected_code) in GOLDENS {
        let rel = format!("corpus/{stem}.crn");
        let mut args = vec![command, rel.as_str()];
        args.extend_from_slice(extra);
        let (code, stdout) = run_crn(&args);
        let golden_path = repo_root().join(format!("corpus/expected/{stem}.{command}.txt"));
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("golden {} missing: {e}", golden_path.display()));
        assert_eq!(code, expected_code, "crn {command} {rel}: wrong exit code");
        assert_eq!(
            stdout,
            golden,
            "crn {command} {rel}: output drifted from {}",
            golden_path.display()
        );
    }
}

#[test]
fn lint_deny_warnings_exit_code() {
    // --deny-warnings promotes findings to exit 1 — the adversarial fixture
    // (which trips every structural code C001–C005, plus the C006 shadow of
    // its dead chain) must fail, clean documents must not.
    let (code, stdout) = run_crn(&["lint", "corpus/lint_adversarial.crn", "--deny-warnings"]);
    assert_eq!(
        code, 1,
        "adversarial doc must fail --deny-warnings\n{stdout}"
    );
    for code_id in ["C001", "C002", "C003", "C004", "C005", "C006"] {
        assert!(stdout.contains(code_id), "missing {code_id}:\n{stdout}");
    }
    // The analysis-v2 fixtures cover the semantic codes C006–C009.
    let (code, stdout) = run_crn(&["lint", "corpus/siphon_deadlock.crn", "--deny-warnings"]);
    assert_eq!(
        code, 1,
        "siphon fixture must fail --deny-warnings\n{stdout}"
    );
    for code_id in ["C006", "C007", "C008"] {
        assert!(stdout.contains(code_id), "missing {code_id}:\n{stdout}");
    }
    let (code, stdout) = run_crn(&["lint", "corpus/t_invariant_cycle.crn", "--deny-warnings"]);
    assert_eq!(code, 1, "cycle fixture must fail --deny-warnings\n{stdout}");
    assert!(stdout.contains("C009"), "missing C009:\n{stdout}");
    let (code, stdout) = run_crn(&["lint", "corpus/add.crn", "--deny-warnings"]);
    assert_eq!(code, 0, "clean doc must pass --deny-warnings\n{stdout}");
    // `crn check --deny-warnings` follows the same contract.
    let (code, _) = run_crn(&["check", "corpus/lint_adversarial.crn", "--deny-warnings"]);
    assert_eq!(code, 1, "check --deny-warnings must fail on the fixture");
    let (code, _) = run_crn(&["check", "corpus/lint_adversarial.crn"]);
    assert_eq!(code, 0, "warnings alone must not fail plain check");
}

#[test]
fn characterized_specs_re_enter_the_pipeline() {
    // The spec a `characterize` run prints is itself a valid document: it
    // parses, lowers, and evaluates to the same values as the source fn.
    let (code, stdout) = run_crn(&["characterize", "corpus/staircase.crn", "--json"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("\"verdict\":\"computable\""), "{stdout}");
    // Extract the spec text from the JSON by slicing between the markers
    // (the emitter escapes newlines as \n).
    let start = stdout.find("\"spec\":\"").expect("spec field") + "\"spec\":\"".len();
    let end = stdout[start..].find("\"}").expect("spec end") + start;
    let spec_text = stdout[start..end].replace("\\n", "\n");
    let doc = crn_lang::parse(&spec_text).expect("emitted spec parses");
    let crn_lang::ast::Item::Spec(item) = &doc.items[0] else {
        panic!("expected a spec item");
    };
    let spec = crn_lang::lower_spec(item).expect("emitted spec lowers");
    for x in 0..10u64 {
        let expected = if x < 3 { 0 } else { 2 * x + x % 2 };
        assert_eq!(
            spec.eval(&crn_numeric::NVec::from(vec![x])).unwrap(),
            expected,
            "staircase spec wrong at {x}"
        );
    }
}

#[test]
fn synthesize_compose_verify_sim_pipeline_from_the_cli() {
    // The composition acceptance pipeline, CLI-only: `crn synthesize` emits a
    // min module (whose composed species are full of dotted names), a
    // `pipeline` item wires that module into a doubler, `crn compose`
    // materializes 2·min(x1,x2), and `crn verify`/`crn sim` confirm it.
    let dir = repo_root().join("target/verify-scratch");
    std::fs::create_dir_all(&dir).unwrap();
    let module = dir.join("cli_compose_module.crn");
    let (code, _) = run_crn(&[
        "synthesize",
        "corpus/min_spec.crn",
        "-o",
        module.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "synthesize failed");

    let mut pipeline_doc = std::fs::read_to_string(&module).unwrap();
    pipeline_doc.push_str(
        "\nfn two_min(x1, x2) {\n  case x1 <= x2: 2 x1;\n  otherwise: 2 x2;\n}\n\n\
         crn dbl {\n  inputs X;\n  output Y;\n  X -> 2Y;\n}\n\n\
         pipeline two_min {\n  inputs a b;\n  stage m = min2_crn(a, b);\n  \
         stage d = dbl(m);\n  output d;\n  computes two_min;\n}\n",
    );
    let doc_path = dir.join("cli_compose_pipeline.crn");
    std::fs::write(&doc_path, pipeline_doc).unwrap();

    let composed = dir.join("cli_compose_out.crn");
    let (code, _) = run_crn(&[
        "compose",
        doc_path.to_str().unwrap(),
        "-o",
        composed.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "compose failed");

    // The emitted document is canonical and self-contained.
    let text = std::fs::read_to_string(&composed).unwrap();
    let doc = crn_lang::parse(&text).expect("composed document parses");
    assert_eq!(crn_lang::print(&doc), text, "composed output not canonical");

    let (code, stdout) = run_crn(&["verify", composed.to_str().unwrap(), "--bound", "2"]);
    assert_eq!(code, 0, "verify failed:\n{stdout}");
    let (code, stdout) = run_crn(&[
        "sim",
        composed.to_str().unwrap(),
        "--input",
        "4,7",
        "--trials",
        "6",
        "--json",
    ]);
    assert_eq!(code, 0, "sim failed:\n{stdout}");
    assert!(stdout.contains("\"outputs\":[8]"), "{stdout}");
    assert!(stdout.contains("\"correct\":true"), "{stdout}");
}

#[test]
fn composing_reserved_looking_names_never_panics() {
    // Acceptance criterion: modules whose species are literally named W0,
    // Y_out, L or f0.X1 flow from the parser into composition and the CLI
    // must either succeed (fresh interned wires) or exit 2 — never panic.
    let (code, stdout) = run_crn(&["compose", "corpus/pipeline_adversarial.crn"]);
    assert_eq!(code, 0, "adversarial compose must succeed\n{stdout}");
    let (code, _) = run_crn(&["verify", "corpus/pipeline_adversarial.crn", "--bound", "3"]);
    assert_eq!(code, 0, "adversarial verify must pass");
}

#[test]
fn synthesize_verify_sim_pipeline_from_the_cli() {
    // The acceptance pipeline: `crn synthesize` on a min-style spec emits a
    // document that `crn verify` confirms exhaustively on a box and
    // `crn sim` converges on — no Rust code, only CLI invocations.
    let out = repo_root().join("target/verify-scratch/cli_min_pipeline.crn");
    std::fs::create_dir_all(out.parent().unwrap()).unwrap();
    let out_str = out.to_str().unwrap();
    let (code, _) = run_crn(&["synthesize", "corpus/min_spec.crn", "-o", out_str]);
    assert_eq!(code, 0, "synthesize failed");

    // The emitted document is canonical: it round-trips bit-identically.
    let text = std::fs::read_to_string(&out).unwrap();
    let doc = crn_lang::parse(&text).expect("synthesized document parses");
    assert_eq!(
        crn_lang::print(&doc),
        text,
        "synthesized output not canonical"
    );

    let (code, stdout) = run_crn(&["verify", out_str, "--bound", "3"]);
    assert_eq!(code, 0, "verify failed:\n{stdout}");
    assert!(stdout.contains("ok (exhaustive)"), "{stdout}");

    let (code, stdout) = run_crn(&["sim", out_str, "--input", "6,9", "--trials", "6", "--json"]);
    assert_eq!(code, 0, "sim failed:\n{stdout}");
    assert!(stdout.contains("\"outputs\":[6]"), "{stdout}");
    assert!(stdout.contains("\"correct\":true"), "{stdout}");
    assert!(stdout.contains("\"silent_fraction\":1"), "{stdout}");
}
