//! Observability-surface tests: `--profile` must never change a command's
//! stdout or exit code, the profile table must follow any lint warnings on
//! stderr, `--stats` must work under every exhaustive engine, `--json` must
//! embed the versioned `metrics` object exactly when profiling, and the
//! counters the determinism contract covers must not depend on the worker
//! count.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root exists")
}

fn corpus_files() -> Vec<String> {
    let dir = repo_root().join("corpus");
    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .expect("corpus directory exists")
        .map(|entry| entry.expect("readable corpus entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "crn"))
        .map(|path| {
            format!(
                "corpus/{}",
                path.file_name().expect("file name").to_string_lossy()
            )
        })
        .collect();
    files.sort();
    files
}

/// Runs the `crn` binary from the repo root; returns (exit, stdout, stderr).
fn run_crn(args: &[&str]) -> (i32, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_crn"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("the crn binary runs");
    (
        output.status.code().expect("exit code"),
        String::from_utf8(output.stdout).expect("utf-8 stdout"),
        String::from_utf8(output.stderr).expect("utf-8 stderr"),
    )
}

/// Writes `content` to a fresh scratch file and returns its path as a string.
fn scratch(name: &str, content: &str) -> String {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path.to_str().unwrap().to_owned()
}

const DOUBLE_DOC: &str = "\
fn double2x(x) {
  case x >= 0: 2 x;
}

crn double {
  inputs X;
  output Y;
  computes double2x;
  init X = 5;
  X -> 2Y;
}
";

#[test]
fn profile_flag_keeps_stdout_and_exit_identical_across_the_corpus() {
    for file in corpus_files() {
        for base in [
            vec!["check", file.as_str()],
            vec!["lint", file.as_str()],
            vec!["fmt", file.as_str(), "--check"],
            vec!["verify", file.as_str(), "--bound", "3"],
            vec!["sim", file.as_str(), "--trials", "3", "--seed", "1"],
        ] {
            let (plain_code, plain_out, _) = run_crn(&base);
            let mut profiled = base.clone();
            profiled.push("--profile");
            let (prof_code, prof_out, prof_err) = run_crn(&profiled);
            assert_eq!(
                plain_code, prof_code,
                "--profile changed the exit code of crn {base:?}"
            );
            assert_eq!(
                plain_out, prof_out,
                "--profile changed the stdout of crn {base:?}"
            );
            assert!(
                prof_err.contains("== profile =="),
                "crn {profiled:?} printed no profile table:\n{prof_err}"
            );
        }
    }
}

#[test]
fn profile_table_comes_after_every_lint_warning() {
    // lint_adversarial.crn trips several lint warnings; the table must come
    // strictly after the last of them, never interleaved.
    let (_, _, stderr) = run_crn(&[
        "verify",
        "corpus/lint_adversarial.crn",
        "--bound",
        "2",
        "--profile",
    ]);
    let table = stderr
        .find("== profile ==")
        .expect("the profile table is on stderr");
    let last_warning = stderr.rfind("warning[").expect("lint warnings appear");
    assert!(
        last_warning < table,
        "a lint warning was printed after the profile table:\n{stderr}"
    );
    assert!(
        !stderr[table..].contains("warning["),
        "a lint warning interleaved into the profile table:\n{stderr}"
    );
}

#[test]
fn stats_works_under_every_exhaustive_engine() {
    let path = scratch("profile_stats.crn", DOUBLE_DOC);
    for engine in ["incremental", "baseline", "pruned", "reference", "seed"] {
        let (code, _, stderr) = run_crn(&[
            "verify", &path, "--bound", "3", "--engine", engine, "--stats",
        ]);
        assert_eq!(
            code, 0,
            "verify --engine {engine} --stats failed:\n{stderr}"
        );
        assert!(
            stderr.contains("\"stats\":{\"points\":"),
            "--engine {engine} printed no stats line:\n{stderr}"
        );
        assert!(
            stderr.contains("\"publish_suppressed\":"),
            "--engine {engine} stats lack publish_suppressed:\n{stderr}"
        );
    }
    // `--spot` never runs a box sweep, so `--stats` stays a usage error there.
    let (code, _, stderr) = run_crn(&["verify", &path, "--bound", "3", "--spot", "--stats"]);
    assert_eq!(code, 2, "--spot --stats must be refused:\n{stderr}");
}

#[test]
fn json_embeds_versioned_metrics_exactly_when_profiling() {
    let path = scratch("profile_json.crn", DOUBLE_DOC);
    let (code, plain, _) = run_crn(&["verify", &path, "--bound", "3", "--json"]);
    assert_eq!(code, 0);
    assert!(
        !plain.contains("\"metrics\""),
        "unprofiled --json must not embed metrics:\n{plain}"
    );
    let (code, profiled, _) = run_crn(&["verify", &path, "--bound", "3", "--json", "--profile"]);
    assert_eq!(code, 0);
    assert!(
        profiled.contains("\"metrics\":{\"version\":1,"),
        "profiled --json must embed the versioned metrics object:\n{profiled}"
    );
    assert!(
        profiled.contains("\"model.box.points\":"),
        "the metrics object must carry the box-sweep counters:\n{profiled}"
    );
}

#[test]
fn profile_subcommand_reports_all_four_phases() {
    let path = scratch("profile_cmd.crn", DOUBLE_DOC);
    let (code, stdout, stderr) = run_crn(&["profile", &path]);
    assert_eq!(code, 0, "crn profile failed:\n{stdout}\n{stderr}");
    for phase in ["load", "check", "verify", "sim"] {
        assert!(
            stdout.contains(&format!("\n  {phase}")),
            "phase `{phase}` missing from the breakdown:\n{stdout}"
        );
    }
    let (code, json, _) = run_crn(&["profile", &path, "--json"]);
    assert_eq!(code, 0);
    assert!(json.contains("\"command\":\"profile\""), "{json}");
    assert!(json.contains("\"phases\":["), "{json}");
    assert!(json.contains("\"metrics\":{\"version\":1,"), "{json}");

    // A false `computes` claim is a verdict failure (exit 1), not a usage
    // error, and a missing file is exit 2 — the standard exit contract.
    let wrong = scratch(
        "profile_wrong.crn",
        &DOUBLE_DOC.replace("case x >= 0: 2 x;", "case x >= 0: 3 x;"),
    );
    let (code, _, _) = run_crn(&["profile", &wrong]);
    assert_eq!(code, 1);
    let (code, _, _) = run_crn(&["profile", "no_such_file.crn"]);
    assert_eq!(code, 2);
}

/// Extracts the integer value of `"name":` from a one-line JSON report.
fn json_counter(json: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let start = json
        .find(&key)
        .unwrap_or_else(|| panic!("{name} in {json}"))
        + key.len();
    json[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer counter")
}

#[test]
fn interleaving_independent_counters_match_at_every_worker_count() {
    let path = scratch("profile_workers.crn", DOUBLE_DOC);
    let mut step_counts = Vec::new();
    for workers in ["1", "2", "4"] {
        let (code, stdout, stderr) = run_crn(&[
            "sim",
            &path,
            "--trials",
            "8",
            "--seed",
            "3",
            "--workers",
            workers,
            "--json",
            "--profile",
        ]);
        assert_eq!(code, 0, "sim --workers {workers} failed:\n{stderr}");
        step_counts.push((
            json_counter(&stdout, "sim.steps"),
            json_counter(&stdout, "sim.trials"),
        ));
    }
    assert!(step_counts[0].0 > 0, "sim recorded no steps");
    assert_eq!(
        step_counts[0], step_counts[1],
        "sim.steps/sim.trials differ between 1 and 2 workers"
    );
    assert_eq!(
        step_counts[0], step_counts[2],
        "sim.steps/sim.trials differ between 1 and 4 workers"
    );
}
