//! Exit-code contract tests: one per class (0 success, 1 verdict failure,
//! 2 usage/parse error) for each command family, driven through the real
//! binary.

use std::path::PathBuf;
use std::process::Command;

fn run_crn(args: &[&str]) -> (i32, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_crn"))
        .args(args)
        .output()
        .expect("the crn binary runs");
    (
        output.status.code().expect("exit code"),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// Writes `content` to a fresh scratch file and returns its path.
fn scratch(name: &str, content: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

const VALID_DOC: &str = "\
fn double2x(x) {
  case x >= 0: 2 x;
}

crn double {
  inputs X;
  output Y;
  computes double2x;
  init X = 5;
  X -> 2Y;
}
";

#[test]
fn exit_0_success_class() {
    let path = scratch("ok.crn", VALID_DOC);
    let path = path.to_str().unwrap();
    for args in [
        vec!["check", path],
        vec!["characterize", path],
        vec!["verify", path, "--bound", "3"],
        vec!["sim", path, "--trials", "3"],
        vec!["fmt", path, "--check"],
        vec!["help"],
    ] {
        let (code, stdout, stderr) = run_crn(&args);
        assert_eq!(code, 0, "crn {args:?}: expected 0\n{stdout}\n{stderr}");
    }
}

#[test]
fn exit_1_verdict_failure_class() {
    // The CRN computes 2x but claims 3x: parse and lowering succeed, the
    // verify verdict does not.
    let wrong = VALID_DOC.replace("case x >= 0: 2 x;", "case x >= 0: 3 x;");
    let path = scratch("wrong_claim.crn", &wrong);
    let path = path.to_str().unwrap();
    let (code, stdout, _) = run_crn(&["verify", path, "--bound", "3"]);
    assert_eq!(code, 1, "verify of a false claim must exit 1\n{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");

    let (code, stdout, _) = run_crn(&["sim", path, "--trials", "3"]);
    assert_eq!(code, 1, "sim of a false claim must exit 1\n{stdout}");
    assert!(stdout.contains("MISMATCH"), "{stdout}");

    // A fn whose cases overlap is a check verdict failure (it parses fine).
    let overlapping = scratch(
        "overlap.crn",
        "fn f(x) {\n  case x >= 0: 1;\n  case x >= 1: 2;\n}\n",
    );
    let (code, stdout, _) = run_crn(&["check", overlapping.to_str().unwrap()]);
    assert_eq!(code, 1, "check of an overlapping fn must exit 1\n{stdout}");
    assert!(stdout.contains("INVALID"), "{stdout}");

    // A spec computes-target that is not N-valued (f(0) = -1) must fail
    // verify/sim rather than being silently coerced to expected output 0.
    let bad_spec = scratch(
        "bad_spec_target.crn",
        "spec s(x) {\n  min x - 1;\n}\n\ncrn monus {\n  inputs X;\n  output Y;\n  computes s;\n  init X = 0;\n  2X -> X + Y;\n}\n",
    );
    let (code, stdout, _) = run_crn(&["verify", bad_spec.to_str().unwrap(), "--bound", "3"]);
    assert_eq!(
        code, 1,
        "verify against an unevaluable spec must exit 1\n{stdout}"
    );
    assert!(stdout.contains("FAIL"), "{stdout}");
    let (code, stdout, _) = run_crn(&["sim", bad_spec.to_str().unwrap(), "--trials", "2"]);
    assert_eq!(
        code, 1,
        "sim against an unevaluable spec must exit 1\n{stdout}"
    );
    assert!(stdout.contains("cannot be evaluated"), "{stdout}");

    // A never-silent CRN does not converge.
    let restless = scratch(
        "restless.crn",
        "crn clock {\n  inputs X;\n  output Y;\n  init X = 1;\n  X -> X + Y;\n}\n",
    );
    let (code, stdout, _) = run_crn(&[
        "sim",
        restless.to_str().unwrap(),
        "--trials",
        "2",
        "--max-steps",
        "50",
    ]);
    assert_eq!(code, 1, "sim of a restless CRN must exit 1\n{stdout}");
}

const PIPELINE_DOC: &str = "\
crn min_stage {
  inputs X1 X2;
  output Y;
  X1 + X2 -> Y;
}

crn max_stage {
  inputs X1 X2;
  output Y;
  X1 -> Z1 + Y;
  X2 -> Z2 + Y;
  Z1 + Z2 -> K;
  K + Y -> 0;
}

crn dbl {
  inputs X;
  output Y;
  X -> 2Y;
}

pipeline good {
  inputs a b;
  stage m = min_stage(a, b);
  stage d = dbl(m);
  output d;
}

pipeline bad {
  inputs a b;
  stage m = max_stage(a, b);
  stage d = dbl(m);
  output d;
}
";

#[test]
fn compose_exit_code_classes() {
    let path = scratch("pipelines.crn", PIPELINE_DOC);
    let path = path.to_str().unwrap();
    // 0: a sound pipeline composes; the emitted document is printed.
    let (code, stdout, stderr) = run_crn(&["compose", path, "--item", "good"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("crn good {"), "{stdout}");
    // 1: a non-oblivious feeder is refused with a diagnostic...
    let (code, _, stderr) = run_crn(&["compose", path, "--item", "bad"]);
    assert_eq!(code, 1, "non-oblivious feeder must exit 1");
    assert!(stderr.contains("non-output-oblivious"), "{stderr}");
    assert!(stderr.contains("`m`"), "{stderr}");
    // ...unless the Section 1.2 escape hatch is taken.
    let (code, stdout, _) = run_crn(&[
        "compose",
        path,
        "--item",
        "bad",
        "--allow-non-oblivious",
        "--json",
    ]);
    assert_eq!(code, 0);
    assert!(
        stdout.contains("\"non_oblivious_stages\":[\"m\"]"),
        "{stdout}"
    );
    // 2: usage errors — ambiguous target, unknown item, no pipelines at all.
    let (code, _, _) = run_crn(&["compose", path]);
    assert_eq!(code, 2, "two pipelines without --item is ambiguous");
    let (code, _, _) = run_crn(&["compose", path, "--item", "nope"]);
    assert_eq!(code, 2);
    let plain = scratch("no_pipelines.crn", VALID_DOC);
    let (code, _, _) = run_crn(&["compose", plain.to_str().unwrap()]);
    assert_eq!(code, 2);
}

#[test]
fn pipeline_targets_flow_through_check_verify_and_sim() {
    let doc = format!(
        "fn two_min(x1, x2) {{\n  case x1 <= x2: 2 x1;\n  otherwise: 2 x2;\n}}\n\n\
         {PIPELINE_DOC}"
    );
    let doc = doc.replace(
        "pipeline good {\n  inputs a b;\n  stage m = min_stage(a, b);\n  stage d = dbl(m);\n  output d;\n}",
        "pipeline good {\n  inputs a b;\n  stage m = min_stage(a, b);\n  stage d = dbl(m);\n  output d;\n  computes two_min;\n}",
    );
    let path = scratch("pipeline_targets.crn", &doc);
    let path = path.to_str().unwrap();
    let (code, stdout, _) = run_crn(&["check", path]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("pipeline good (2 stages)"), "{stdout}");
    let (code, stdout, _) = run_crn(&["verify", path, "--item", "good", "--bound", "3"]);
    assert_eq!(code, 0, "{stdout}");
    let (code, stdout, _) = run_crn(&[
        "sim", path, "--item", "good", "--input", "2,5", "--trials", "3",
    ]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("expected 4: ok"), "{stdout}");
}

#[test]
fn synthesize_of_a_zero_parameter_spec_re_enters_the_pipeline() {
    // The constant CRN synthesized from `spec five() { min 5; }` has no
    // inputs; the emitted `inputs;` declaration must parse, verify and
    // simulate (a zero-input CRN needs no init: its input is `()`).
    let src = scratch("five.crn", "spec five() {\n  min 5;\n}\n");
    let out = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("five_out.crn");
    let (code, _, stderr) = run_crn(&[
        "synthesize",
        src.to_str().unwrap(),
        "-o",
        out.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stderr}");
    for command in ["check", "verify", "sim"] {
        let (code, stdout, stderr) = run_crn(&[command, out.to_str().unwrap()]);
        assert_eq!(
            code, 0,
            "crn {command} on zero-input doc\n{stdout}\n{stderr}"
        );
    }
    let (_, stdout, _) = run_crn(&["sim", out.to_str().unwrap(), "--json"]);
    assert!(stdout.contains("\"outputs\":[5]"), "{stdout}");
}

/// A document that verifies clean but trips C003 (its output is consumed
/// non-catalytically), so lint warnings and verdicts can move independently.
const WARNING_DOC: &str = "\
fn maxish(x1, x2) {
  case x1 >= x2: x1;
  otherwise: x2;
}

crn max {
  inputs X1 X2;
  output Y;
  computes maxish;
  X1 -> Z1 + Y;
  X2 -> Z2 + Y;
  Z1 + Z2 -> K;
  K + Y -> 0;
}
";

#[test]
fn verify_engines_agree_and_honor_deny_warnings() {
    let path = scratch("engines.crn", WARNING_DOC);
    let path = path.to_str().unwrap();
    // Every exhaustive backend passes with byte-identical stdout, and the
    // C003 finding lands on stderr without touching the exit code.
    let mut stdouts = Vec::new();
    for engine in ["incremental", "baseline", "pruned", "reference", "seed"] {
        let (code, stdout, stderr) = run_crn(&["verify", path, "--bound", "3", "--engine", engine]);
        assert_eq!(code, 0, "--engine {engine}\n{stdout}\n{stderr}");
        assert!(stderr.contains("warning[C003]"), "{stderr}");
        stdouts.push(stdout);
    }
    for (i, stdout) in stdouts.iter().enumerate().skip(1) {
        assert_eq!(stdout, &stdouts[0], "engine #{i} stdout diverged");
    }
    // --deny-warnings promotes the finding to exit 1 even though every
    // verdict passes; the verdicts themselves still print.
    let (code, stdout, stderr) = run_crn(&["verify", path, "--bound", "3", "--deny-warnings"]);
    assert_eq!(code, 1, "{stdout}\n{stderr}");
    assert!(stdout.contains("ok (exhaustive)"), "{stdout}");
    // An unknown engine and --engine under --spot are usage errors.
    let (code, _, _) = run_crn(&["verify", path, "--engine", "frobnicate"]);
    assert_eq!(code, 2);
    let (code, _, _) = run_crn(&["verify", path, "--spot", "--engine", "seed"]);
    assert_eq!(code, 2);
}

#[test]
fn verify_stats_reports_engine_counters() {
    let path = scratch("stats.crn", WARNING_DOC);
    let path = path.to_str().unwrap();
    // One JSON line of counters per item on stderr; the max-style CRN is
    // input-symmetric, so the strict lower triangle of [0,3]^2 is replayed.
    let (code, stdout, stderr) = run_crn(&["verify", path, "--bound", "3", "--stats"]);
    assert_eq!(code, 0, "{stdout}\n{stderr}");
    let line = stderr
        .lines()
        .find(|l| l.starts_with("{\"item\":\"max\""))
        .unwrap_or_else(|| panic!("no stats line in stderr:\n{stderr}"));
    assert!(line.contains("\"points\":16"), "{line}");
    assert!(line.contains("\"symmetry_skipped\":6"), "{line}");
    assert!(line.contains("\"cache_hit_rate\":"), "{line}");
    // --json attaches the same counters to the item's report on stdout.
    let (code, stdout, _) = run_crn(&["verify", path, "--bound", "3", "--stats", "--json"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("\"stats\":{\"points\":16"), "{stdout}");
    // Every exhaustive backend reports its counters (ones it does not track
    // stay zero); only the spot checker has no box sweep to describe.
    let (code, _, stderr) = run_crn(&["verify", path, "--stats", "--engine", "reference"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stderr.contains("\"symmetry_skipped\":0"), "{stderr}");
    let (code, _, _) = run_crn(&["verify", path, "--stats", "--spot"]);
    assert_eq!(code, 2);
}

#[test]
fn sim_echoes_lint_warnings_and_honors_deny_warnings() {
    let path = scratch("sim_warnings.crn", WARNING_DOC);
    let path = path.to_str().unwrap();
    let (code, _, stderr) = run_crn(&["sim", path, "--input", "2,3", "--trials", "3"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stderr.contains("warning[C003]"), "{stderr}");
    let (code, stdout, stderr) = run_crn(&[
        "sim",
        path,
        "--input",
        "2,3",
        "--trials",
        "3",
        "--deny-warnings",
    ]);
    assert_eq!(code, 1, "{stdout}\n{stderr}");
    assert!(stdout.contains("expected 3: ok"), "{stdout}");
}

#[test]
fn lint_json_is_byte_identical_across_runs() {
    // The JSON payload is a machine interface: two runs over the same file
    // must agree byte for byte (stable finding order, stable note order).
    let path = scratch("lint_determinism.crn", WARNING_DOC);
    let path = path.to_str().unwrap();
    let (code, first, _) = run_crn(&["lint", path, "--json"]);
    assert_eq!(code, 0);
    assert!(first.contains("\"code\":\"C003\""), "{first}");
    for _ in 0..2 {
        let (code, again, _) = run_crn(&["lint", path, "--json"]);
        assert_eq!(code, 0);
        assert_eq!(first, again, "lint --json must be deterministic");
    }
}

#[test]
fn multi_file_check_json_reports_every_file() {
    let good = scratch("json_good.crn", VALID_DOC);
    let bad = scratch("json_bad.crn", "crn broken {");
    let (code, stdout, _) = run_crn(&[
        "check",
        good.to_str().unwrap(),
        bad.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(code, 2, "a parse failure is the worst class\n{stdout}");
    // Both files appear in the JSON report, the good one with its results.
    assert!(stdout.contains("json_good.crn"), "{stdout}");
    assert!(stdout.contains("json_bad.crn"), "{stdout}");
    assert!(stdout.contains("\"ok\":true"), "{stdout}");
    assert!(stdout.contains("\"ok\":false"), "{stdout}");
}

#[test]
fn exit_2_usage_or_parse_error_class() {
    // No command at all.
    let (code, _, _) = run_crn(&[]);
    assert_eq!(code, 2);
    // Unknown command and unknown flag.
    let (code, _, _) = run_crn(&["frobnicate"]);
    assert_eq!(code, 2);
    let (code, _, _) = run_crn(&["check", "--nope"]);
    assert_eq!(code, 2);
    // Missing file.
    let (code, _, stderr) = run_crn(&["check", "definitely-not-here.crn"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("cannot read"), "{stderr}");
    // Parse error, with a rendered span diagnostic.
    let bad = scratch("bad.crn", "crn broken {\n  X + Y;\n}\n");
    let (code, _, stderr) = run_crn(&["check", bad.to_str().unwrap()]);
    assert_eq!(code, 2);
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(stderr.contains("bad.crn:2"), "{stderr}");
    // Lowering error (init names a non-input species).
    let bad_init = scratch(
        "bad_init.crn",
        "crn c {\n  inputs X;\n  output Y;\n  init Y = 1;\n  X -> Y;\n}\n",
    );
    let (code, _, stderr) = run_crn(&["check", bad_init.to_str().unwrap()]);
    assert_eq!(code, 2);
    assert!(stderr.contains("not an input"), "{stderr}");
    // Wrong arity for --input.
    let good = scratch("good_arity.crn", VALID_DOC);
    let (code, _, _) = run_crn(&["sim", good.to_str().unwrap(), "--input", "1,2,3"]);
    assert_eq!(code, 2);
}
