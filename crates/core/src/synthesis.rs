//! CRN synthesis: Lemma 6.1 (quilt-affine functions) and Lemma 6.2 (the
//! general construction for any function satisfying Theorem 5.2).

use crn_model::compose::compose_feed_forward;
use crn_model::{examples, Crn, FunctionCrn, Reaction, Roles};
use crn_numeric::{CongruenceClass, NVec};

use crate::error::CoreError;
use crate::quilt::QuiltAffine;
use crate::spec::ObliviousSpec;

/// Lemma 6.1: an output-oblivious CRN (with one leader) stably computing a
/// nonnegative quilt-affine function `g : N^d → N`.
///
/// The construction keeps one "leader state" species `L_a` per congruence
/// class `a ∈ Z^d/pZ^d`; the leader absorbs inputs one at a time and emits
/// the periodic finite differences:
///
/// ```text
/// L → g(0)·Y + L_0
/// L_a + X_i → δ^i_a·Y + L_{a+e_i}     for every a and every i
/// ```
///
/// # Errors
///
/// Returns [`CoreError::NotNondecreasing`] or [`CoreError::NegativeQuiltValue`]
/// if `g` is not nondecreasing or takes a negative value (the construction
/// requires `g : N^d → N`).
pub fn quilt_crn(g: &QuiltAffine) -> Result<FunctionCrn, CoreError> {
    if !g.is_nondecreasing() {
        return Err(CoreError::NotNondecreasing(format!(
            "gradient {} with the given offsets has a negative finite difference",
            g.gradient()
        )));
    }
    if !g.is_nonnegative() {
        return Err(CoreError::NegativeQuiltValue(format!(
            "g takes a negative value near the origin (gradient {})",
            g.gradient()
        )));
    }
    let d = g.dim();
    let p = g.period();
    let mut crn = Crn::new();
    let inputs: Vec<_> = (0..d)
        .map(|i| crn.add_species(&format!("X{}", i + 1)))
        .collect();
    let y = crn.add_species("Y");
    let leader = crn.add_species("L");
    let classes = CongruenceClass::enumerate_all(d, p);
    let state_species: Vec<_> = classes
        .iter()
        .map(|class| {
            let label: Vec<String> = class.residues().iter().map(u64::to_string).collect();
            crn.add_species(&format!("L_{}", label.join("_")))
        })
        .collect();
    let index_of = |class: &CongruenceClass| -> usize {
        classes
            .iter()
            .position(|c| c == class)
            .expect("class enumerated")
    };

    let g0 = g.eval(&NVec::zeros(d))?;
    let zero_class = CongruenceClass::zero(d, p);
    crn.add_reaction(Reaction::new(
        vec![(leader, 1)],
        vec![(y, g0 as u64), (state_species[index_of(&zero_class)], 1)],
    ));
    for (ci, class) in classes.iter().enumerate() {
        for (i, &xi) in inputs.iter().enumerate() {
            let delta = g.finite_difference(i, class)?;
            debug_assert!(delta >= 0, "nondecreasing was checked");
            let next = index_of(&class.add_basis(i));
            crn.add_reaction(Reaction::new(
                vec![(state_species[ci], 1), (xi, 1)],
                vec![(y, delta as u64), (state_species[next], 1)],
            ));
        }
    }
    FunctionCrn::new(
        crn,
        Roles {
            inputs,
            output: y,
            leader: Some(leader),
        },
    )
    .map_err(CoreError::from)
}

/// A `d`-input CRN whose output equals input `i` and ignores the others
/// (the "projection" module used to route a raw input into the indicator
/// combiner of Lemma 6.2).
#[must_use]
pub fn projection_crn(d: usize, i: usize) -> FunctionCrn {
    assert!(i < d, "projection index out of range");
    let mut crn = Crn::new();
    let inputs: Vec<_> = (0..d)
        .map(|k| crn.add_species(&format!("X{}", k + 1)))
        .collect();
    let y = crn.add_species("Y");
    crn.add_reaction(Reaction::new(vec![(inputs[i], 1)], vec![(y, 1)]));
    FunctionCrn::new(
        crn,
        Roles {
            inputs,
            output: y,
            leader: None,
        },
    )
    .expect("valid roles")
}

/// The single-input CRN computing `(x − n)+ = max(x − n, 0)` via the reaction
/// `(n+1)·X → n·X + Y` (from the proof of Lemma 6.2); for `n = 0` this is the
/// identity.
#[must_use]
pub fn clamp_below_crn(n: u64) -> FunctionCrn {
    let mut crn = Crn::new();
    let x = crn.add_species("X");
    let y = crn.add_species("Y");
    crn.add_reaction(Reaction::new(vec![(x, n + 1)], vec![(x, n), (y, 1)]));
    FunctionCrn::new(
        crn,
        Roles {
            inputs: vec![x],
            output: y,
            leader: None,
        },
    )
    .expect("valid roles")
}

/// The three-input combiner `c(a, b, v) = a + 1{v > j}·b` from the proof of
/// Lemma 6.2, with reactions `A → Y` and `(j+1)·V + B → (j+1)·V + Y`.
#[must_use]
pub fn indicator_combiner_crn(j: u64) -> FunctionCrn {
    let mut crn = Crn::new();
    let a = crn.add_species("A");
    let b = crn.add_species("B");
    let v = crn.add_species("V");
    let y = crn.add_species("Y");
    crn.add_reaction(Reaction::new(vec![(a, 1)], vec![(y, 1)]));
    crn.add_reaction(Reaction::new(
        vec![(v, j + 1), (b, 1)],
        vec![(v, j + 1), (y, 1)],
    ));
    FunctionCrn::new(
        crn,
        Roles {
            inputs: vec![a, b, v],
            output: y,
            leader: None,
        },
    )
    .expect("valid roles")
}

/// Pads a `d`-input CRN into a `(d+1)`-input CRN that ignores the new input at
/// position `position` (needed to wire a fixed-input restriction, which has
/// arity `d − 1`, against the full `d`-ary input of Lemma 6.2's equation (1)).
#[must_use]
pub fn pad_input(crn: &FunctionCrn, position: usize) -> FunctionCrn {
    assert!(position <= crn.dim(), "pad position out of range");
    let mut base = crn.crn().clone();
    let ignored = base.add_species("X_ignored");
    let mut inputs = crn.roles().inputs.clone();
    inputs.insert(position, ignored);
    FunctionCrn::new(
        base,
        Roles {
            inputs,
            output: crn.output(),
            leader: crn.leader(),
        },
    )
    .expect("padding preserves valid roles")
}

/// The module computing `min_k g_k(x ∨ n)` for `x ∈ N^d` — the "main term" of
/// equation (1) in the proof of Lemma 6.2.
///
/// Built compositionally, exactly as in the paper: per-component clamp CRNs
/// compute `(x_i − n_i)+`, each translated piece `g_k(x + n)` is a nonnegative
/// quilt-affine function compiled by Lemma 6.1, and a `k`-ary min combines the
/// pieces.
///
/// # Errors
///
/// Propagates quilt-CRN construction errors (e.g. a piece that is negative
/// even after translation by `n`, which Theorem 5.2 rules out for valid specs).
pub fn eventual_min_crn(
    pieces: &[QuiltAffine],
    threshold: &NVec,
) -> Result<FunctionCrn, CoreError> {
    let d = threshold.dim();
    let mut piece_modules = Vec::with_capacity(pieces.len());
    for g in pieces {
        let translated = g.translate(threshold)?;
        let quilt = quilt_crn(&translated)?;
        let module = if d == 0 {
            quilt
        } else {
            // (x_i − n_i)+ feeding g(· + n).
            let clamps: Vec<FunctionCrn> = (0..d).map(|i| clamp_below_crn(threshold[i])).collect();
            compose_feed_forward(&clamps, &quilt, false)?
        };
        piece_modules.push(module);
    }
    if piece_modules.len() == 1 {
        return Ok(piece_modules.into_iter().next().expect("one piece"));
    }
    let min = examples::min_k_crn(piece_modules.len());
    compose_feed_forward(&piece_modules, &min, true).map_err(CoreError::from)
}

/// Lemma 6.2: compiles any specification satisfying Theorem 5.2 into an
/// output-oblivious CRN with a single leader, by composing output-oblivious
/// modules according to equation (1):
///
/// ```text
/// f(x) = min[ f(x ∨ n),  f[x(i)→j](x) + 1{x(i)>j}(x)·f(x ∨ n) ]   (i < d, j < n(i))
/// ```
///
/// # Errors
///
/// Propagates construction errors from the constituent modules.
pub fn synthesize(spec: &ObliviousSpec) -> Result<FunctionCrn, CoreError> {
    match spec {
        ObliviousSpec::Constant(c) => Ok(examples::constant_crn(*c)),
        ObliviousSpec::Compound {
            eventual,
            restrictions,
        } => {
            let d = eventual.dim();
            let n = eventual.threshold();
            let main = eventual_min_crn(eventual.pieces(), n)?;
            // Collect the terms of the outer min, all as d-ary modules on the
            // shared global input.
            let mut terms: Vec<FunctionCrn> = vec![main.clone()];
            for i in 0..d {
                for j in 0..n[i] {
                    let restriction = restrictions.get(&(i, j)).ok_or_else(|| {
                        CoreError::InvalidSpec(format!(
                            "missing restriction for input {i} fixed to {j}"
                        ))
                    })?;
                    let restricted_crn = synthesize(restriction)?;
                    let padded = pad_input(&restricted_crn, i);
                    let term = compose_feed_forward(
                        &[padded, main.clone(), projection_crn(d, i)],
                        &indicator_combiner_crn(j),
                        true,
                    )?;
                    terms.push(term);
                }
            }
            if terms.len() == 1 {
                return Ok(terms.into_iter().next().expect("one term"));
            }
            let min = examples::min_k_crn(terms.len());
            compose_feed_forward(&terms, &min, true).map_err(CoreError::from)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_model::check_stable_computation;
    use crn_numeric::{QVec, Rational};
    use crn_sim::runner::spot_check_on_box;
    use std::collections::BTreeMap;

    #[test]
    fn quilt_crn_for_floor_three_halves() {
        let g = QuiltAffine::floor_linear(QVec::from(vec![Rational::new(3, 2)]), 2);
        let crn = quilt_crn(&g).unwrap();
        assert!(crn.is_output_oblivious());
        assert!(crn.has_leader());
        // Species: X, Y, L plus p^d = 2 leader states.
        assert_eq!(crn.species_count(), 5);
        assert_eq!(crn.reaction_count(), 3);
        for x in 0..10u64 {
            let v =
                check_stable_computation(&crn, &NVec::from(vec![x]), 3 * x / 2, 100_000).unwrap();
            assert!(v.is_correct(), "⌊3·{x}/2⌋ failed");
        }
    }

    #[test]
    fn quilt_crn_for_two_dimensional_function() {
        // g(x) = x1 + 2 x2 + 1 (affine, period 1).
        let g = QuiltAffine::affine(QVec::from(vec![1, 2]), Rational::ONE).unwrap();
        let crn = quilt_crn(&g).unwrap();
        for x1 in 0..4u64 {
            for x2 in 0..4u64 {
                let expected = x1 + 2 * x2 + 1;
                let v =
                    check_stable_computation(&crn, &NVec::from(vec![x1, x2]), expected, 100_000)
                        .unwrap();
                assert!(v.is_correct(), "failed at ({x1},{x2})");
            }
        }
    }

    #[test]
    fn quilt_crn_for_floor_half_sum() {
        // g(x1, x2) = floor((x1 + x2)/2): period 2, gradient (1/2, 1/2).
        let g = QuiltAffine::floor_linear(
            QVec::from(vec![Rational::new(1, 2), Rational::new(1, 2)]),
            2,
        );
        let crn = quilt_crn(&g).unwrap();
        assert_eq!(crn.species_count(), 3 + 1 + 4); // X1, X2, Y, L, 4 states
        for x1 in 0..4u64 {
            for x2 in 0..4u64 {
                let v = check_stable_computation(
                    &crn,
                    &NVec::from(vec![x1, x2]),
                    (x1 + x2) / 2,
                    100_000,
                )
                .unwrap();
                assert!(v.is_correct(), "⌊({x1}+{x2})/2⌋ failed");
            }
        }
    }

    #[test]
    fn quilt_crn_rejects_negative_functions() {
        let g = QuiltAffine::affine(QVec::from(vec![1]), Rational::from(-2)).unwrap();
        assert!(matches!(
            quilt_crn(&g),
            Err(CoreError::NegativeQuiltValue(_))
        ));
    }

    #[test]
    fn clamp_and_projection_primitives() {
        let clamp = clamp_below_crn(2);
        for x in 0..7u64 {
            let v =
                check_stable_computation(&clamp, &NVec::from(vec![x]), x.saturating_sub(2), 10_000)
                    .unwrap();
            assert!(v.is_correct());
        }
        let proj = projection_crn(3, 1);
        let v = check_stable_computation(&proj, &NVec::from(vec![5, 3, 9]), 3, 10_000).unwrap();
        assert!(v.is_correct());
    }

    #[test]
    fn indicator_combiner_computes_conditional_sum() {
        // c(a, b, v) = a + 1{v > 1} b.
        let c = indicator_combiner_crn(1);
        assert!(c.is_output_oblivious());
        for a in 0..3u64 {
            for b in 0..3u64 {
                for v in 0..4u64 {
                    let expected = a + if v > 1 { b } else { 0 };
                    let verdict =
                        check_stable_computation(&c, &NVec::from(vec![a, b, v]), expected, 50_000)
                            .unwrap();
                    assert!(verdict.is_correct(), "c({a},{b},{v}) failed");
                }
            }
        }
    }

    #[test]
    fn eventual_min_crn_computes_min_of_affine_pieces() {
        // min(x1 + 1, x2 + 1) with threshold 0.
        let g1 = QuiltAffine::affine(QVec::from(vec![1, 0]), Rational::ONE).unwrap();
        let g2 = QuiltAffine::affine(QVec::from(vec![0, 1]), Rational::ONE).unwrap();
        let crn = eventual_min_crn(&[g1, g2], &NVec::zeros(2)).unwrap();
        assert!(crn.is_output_oblivious());
        for x1 in 0..3u64 {
            for x2 in 0..3u64 {
                let expected = x1.min(x2) + 1;
                let v =
                    check_stable_computation(&crn, &NVec::from(vec![x1, x2]), expected, 500_000)
                        .unwrap();
                assert!(v.is_correct(), "min(x1,x2)+1 failed at ({x1},{x2})");
            }
        }
    }

    #[test]
    fn synthesize_min_one_spec() {
        // The Figure 2 function min(1, x) via the full Lemma 6.2 pipeline.
        let eventual =
            crate::spec::EventuallyMin::new(NVec::from(vec![1]), vec![QuiltAffine::constant(1, 1)])
                .unwrap();
        let mut restrictions = BTreeMap::new();
        restrictions.insert((0usize, 0u64), ObliviousSpec::Constant(0));
        let spec = ObliviousSpec::compound(eventual, restrictions).unwrap();
        let crn = synthesize(&spec).unwrap();
        assert!(crn.is_output_oblivious());
        assert!(crn.has_leader());
        for x in 0..5u64 {
            let v =
                check_stable_computation(&crn, &NVec::from(vec![x]), x.min(1), 500_000).unwrap();
            assert!(v.is_correct(), "min(1,{x}) failed");
        }
    }

    #[test]
    fn synthesize_two_dimensional_min_spec() {
        // f(x1, x2) = min(x1, x2): eventual-min of the two coordinate
        // projections with threshold 0 (no finite region).
        let g1 = QuiltAffine::affine(QVec::from(vec![1, 0]), Rational::ZERO).unwrap();
        let g2 = QuiltAffine::affine(QVec::from(vec![0, 1]), Rational::ZERO).unwrap();
        let spec = ObliviousSpec::compound(
            crate::spec::EventuallyMin::new(NVec::zeros(2), vec![g1, g2]).unwrap(),
            BTreeMap::new(),
        )
        .unwrap();
        let crn = synthesize(&spec).unwrap();
        assert!(crn.is_output_oblivious());
        // Exhaustive verification on a small box; larger inputs by stochastic
        // spot checks (the composed CRN's reachable space grows quickly).
        for x1 in 0..3u64 {
            for x2 in 0..3u64 {
                let v =
                    check_stable_computation(&crn, &NVec::from(vec![x1, x2]), x1.min(x2), 500_000)
                        .unwrap();
                assert!(v.is_correct(), "min failed at ({x1},{x2})");
            }
        }
        let mismatches = spot_check_on_box(&crn, |x| x[0].min(x[1]), 5, 1_000_000, 9).unwrap();
        assert_eq!(mismatches, 0);
    }

    #[test]
    fn synthesize_spec_with_finite_region_and_quilt_pieces() {
        // f(x) = 0 for x < 2, floor(3x/2) - 2 for x >= 2  (1-D, threshold 2,
        // genuine quilt piece with period 2, nontrivial finite region).
        let piece = {
            // floor(3x/2) - 2 as a quilt-affine function: gradient 3/2,
            // offsets B(0) = -2, B(1) = -5/2.
            let mut offsets = std::collections::BTreeMap::new();
            offsets.insert(vec![0u64], Rational::from(-2));
            offsets.insert(vec![1u64], Rational::new(-5, 2));
            QuiltAffine::new(QVec::from(vec![Rational::new(3, 2)]), 2, offsets).unwrap()
        };
        let expected = |x: u64| if x < 2 { 0 } else { 3 * x / 2 - 2 };
        let eventual = crate::spec::EventuallyMin::new(NVec::from(vec![2]), vec![piece]).unwrap();
        let mut restrictions = BTreeMap::new();
        restrictions.insert((0usize, 0u64), ObliviousSpec::Constant(0));
        restrictions.insert((0usize, 1u64), ObliviousSpec::Constant(0));
        let spec = ObliviousSpec::compound(eventual, restrictions).unwrap();
        // The spec itself evaluates correctly.
        for x in 0..8u64 {
            assert_eq!(spec.eval(&NVec::from(vec![x])).unwrap(), expected(x));
        }
        let crn = synthesize(&spec).unwrap();
        assert!(crn.is_output_oblivious());
        // Exhaustive verification on small inputs; the composed CRN's
        // reachable space grows too fast for exhaustive search beyond that,
        // so larger inputs are covered by stochastic spot checks.
        for x in 0..3u64 {
            let v =
                check_stable_computation(&crn, &NVec::from(vec![x]), expected(x), 500_000).unwrap();
            assert!(v.is_correct(), "finite-region spec failed at {x}");
        }
        let mismatches = spot_check_on_box(&crn, |x| expected(x[0]), 6, 1_000_000, 17).unwrap();
        assert_eq!(mismatches, 0);
    }

    #[test]
    fn pad_input_ignores_new_coordinate() {
        let double = examples::multiply_crn(2);
        let padded = pad_input(&double, 0);
        assert_eq!(padded.dim(), 2);
        let v = check_stable_computation(&padded, &NVec::from(vec![9, 3]), 6, 50_000).unwrap();
        assert!(v.is_correct());
    }
}
