//! The primary contribution of "Composable computation in discrete chemical
//! reaction networks" (Severson, Haley, Doty; PODC 2019), as an executable
//! library.
//!
//! The paper characterizes the functions `f : N^d → N` stably computable by
//! **output-oblivious** CRNs (with an initial leader): exactly the
//! nondecreasing functions that are *eventually a minimum of quilt-affine
//! functions*, all of whose fixed-input restrictions are recursively of the
//! same form (Theorem 5.2).  This crate implements every constructive and
//! analytic ingredient of that result:
//!
//! | Paper | Module |
//! |---|---|
//! | Definition 5.1 (quilt-affine functions) | [`quilt`] |
//! | Eventual-min representations / Theorem 5.2 specs | [`spec`] |
//! | Theorem 3.1 and Theorem 9.2 (1-D, with and without leader) | [`one_dim`] |
//! | Lemma 6.1 and Lemma 6.2 (CRN constructions) | [`synthesis`] |
//! | Lemma 4.1 / Theorem 5.4 (impossibility witnesses) | [`impossibility`] |
//! | Section 7 (domain decomposition → characterization) | [`mod@characterize`] |
//! | Theorem 8.2 (scaling limit, continuous correspondence) | [`scaling`] |
//!
//! ```
//! use crn_core::quilt::QuiltAffine;
//! use crn_core::synthesis::quilt_crn;
//! use crn_model::check_stable_computation;
//! use crn_numeric::{NVec, QVec, Rational};
//!
//! // floor(3x/2) as a quilt-affine function, compiled to an output-oblivious CRN.
//! let g = QuiltAffine::floor_linear(QVec::from(vec![Rational::new(3, 2)]), 2);
//! let crn = quilt_crn(&g).unwrap();
//! assert!(crn.is_output_oblivious());
//! let verdict = check_stable_computation(&crn, &NVec::from(vec![5]), 7, 10_000).unwrap();
//! assert!(verdict.is_correct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod error;
pub mod impossibility;
pub mod one_dim;
pub mod quilt;
pub mod scaling;
pub mod spec;
pub mod synthesis;

pub use characterize::{characterize, Characterization};
pub use error::CoreError;
pub use impossibility::{find_lemma41_witness, Lemma41Witness};
pub use one_dim::{analyze_1d, synthesize_1d_leader, synthesize_1d_leaderless, Structure1D};
pub use quilt::QuiltAffine;
pub use scaling::InfinityScaling;
pub use spec::{EventuallyMin, ObliviousSpec};
pub use synthesis::{quilt_crn, synthesize};
