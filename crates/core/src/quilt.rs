//! Quilt-affine functions (Definition 5.1): `g(x) = ∇g·x + B(x mod p)`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crn_numeric::{CongruenceClass, NVec, QVec, Rational};

use crate::error::CoreError;

/// A quilt-affine function `g : N^d → Z`,
/// `g(x) = ∇g · x + B(x mod p)` with a nonnegative rational gradient `∇g`
/// and a periodic rational offset `B : Z^d/pZ^d → Q`, required to be
/// integer-valued and nondecreasing (Definition 5.1).
///
/// ```
/// use crn_core::QuiltAffine;
/// use crn_numeric::{NVec, QVec, Rational};
///
/// // Figure 3a: floor(3x/2) = (3/2)x + B(x mod 2), B(0)=0, B(1)=-1/2.
/// let g = QuiltAffine::floor_linear(QVec::from(vec![Rational::new(3, 2)]), 2);
/// assert_eq!(g.eval(&NVec::from(vec![4])).unwrap(), 6);
/// assert_eq!(g.eval(&NVec::from(vec![5])).unwrap(), 7);
/// assert!(g.is_nondecreasing());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuiltAffine {
    dim: usize,
    period: u64,
    gradient: QVec,
    /// Offset per congruence-class representative (each residue in `[0, p)`).
    offsets: BTreeMap<Vec<u64>, Rational>,
}

impl QuiltAffine {
    /// Builds a quilt-affine function from its gradient, period and offsets.
    ///
    /// Offsets must be supplied for **every** congruence class in
    /// `Z^d/pZ^d`; keys are canonical residue tuples in `[0, p)^d`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] if the gradient has a negative
    /// component or an offset is missing, and [`CoreError::NotInteger`] if
    /// some value `∇·x + B(x)` would not be an integer.
    pub fn new(
        gradient: QVec,
        period: u64,
        offsets: BTreeMap<Vec<u64>, Rational>,
    ) -> Result<Self, CoreError> {
        let dim = gradient.dim();
        if period == 0 {
            return Err(CoreError::InvalidSpec("period must be positive".into()));
        }
        if !gradient.is_nonnegative() {
            return Err(CoreError::InvalidSpec(format!(
                "quilt-affine gradient must be nonnegative, got {gradient}"
            )));
        }
        let g = QuiltAffine {
            dim,
            period,
            gradient,
            offsets,
        };
        // Every class must be present and give an integer value on its
        // canonical representative (hence, by periodicity of the congruence
        // class and rationality of the gradient, on every point).
        for class in CongruenceClass::enumerate_all(dim, period) {
            let rep = class.representative();
            let value = g.eval_rational(&rep);
            if g.offset_of(&rep).is_none() {
                return Err(CoreError::InvalidSpec(format!(
                    "missing offset for congruence class {class}"
                )));
            }
            if !value.is_integer() {
                return Err(CoreError::NotInteger(format!(
                    "g({rep}) = {value} is not an integer"
                )));
            }
            // Integrality must persist along each axis within the period.
            for i in 0..dim {
                let shifted = &rep + &NVec::basis(dim, i);
                if !g.eval_rational(&shifted).is_integer() {
                    return Err(CoreError::NotInteger(format!(
                        "g({shifted}) is not an integer"
                    )));
                }
            }
        }
        Ok(g)
    }

    /// An ordinary affine function `x ↦ gradient·x + offset` viewed as
    /// quilt-affine with period 1.
    ///
    /// # Errors
    ///
    /// Returns an error if the gradient is negative somewhere or the values
    /// are not integers (the gradient must then be integral).
    pub fn affine(gradient: QVec, offset: Rational) -> Result<Self, CoreError> {
        let dim = gradient.dim();
        let mut offsets = BTreeMap::new();
        offsets.insert(vec![0; dim], offset);
        QuiltAffine::new(gradient, 1, offsets)
    }

    /// The floored linear function `x ↦ ⌊gradient·x⌋` with the given period
    /// (which must clear every gradient denominator).
    ///
    /// # Panics
    ///
    /// Panics if `period` does not clear the gradient's denominators or the
    /// gradient has a negative component.
    #[must_use]
    pub fn floor_linear(gradient: QVec, period: u64) -> Self {
        let dim = gradient.dim();
        assert!(
            (Rational::from(period as i64) * Rational::new(1, gradient.denominator_lcm()))
                .is_integer(),
            "period must clear the gradient denominators"
        );
        let mut offsets = BTreeMap::new();
        for class in CongruenceClass::enumerate_all(dim, period) {
            let rep = class.representative();
            let linear = gradient.dot_n(&rep);
            offsets.insert(
                rep.as_slice().to_vec(),
                Rational::from(linear.floor()) - linear,
            );
        }
        QuiltAffine::new(gradient, period, offsets).expect("floored linear is quilt-affine")
    }

    /// The constant function with period 1.
    #[must_use]
    pub fn constant(dim: usize, value: i64) -> Self {
        QuiltAffine::affine(QVec::zeros(dim), Rational::from(value))
            .expect("constants are quilt-affine")
    }

    /// The input dimension `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The period `p`.
    #[must_use]
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The gradient `∇g`.
    #[must_use]
    pub fn gradient(&self) -> &QVec {
        &self.gradient
    }

    /// The periodic offset of the class containing `x`.
    #[must_use]
    pub fn offset_of(&self, x: &NVec) -> Option<Rational> {
        self.offsets.get(&x.mod_p(self.period)).copied()
    }

    fn eval_rational(&self, x: &NVec) -> Rational {
        self.gradient.dot_n(x) + self.offset_of(x).unwrap_or(Rational::ZERO)
    }

    /// Evaluates `g(x)` as an integer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotInteger`] if the value is not an integer (this
    /// indicates a malformed offset table, which [`QuiltAffine::new`] rejects).
    pub fn eval(&self, x: &NVec) -> Result<i64, CoreError> {
        let value = self.eval_rational(x);
        value
            .to_integer()
            .and_then(|v| i64::try_from(v).ok())
            .ok_or_else(|| CoreError::NotInteger(format!("g({x}) = {value}")))
    }

    /// The finite difference `δ^i_a = g(x + e_i) − g(x)` for any `x` in class
    /// `a` (Lemma 6.1): `∇g·e_i + B(a + e_i) − B(a)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotInteger`] if the difference is not an integer.
    pub fn finite_difference(&self, i: usize, class: &CongruenceClass) -> Result<i64, CoreError> {
        assert!(i < self.dim, "component index out of range");
        let rep = class.representative();
        let next = &rep + &NVec::basis(self.dim, i);
        Ok(self.eval(&next)? - self.eval(&rep)?)
    }

    /// Whether the function is nondecreasing, i.e. every finite difference
    /// `δ^i_a` is `≥ 0` (the defining requirement of Definition 5.1).
    #[must_use]
    pub fn is_nondecreasing(&self) -> bool {
        CongruenceClass::enumerate_all(self.dim, self.period)
            .iter()
            .all(|class| {
                (0..self.dim).all(|i| {
                    self.finite_difference(i, class)
                        .map(|d| d >= 0)
                        .unwrap_or(false)
                })
            })
    }

    /// Whether `g(x) ≥ 0` for every `x ∈ N^d`.  For a nondecreasing
    /// quilt-affine function it suffices to check the box `[0, p)^d`.
    #[must_use]
    pub fn is_nonnegative(&self) -> bool {
        CongruenceClass::enumerate_all(self.dim, self.period)
            .iter()
            .all(|class| {
                self.eval(&class.representative())
                    .map(|v| v >= 0)
                    .unwrap_or(false)
            })
    }

    /// The translate `x ↦ g(x + shift)`, still quilt-affine with the same
    /// gradient and period (used by Lemma 6.2 to turn `g_k` into the
    /// nonnegative `g_k(x + n)`).
    ///
    /// # Errors
    ///
    /// Propagates construction errors (none are expected for valid inputs).
    pub fn translate(&self, shift: &NVec) -> Result<QuiltAffine, CoreError> {
        assert_eq!(shift.dim(), self.dim, "dimension mismatch");
        let mut offsets = BTreeMap::new();
        for class in CongruenceClass::enumerate_all(self.dim, self.period) {
            let rep = class.representative();
            let value = Rational::from(self.eval(&(&rep + shift))?);
            offsets.insert(rep.as_slice().to_vec(), value - self.gradient.dot_n(&rep));
        }
        QuiltAffine::new(self.gradient.clone(), self.period, offsets)
    }

    /// Re-expresses the function with a period `p* = k·p` (a multiple of the
    /// current period); the function is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] if `p_star` is not a positive
    /// multiple of the current period.
    pub fn with_period(&self, p_star: u64) -> Result<QuiltAffine, CoreError> {
        if p_star == 0 || p_star % self.period != 0 {
            return Err(CoreError::InvalidSpec(format!(
                "{p_star} is not a multiple of the period {}",
                self.period
            )));
        }
        let mut offsets = BTreeMap::new();
        for class in CongruenceClass::enumerate_all(self.dim, p_star) {
            let rep = class.representative();
            offsets.insert(
                rep.as_slice().to_vec(),
                Rational::from(self.eval(&rep)?) - self.gradient.dot_n(&rep),
            );
        }
        QuiltAffine::new(self.gradient.clone(), p_star, offsets)
    }

    /// The fixed-input restriction `g[x(i) → j]` as a quilt-affine function of
    /// the remaining `d − 1` inputs.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn restrict(&self, i: usize, j: u64) -> Result<QuiltAffine, CoreError> {
        assert!(i < self.dim, "component index out of range");
        let remaining: Vec<Rational> = self
            .gradient
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != i)
            .map(|(_, &c)| c)
            .collect();
        let gradient = QVec::from(remaining);
        let mut offsets = BTreeMap::new();
        for class in CongruenceClass::enumerate_all(self.dim - 1, self.period) {
            let rep = class.representative();
            let full = rep.with_inserted(i, j);
            offsets.insert(
                rep.as_slice().to_vec(),
                Rational::from(self.eval(&full)?) - gradient.dot_n(&rep),
            );
        }
        QuiltAffine::new(gradient, self.period, offsets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fig3b() -> QuiltAffine {
        // Figure 3b: g(x) = (1,2)·x + B(x mod 3) with B = 0 except
        // B = -1 on the classes {(1,2),(2,2),(2,1)} (a "dented quilt"; the
        // paper leaves B unspecified, any nondecreasing integer choice works).
        let mut offsets = BTreeMap::new();
        for class in CongruenceClass::enumerate_all(2, 3) {
            let rep = class.representative().as_slice().to_vec();
            let dented = [[1, 2], [2, 2], [2, 1]].iter().any(|d| rep == d.to_vec());
            offsets.insert(
                rep,
                if dented {
                    Rational::from(-1)
                } else {
                    Rational::ZERO
                },
            );
        }
        QuiltAffine::new(QVec::from(vec![1, 2]), 3, offsets).unwrap()
    }

    #[test]
    fn floor_three_halves_matches_closed_form() {
        let g = QuiltAffine::floor_linear(QVec::from(vec![Rational::new(3, 2)]), 2);
        for x in 0..20u64 {
            assert_eq!(g.eval(&NVec::from(vec![x])).unwrap(), (3 * x / 2) as i64);
        }
        assert!(g.is_nondecreasing());
        assert!(g.is_nonnegative());
        assert_eq!(g.period(), 2);
        // Finite differences alternate 1, 2.
        let c0 = CongruenceClass::from_residues(vec![0], 2);
        let c1 = CongruenceClass::from_residues(vec![1], 2);
        assert_eq!(g.finite_difference(0, &c0).unwrap(), 1);
        assert_eq!(g.finite_difference(0, &c1).unwrap(), 2);
    }

    #[test]
    fn figure3b_example_is_quilt_affine_and_nondecreasing() {
        let g = fig3b();
        assert!(g.is_nondecreasing());
        assert!(g.is_nonnegative());
        assert_eq!(g.eval(&NVec::from(vec![0, 0])).unwrap(), 0);
        assert_eq!(g.eval(&NVec::from(vec![1, 2])).unwrap(), 1 + 4 - 1);
        assert_eq!(g.eval(&NVec::from(vec![4, 5])).unwrap(), 4 + 10 - 1);
        assert_eq!(g.eval(&NVec::from(vec![3, 3])).unwrap(), 9);
    }

    #[test]
    fn affine_constructor_and_constant() {
        let g = QuiltAffine::affine(QVec::from(vec![2, 1]), Rational::from(3)).unwrap();
        assert_eq!(g.eval(&NVec::from(vec![1, 1])).unwrap(), 6);
        assert_eq!(g.period(), 1);
        let c = QuiltAffine::constant(2, 7);
        assert_eq!(c.eval(&NVec::from(vec![5, 0])).unwrap(), 7);
    }

    #[test]
    fn negative_gradient_rejected() {
        let err = QuiltAffine::affine(QVec::from(vec![-1]), Rational::ZERO).unwrap_err();
        assert!(matches!(err, CoreError::InvalidSpec(_)));
    }

    #[test]
    fn non_integer_values_rejected() {
        // Gradient 1/2 with period 1 cannot be integer-valued.
        let err =
            QuiltAffine::affine(QVec::from(vec![Rational::new(1, 2)]), Rational::ZERO).unwrap_err();
        assert!(matches!(err, CoreError::NotInteger(_)));
    }

    #[test]
    fn missing_offset_rejected() {
        let err = QuiltAffine::new(QVec::from(vec![1]), 2, BTreeMap::new()).unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidSpec(_) | CoreError::NotInteger(_)
        ));
    }

    #[test]
    fn translation_shifts_argument() {
        let g = QuiltAffine::floor_linear(QVec::from(vec![Rational::new(3, 2)]), 2);
        let shifted = g.translate(&NVec::from(vec![3])).unwrap();
        for x in 0..10u64 {
            assert_eq!(
                shifted.eval(&NVec::from(vec![x])).unwrap(),
                g.eval(&NVec::from(vec![x + 3])).unwrap()
            );
        }
        assert_eq!(shifted.gradient(), g.gradient());
    }

    #[test]
    fn with_period_is_value_preserving() {
        let g = QuiltAffine::floor_linear(QVec::from(vec![Rational::new(3, 2)]), 2);
        let refined = g.with_period(6).unwrap();
        assert_eq!(refined.period(), 6);
        for x in 0..15u64 {
            assert_eq!(
                refined.eval(&NVec::from(vec![x])).unwrap(),
                g.eval(&NVec::from(vec![x])).unwrap()
            );
        }
        assert!(g.with_period(5).is_err());
    }

    #[test]
    fn restriction_fixes_an_input() {
        let g = fig3b();
        let restricted = g.restrict(1, 4).unwrap();
        assert_eq!(restricted.dim(), 1);
        for x in 0..9u64 {
            assert_eq!(
                restricted.eval(&NVec::from(vec![x])).unwrap(),
                g.eval(&NVec::from(vec![x, 4])).unwrap()
            );
        }
    }

    #[test]
    fn ceil_average_is_quilt_affine() {
        // gU(x1, x2) = ceil((x1 + x2)/2), the Figure 7d strip extension:
        // gradient (1/2, 1/2), period 2, B = 0 on even-sum classes, +1/2 on
        // odd-sum classes.
        let mut offsets = BTreeMap::new();
        for class in CongruenceClass::enumerate_all(2, 2) {
            let rep = class.representative();
            let parity = (rep[0] + rep[1]) % 2;
            offsets.insert(
                rep.as_slice().to_vec(),
                if parity == 0 {
                    Rational::ZERO
                } else {
                    Rational::new(1, 2)
                },
            );
        }
        let g = QuiltAffine::new(
            QVec::from(vec![Rational::new(1, 2), Rational::new(1, 2)]),
            2,
            offsets,
        )
        .unwrap();
        assert!(g.is_nondecreasing());
        for x1 in 0..8u64 {
            for x2 in 0..8u64 {
                assert_eq!(
                    g.eval(&NVec::from(vec![x1, x2])).unwrap() as u64,
                    (x1 + x2).div_ceil(2)
                );
            }
        }
    }

    proptest! {
        #[test]
        fn finite_differences_reconstruct_the_function(x in 0u64..12) {
            // g(x) = g(0) + sum of finite differences along the path 0 -> x.
            let g = QuiltAffine::floor_linear(QVec::from(vec![Rational::new(5, 3)]), 3);
            let mut acc = g.eval(&NVec::from(vec![0])).unwrap();
            for step in 0..x {
                let class = CongruenceClass::of(&NVec::from(vec![step]), 3);
                acc += g.finite_difference(0, &class).unwrap();
            }
            prop_assert_eq!(acc, g.eval(&NVec::from(vec![x])).unwrap());
        }

        #[test]
        fn floor_linear_2d_matches_closed_form(x1 in 0u64..10, x2 in 0u64..10) {
            let g = QuiltAffine::floor_linear(
                QVec::from(vec![Rational::new(1, 2), Rational::new(2, 3)]),
                6,
            );
            let expected = (3 * x1 + 4 * x2) / 6; // floor((x1/2 + 2x2/3))
            prop_assert_eq!(g.eval(&NVec::from(vec![x1, x2])).unwrap() as u64, expected);
        }
    }
}
