//! The one-dimensional characterizations: Theorem 3.1 (with a leader) and
//! Theorem 9.2 (leaderless), with their explicit CRN constructions.

use crn_model::{Crn, FunctionCrn, Reaction, Roles};
use crn_numeric::NVec;
use crn_semilinear::SemilinearFunction;

use crate::error::CoreError;

/// The eventually quilt-affine structure of a semilinear nondecreasing
/// function `f : N → N` (Figure 5): initial values `f(0), …, f(n)` and, for
/// `x ≥ n`, periodic finite differences `δ̄_0, …, δ̄_{p−1}` with
/// `f(x+1) − f(x) = δ̄_{x mod p}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Structure1D {
    /// The values `f(0), …, f(n)` (length `n + 1`).
    pub initial_values: Vec<u64>,
    /// The eventual period `p ≥ 1`.
    pub period: u64,
    /// The periodic finite differences `δ̄_a = f(x+1) − f(x)` for `x ≥ n` with
    /// `x ≡ a (mod p)`.
    pub deltas: Vec<u64>,
}

impl Structure1D {
    /// The threshold `n` (the number of initial values minus one).
    #[must_use]
    pub fn threshold(&self) -> u64 {
        (self.initial_values.len() - 1) as u64
    }

    /// Evaluates the function described by this structure.
    #[must_use]
    pub fn eval(&self, x: u64) -> u64 {
        let n = self.threshold();
        if x <= n {
            return self.initial_values[x as usize];
        }
        let mut value = self.initial_values[n as usize];
        for step in n..x {
            value += self.deltas[(step % self.period) as usize];
        }
        value
    }
}

/// Extracts the eventually quilt-affine structure of a nondecreasing function
/// `f : N → N` given as an oracle, searching thresholds up to `max_threshold`
/// and periods up to `max_period`, and verifying the found structure on a
/// window of length `verify_window` beyond the threshold.
///
/// For a semilinear nondecreasing `f` such a structure exists (proof of
/// Theorem 3.1); the search is exact whenever the true `(n, p)` lie within
/// the bounds.
///
/// # Errors
///
/// Returns [`CoreError::AnalysisInconclusive`] if no `(n, p)` within the
/// bounds matches, and [`CoreError::NotNondecreasing`] if a decreasing step is
/// found in the examined window.
pub fn analyze_1d(
    f: impl Fn(u64) -> u64,
    max_threshold: u64,
    max_period: u64,
    verify_window: u64,
) -> Result<Structure1D, CoreError> {
    let horizon = max_threshold + max_period * 2 + verify_window + 2;
    let values: Vec<u64> = (0..=horizon).map(&f).collect();
    if let Some(x) = (0..horizon as usize).find(|&x| values[x + 1] < values[x]) {
        return Err(CoreError::NotNondecreasing(format!(
            "f({}) = {} > f({}) = {}",
            x,
            values[x],
            x + 1,
            values[x + 1]
        )));
    }
    for n in 0..=max_threshold {
        'period: for p in 1..=max_period {
            // Candidate deltas from the window [n, n + p).
            let deltas: Vec<u64> = (0..p)
                .map(|a| {
                    let x = n + a;
                    values[(x + 1) as usize] - values[x as usize]
                })
                .collect();
            // Verify on the remaining window.
            for x in n..(n + p * 2 + verify_window) {
                let expected = deltas[((x - n) % p) as usize];
                if values[(x + 1) as usize] - values[x as usize] != expected {
                    continue 'period;
                }
            }
            // Reindex deltas so that deltas[a] applies to x ≡ a (mod p).
            let mut by_class = vec![0u64; p as usize];
            for a in 0..p {
                let x = n + a;
                by_class[(x % p) as usize] = deltas[a as usize];
            }
            return Ok(Structure1D {
                initial_values: values[..=(n as usize)].to_vec(),
                period: p,
                deltas: by_class,
            });
        }
    }
    Err(CoreError::AnalysisInconclusive(format!(
        "no eventually periodic structure with n ≤ {max_threshold}, p ≤ {max_period}"
    )))
}

/// Convenience wrapper of [`analyze_1d`] for a semilinear presentation.
///
/// # Errors
///
/// Propagates [`analyze_1d`] errors; evaluation failures of the presentation
/// surface as [`CoreError::AnalysisInconclusive`].
pub fn analyze_semilinear_1d(
    f: &SemilinearFunction,
    max_threshold: u64,
    max_period: u64,
) -> Result<Structure1D, CoreError> {
    if f.dim() != 1 {
        return Err(CoreError::InvalidSpec(format!(
            "expected a 1-D function, got dimension {}",
            f.dim()
        )));
    }
    analyze_1d(
        |x| f.eval(&NVec::from(vec![x])).unwrap_or(0),
        max_threshold,
        max_period,
        2 * max_period + 4,
    )
}

/// The Theorem 3.1 construction: an output-oblivious CRN with a single leader
/// stably computing the function described by `structure`.
///
/// Reactions (writing `n` for the threshold and `p` for the period):
///
/// ```text
/// L → f(0)·Y + L_0
/// L_i + X → [f(i+1) − f(i)]·Y + L_{i+1}        for i = 0, …, n−2
/// L_{n−1} + X → [f(n) − f(n−1)]·Y + P_{n mod p}
/// P_a + X → δ̄_a·Y + P_{(a+1) mod p}            for a = 0, …, p−1
/// ```
#[must_use]
pub fn synthesize_1d_leader(structure: &Structure1D) -> FunctionCrn {
    let n = structure.threshold();
    let p = structure.period;
    let mut crn = Crn::new();
    let x = crn.add_species("X");
    let y = crn.add_species("Y");
    let leader = crn.add_species("L");
    let l_states: Vec<_> = (0..n).map(|i| crn.add_species(&format!("L{i}"))).collect();
    let p_states: Vec<_> = (0..p).map(|a| crn.add_species(&format!("P{a}"))).collect();

    let f0 = structure.initial_values[0];
    let first_state = if n == 0 { p_states[0] } else { l_states[0] };
    crn.add_reaction(Reaction::new(
        vec![(leader, 1)],
        vec![(y, f0), (first_state, 1)],
    ));
    for i in 0..n {
        let diff =
            structure.initial_values[(i + 1) as usize] - structure.initial_values[i as usize];
        let next = if i + 1 == n {
            p_states[((i + 1) % p) as usize]
        } else {
            l_states[(i + 1) as usize]
        };
        crn.add_reaction(Reaction::new(
            vec![(l_states[i as usize], 1), (x, 1)],
            vec![(y, diff), (next, 1)],
        ));
    }
    for a in 0..p {
        crn.add_reaction(Reaction::new(
            vec![(p_states[a as usize], 1), (x, 1)],
            vec![
                (y, structure.deltas[a as usize]),
                (p_states[((a + 1) % p) as usize], 1),
            ],
        ));
    }
    FunctionCrn::new(
        crn,
        Roles {
            inputs: vec![x],
            output: y,
            leader: Some(leader),
        },
    )
    .expect("roles are valid by construction")
}

/// The Theorem 9.2 construction: a **leaderless** output-oblivious CRN stably
/// computing a semilinear *superadditive* function `f : N → N`.
///
/// Every input molecule starts its own auxiliary leader via
/// `X → f(1)·Y + L_1`; pairwise "merge" reactions between auxiliary leaders
/// release the corrective differences `D_{i,j} = f(i+j) − f(i) − f(j) ≥ 0`
/// guaranteed nonnegative by superadditivity.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSpec`] if `f(0) ≠ 0` or a corrective difference
/// is negative (i.e. the function is not superadditive), in which case no
/// leaderless output-oblivious CRN exists (Observation 9.1).
pub fn synthesize_1d_leaderless(
    structure: &Structure1D,
    f: impl Fn(u64) -> u64,
) -> Result<FunctionCrn, CoreError> {
    if structure.initial_values[0] != 0 {
        return Err(CoreError::InvalidSpec(
            "a superadditive function must have f(0) = 0".into(),
        ));
    }
    let n = structure.threshold().max(1);
    let p = structure.period;
    // Corrective difference helper; errors if superadditivity fails.
    let correction = |a: u64, b: u64| -> Result<u64, CoreError> {
        let (fa, fb, fab) = (f(a), f(b), f(a + b));
        if fa + fb > fab {
            return Err(CoreError::InvalidSpec(format!(
                "not superadditive: f({a}) + f({b}) = {} > f({}) = {fab}",
                fa + fb,
                a + b
            )));
        }
        Ok(fab - fa - fb)
    };

    let mut crn = Crn::new();
    let x = crn.add_species("X");
    let y = crn.add_species("Y");
    let l_states: Vec<_> = (1..n).map(|i| crn.add_species(&format!("L{i}"))).collect();
    let p_states: Vec<_> = (0..p).map(|a| crn.add_species(&format!("P{a}"))).collect();
    // Species for the "amount of input consumed" tracked by an auxiliary
    // leader: L_i for 1 <= i < n, P_a for inputs >= n with count ≡ n + a mod p.
    let state_for = |count: u64| -> crn_model::Species {
        if count < n {
            l_states[(count - 1) as usize]
        } else {
            p_states[((count - n) % p) as usize]
        }
    };

    // X → f(1) Y + state(1)
    crn.add_reaction(Reaction::new(
        vec![(x, 1)],
        vec![(y, f(1)), (state_for(1), 1)],
    ));
    // state(i) + X → δ Y + state(i+1): absorb further input one at a time.
    // For i < n the delta is f(i+1) − f(i); for i ≥ n it is δ̄_{(i−n) mod p}
    // ... which is exactly structure.eval(i+1) − structure.eval(i).
    for i in 1..(n + p) {
        let delta = structure.eval(i + 1) - structure.eval(i);
        crn.add_reaction(Reaction::new(
            vec![(state_for(i), 1), (x, 1)],
            vec![(y, delta), (state_for(i + 1), 1)],
        ));
    }
    // Pairwise merges of auxiliary leaders with corrective output.
    // L_i + L_j (i, j < n): consumed inputs add.
    for i in 1..n {
        for j in i..n {
            crn.add_reaction(Reaction::new(
                vec![(state_for(i), 1), (state_for(j), 1)],
                vec![(y, correction(i, j)?), (state_for(i + j), 1)],
            ));
        }
    }
    // L_i + P_a: the P leader consumed n + a (+ kp) inputs; the correction is
    // independent of k because the periodic differences cancel.
    for i in 1..n {
        for a in 0..p {
            crn.add_reaction(Reaction::new(
                vec![(state_for(i), 1), (p_states[a as usize], 1)],
                vec![(y, correction(i, n + a)?), (state_for(i + n + a), 1)],
            ));
        }
    }
    // P_a + P_b.
    for a in 0..p {
        for b in a..p {
            crn.add_reaction(Reaction::new(
                vec![(p_states[a as usize], 1), (p_states[b as usize], 1)],
                vec![
                    (y, correction(n + a, n + b)?),
                    (state_for(2 * n + a + b), 1),
                ],
            ));
        }
    }
    FunctionCrn::new(
        crn,
        Roles {
            inputs: vec![x],
            output: y,
            leader: None,
        },
    )
    .map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_model::check_stable_computation;
    use crn_semilinear::examples;

    #[test]
    fn analyze_floor_three_halves() {
        let s = analyze_1d(|x| 3 * x / 2, 5, 4, 10).unwrap();
        assert_eq!(s.period, 2);
        assert_eq!(s.deltas.iter().sum::<u64>(), 3);
        for x in 0..20 {
            assert_eq!(s.eval(x), 3 * x / 2);
        }
    }

    #[test]
    fn analyze_staircase_finds_threshold_and_period() {
        let f = examples::staircase_1d();
        let s = analyze_semilinear_1d(&f, 8, 4).unwrap();
        for x in 0..25u64 {
            assert_eq!(s.eval(x), f.eval(&NVec::from(vec![x])).unwrap());
        }
    }

    #[test]
    fn analyze_rejects_decreasing() {
        let err = analyze_1d(|x| 10u64.saturating_sub(x), 3, 3, 5).unwrap_err();
        assert!(matches!(err, CoreError::NotNondecreasing(_)));
    }

    #[test]
    fn analyze_inconclusive_when_bounds_too_small() {
        // Period 5 cannot be found with max_period 2.
        let err = analyze_1d(|x| x + (x % 5) / 4, 2, 2, 5).unwrap_err();
        assert!(matches!(err, CoreError::AnalysisInconclusive(_)));
    }

    #[test]
    fn theorem31_construction_for_min_one() {
        let f = examples::min_one();
        let s = analyze_semilinear_1d(&f, 4, 2).unwrap();
        let crn = synthesize_1d_leader(&s);
        assert!(crn.is_output_oblivious());
        assert!(crn.has_leader());
        for x in 0..6u64 {
            let v = check_stable_computation(&crn, &NVec::from(vec![x]), x.min(1), 50_000).unwrap();
            assert!(v.is_correct(), "min(1,{x}) failed");
        }
    }

    #[test]
    fn theorem31_construction_for_floor_three_halves() {
        let s = analyze_1d(|x| 3 * x / 2, 3, 3, 8).unwrap();
        let crn = synthesize_1d_leader(&s);
        assert!(crn.is_output_oblivious());
        for x in 0..9u64 {
            let v =
                check_stable_computation(&crn, &NVec::from(vec![x]), 3 * x / 2, 100_000).unwrap();
            assert!(v.is_correct(), "⌊3·{x}/2⌋ failed");
        }
    }

    #[test]
    fn theorem31_construction_for_staircase() {
        let f = examples::staircase_1d();
        let s = analyze_semilinear_1d(&f, 8, 4).unwrap();
        let crn = synthesize_1d_leader(&s);
        assert!(crn.is_output_oblivious());
        for x in 0..10u64 {
            let expected = f.eval(&NVec::from(vec![x])).unwrap();
            let v =
                check_stable_computation(&crn, &NVec::from(vec![x]), expected, 200_000).unwrap();
            assert!(v.is_correct(), "staircase({x}) failed");
        }
    }

    #[test]
    fn theorem92_construction_for_doubling() {
        // f(x) = 2x is superadditive (it is additive); the leaderless CRN works.
        let s = analyze_1d(|x| 2 * x, 2, 2, 6).unwrap();
        let crn = synthesize_1d_leaderless(&s, |x| 2 * x).unwrap();
        assert!(crn.is_output_oblivious());
        assert!(!crn.has_leader());
        for x in 0..7u64 {
            let v = check_stable_computation(&crn, &NVec::from(vec![x]), 2 * x, 200_000).unwrap();
            assert!(v.is_correct(), "2·{x} failed");
        }
    }

    #[test]
    fn theorem92_construction_for_floor_half() {
        // f(x) = floor(x/2) is superadditive and genuinely periodic (p = 2).
        let f = |x: u64| x / 2;
        let s = analyze_1d(f, 2, 2, 8).unwrap();
        let crn = synthesize_1d_leaderless(&s, f).unwrap();
        assert!(crn.is_output_oblivious());
        for x in 0..9u64 {
            let v = check_stable_computation(&crn, &NVec::from(vec![x]), x / 2, 500_000).unwrap();
            assert!(v.is_correct(), "⌊{x}/2⌋ failed");
        }
    }

    #[test]
    fn theorem92_rejects_non_superadditive_min_one() {
        // min(1, x) is not superadditive, so the leaderless construction must
        // refuse (Observation 9.1 says no leaderless oblivious CRN exists).
        let f = examples::min_one();
        let s = analyze_semilinear_1d(&f, 4, 2).unwrap();
        let err =
            synthesize_1d_leaderless(&s, |x| f.eval(&NVec::from(vec![x])).unwrap()).unwrap_err();
        assert!(matches!(err, CoreError::InvalidSpec(_)));
    }

    #[test]
    fn theorem92_rejects_nonzero_at_origin() {
        let s = analyze_1d(|x| x + 1, 2, 1, 5).unwrap();
        assert!(synthesize_1d_leaderless(&s, |x| x + 1).is_err());
    }
}
