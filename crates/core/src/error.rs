//! Error type for the characterization and synthesis pipeline.

use std::fmt;

/// Errors raised while analysing or synthesizing obliviously-computable
/// functions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A quilt-affine function was required to be nonnegative (to admit the
    /// Lemma 6.1 construction) but takes a negative value.
    NegativeQuiltValue(String),
    /// A quilt-affine function was required to be nondecreasing but has a
    /// negative finite difference.
    NotNondecreasing(String),
    /// An evaluation produced a non-integer where an integer was required.
    NotInteger(String),
    /// The requested analysis could not complete within its search bounds.
    AnalysisInconclusive(String),
    /// A specification was structurally invalid (dimension mismatch, missing
    /// restriction, ...).
    InvalidSpec(String),
    /// An error bubbled up from CRN construction.
    Model(crn_model::CrnError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NegativeQuiltValue(msg) => {
                write!(f, "quilt-affine function takes a negative value: {msg}")
            }
            CoreError::NotNondecreasing(msg) => write!(f, "function is not nondecreasing: {msg}"),
            CoreError::NotInteger(msg) => write!(f, "value is not an integer: {msg}"),
            CoreError::AnalysisInconclusive(msg) => {
                write!(f, "analysis inconclusive within search bounds: {msg}")
            }
            CoreError::InvalidSpec(msg) => write!(f, "invalid specification: {msg}"),
            CoreError::Model(e) => write!(f, "CRN construction failed: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crn_model::CrnError> for CoreError {
    fn from(value: crn_model::CrnError) -> Self {
        CoreError::Model(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidSpec("missing restriction".into());
        assert!(e.to_string().contains("missing restriction"));
        let wrapped = CoreError::from(crn_model::CrnError::NotOutputOblivious);
        assert!(std::error::Error::source(&wrapped).is_some());
        assert!(wrapped.to_string().contains("CRN construction failed"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<E: std::error::Error + Send + Sync>() {}
        check::<CoreError>();
    }
}
