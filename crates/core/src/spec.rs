//! Declarative specifications of obliviously-computable functions: the shape
//! required by Theorem 5.2.

use std::collections::BTreeMap;

use crn_numeric::NVec;

use crate::error::CoreError;
use crate::quilt::QuiltAffine;

/// An *eventual-min* representation: for all `x ≥ n`,
/// `f(x) = min_k g_k(x)` for a finite set of quilt-affine functions
/// (condition (ii) of Theorem 5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct EventuallyMin {
    threshold: NVec,
    pieces: Vec<QuiltAffine>,
}

impl EventuallyMin {
    /// Creates an eventual-min representation valid for `x ≥ threshold`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] if there are no pieces or their
    /// dimensions disagree with the threshold's.
    pub fn new(threshold: NVec, pieces: Vec<QuiltAffine>) -> Result<Self, CoreError> {
        if pieces.is_empty() {
            return Err(CoreError::InvalidSpec(
                "eventual-min representation needs at least one quilt-affine piece".into(),
            ));
        }
        if pieces.iter().any(|g| g.dim() != threshold.dim()) {
            return Err(CoreError::InvalidSpec(
                "piece dimension differs from threshold dimension".into(),
            ));
        }
        Ok(EventuallyMin { threshold, pieces })
    }

    /// The threshold `n` above which the representation is valid.
    #[must_use]
    pub fn threshold(&self) -> &NVec {
        &self.threshold
    }

    /// The quilt-affine pieces `g_1, …, g_m`.
    #[must_use]
    pub fn pieces(&self) -> &[QuiltAffine] {
        &self.pieces
    }

    /// The input dimension `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.threshold.dim()
    }

    /// Evaluates `min_k g_k(x)` (meaningful for `x ≥ threshold`, but defined
    /// everywhere).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from the pieces.
    pub fn eval(&self, x: &NVec) -> Result<i64, CoreError> {
        let mut best: Option<i64> = None;
        for g in &self.pieces {
            let v = g.eval(x)?;
            best = Some(best.map_or(v, |b| b.min(v)));
        }
        Ok(best.expect("at least one piece"))
    }
}

/// A full recursive specification matching the three conditions of
/// Theorem 5.2: an eventual-min representation for `x ≥ n`, plus a
/// recursively specified fixed-input restriction for every `x(i) = j < n(i)`,
/// with a constant at dimension zero.
///
/// Such a spec is exactly the data the Lemma 6.2 construction compiles into an
/// output-oblivious CRN, and exactly what the Section 7 characterization
/// extracts from an obliviously-computable semilinear function.
#[derive(Debug, Clone, PartialEq)]
pub enum ObliviousSpec {
    /// Dimension 0: a constant value.
    Constant(u64),
    /// Dimension ≥ 1.
    Compound {
        /// The eventual-min representation valid for `x ≥ threshold`.
        eventual: EventuallyMin,
        /// For each input `i` and each `j < threshold(i)`, the spec of the
        /// restriction `f[x(i) → j]` (of dimension one less).
        restrictions: BTreeMap<(usize, u64), ObliviousSpec>,
    },
}

impl ObliviousSpec {
    /// Builds a compound spec, checking that every required restriction is
    /// present and has the right dimension.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] when a restriction for some
    /// `(i, j)` with `j < threshold(i)` is missing or has the wrong dimension.
    pub fn compound(
        eventual: EventuallyMin,
        restrictions: BTreeMap<(usize, u64), ObliviousSpec>,
    ) -> Result<Self, CoreError> {
        let dim = eventual.dim();
        for i in 0..dim {
            for j in 0..eventual.threshold()[i] {
                match restrictions.get(&(i, j)) {
                    None => {
                        return Err(CoreError::InvalidSpec(format!(
                            "missing restriction for input {i} fixed to {j}"
                        )))
                    }
                    Some(spec) if spec.dim() != dim - 1 => {
                        return Err(CoreError::InvalidSpec(format!(
                            "restriction for input {i} fixed to {j} has dimension {} (expected {})",
                            spec.dim(),
                            dim - 1
                        )))
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(ObliviousSpec::Compound {
            eventual,
            restrictions,
        })
    }

    /// The input dimension `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        match self {
            ObliviousSpec::Constant(_) => 0,
            ObliviousSpec::Compound { eventual, .. } => eventual.dim(),
        }
    }

    /// Evaluates the specified function at `x`.
    ///
    /// For `x ≥ n` this is the eventual min; otherwise some input `x(i) = j`
    /// with `j < n(i)` exists and the value is delegated to that restriction —
    /// exactly the decomposition used by equation (1) in the proof of
    /// Lemma 6.2.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotInteger`] if an eventual piece evaluates to a
    /// negative value at a point where it is the minimum (the spec then does
    /// not describe a function into `N`).
    pub fn eval(&self, x: &NVec) -> Result<u64, CoreError> {
        match self {
            ObliviousSpec::Constant(c) => Ok(*c),
            ObliviousSpec::Compound {
                eventual,
                restrictions,
            } => {
                let n = eventual.threshold();
                if x.ge(n) {
                    let v = eventual.eval(x)?;
                    u64::try_from(v)
                        .map_err(|_| CoreError::NotInteger(format!("f({x}) = {v} is negative")))
                } else {
                    let (i, j) = (0..x.dim())
                        .find_map(|i| (x[i] < n[i]).then_some((i, x[i])))
                        .expect("some coordinate is below the threshold");
                    restrictions
                        .get(&(i, j))
                        .ok_or_else(|| {
                            CoreError::InvalidSpec(format!(
                                "missing restriction for input {i} fixed to {j}"
                            ))
                        })?
                        .eval(&x.without_component(i))
                }
            }
        }
    }

    /// Checks that the specified function is nondecreasing on `[0, bound]^d`
    /// (condition (i) of Theorem 5.2), returning a violating pair if any.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn check_nondecreasing_on_box(
        &self,
        bound: u64,
    ) -> Result<Option<(NVec, NVec)>, CoreError> {
        let dim = self.dim();
        for x in NVec::enumerate_box(dim, bound) {
            let fx = self.eval(&x)?;
            for i in 0..dim {
                let mut y = x.clone();
                y[i] += 1;
                if y.iter().any(|&c| c > bound) {
                    continue;
                }
                if self.eval(&y)? < fx {
                    return Ok(Some((x, y)));
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_numeric::{QVec, Rational};

    fn min_of_two_lines() -> EventuallyMin {
        // min(x1 + 1, x2 + 1) for x >= (0,0).
        let g1 = QuiltAffine::affine(QVec::from(vec![1, 0]), Rational::ONE).unwrap();
        let g2 = QuiltAffine::affine(QVec::from(vec![0, 1]), Rational::ONE).unwrap();
        EventuallyMin::new(NVec::zeros(2), vec![g1, g2]).unwrap()
    }

    #[test]
    fn eventual_min_evaluates_min() {
        let em = min_of_two_lines();
        assert_eq!(em.eval(&NVec::from(vec![3, 5])).unwrap(), 4);
        assert_eq!(em.eval(&NVec::from(vec![5, 3])).unwrap(), 4);
        assert_eq!(em.dim(), 2);
        assert_eq!(em.pieces().len(), 2);
    }

    #[test]
    fn eventual_min_requires_pieces_and_consistent_dims() {
        assert!(EventuallyMin::new(NVec::zeros(1), vec![]).is_err());
        let g = QuiltAffine::constant(2, 1);
        assert!(EventuallyMin::new(NVec::zeros(1), vec![g]).is_err());
    }

    #[test]
    fn constant_spec() {
        let spec = ObliviousSpec::Constant(4);
        assert_eq!(spec.dim(), 0);
        assert_eq!(spec.eval(&NVec::zeros(0)).unwrap(), 4);
    }

    /// A spec for min(1, x): threshold n = 1, eventual piece the constant 1,
    /// restriction at x = 0 the constant 0 (the Figure 2 example).
    fn min_one_spec() -> ObliviousSpec {
        let eventual =
            EventuallyMin::new(NVec::from(vec![1]), vec![QuiltAffine::constant(1, 1)]).unwrap();
        let mut restrictions = BTreeMap::new();
        restrictions.insert((0usize, 0u64), ObliviousSpec::Constant(0));
        ObliviousSpec::compound(eventual, restrictions).unwrap()
    }

    #[test]
    fn min_one_spec_evaluates_correctly() {
        let spec = min_one_spec();
        for x in 0..6u64 {
            assert_eq!(spec.eval(&NVec::from(vec![x])).unwrap(), x.min(1));
        }
        assert!(spec.check_nondecreasing_on_box(6).unwrap().is_none());
    }

    #[test]
    fn missing_restriction_rejected() {
        let eventual =
            EventuallyMin::new(NVec::from(vec![2]), vec![QuiltAffine::constant(1, 1)]).unwrap();
        // Threshold 2 needs restrictions for j = 0 and j = 1; provide only j = 0.
        let mut restrictions = BTreeMap::new();
        restrictions.insert((0usize, 0u64), ObliviousSpec::Constant(0));
        assert!(matches!(
            ObliviousSpec::compound(eventual, restrictions),
            Err(CoreError::InvalidSpec(_))
        ));
    }

    #[test]
    fn wrong_restriction_dimension_rejected() {
        let eventual =
            EventuallyMin::new(NVec::from(vec![1, 1]), vec![QuiltAffine::constant(2, 1)]).unwrap();
        let mut restrictions = BTreeMap::new();
        // Restrictions of a 2-D function must be 1-D; a constant (0-D) is wrong.
        restrictions.insert((0usize, 0u64), ObliviousSpec::Constant(0));
        restrictions.insert((1usize, 0u64), ObliviousSpec::Constant(0));
        assert!(ObliviousSpec::compound(eventual, restrictions).is_err());
    }

    #[test]
    fn compound_spec_with_nontrivial_finite_region() {
        // f(x1, x2) = min(x1 + 1, x2 + 1) for x >= (1,1); f = 0 if any input is 0.
        let mut restrictions = BTreeMap::new();
        let zero_line = ObliviousSpec::compound(
            EventuallyMin::new(NVec::zeros(1), vec![QuiltAffine::constant(1, 0)]).unwrap(),
            BTreeMap::new(),
        )
        .unwrap();
        restrictions.insert((0usize, 0u64), zero_line.clone());
        restrictions.insert((1usize, 0u64), zero_line);
        let spec = ObliviousSpec::compound(
            EventuallyMin::new(NVec::from(vec![1, 1]), min_of_two_lines().pieces().to_vec())
                .unwrap(),
            restrictions,
        )
        .unwrap();
        assert_eq!(spec.eval(&NVec::from(vec![0, 7])).unwrap(), 0);
        assert_eq!(spec.eval(&NVec::from(vec![7, 0])).unwrap(), 0);
        assert_eq!(spec.eval(&NVec::from(vec![2, 4])).unwrap(), 3);
        // Not nondecreasing? It is: f jumps from 0 (at x1=0) to min+1 values,
        // which are >= 0.
        assert!(spec.check_nondecreasing_on_box(5).unwrap().is_none());
    }
}
