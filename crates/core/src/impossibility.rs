//! Lemma 4.1 impossibility witnesses and the negative characterization
//! (Theorem 5.4).

use crn_model::{max_output_reachable, FunctionCrn};
use crn_numeric::NVec;

use crate::error::CoreError;

/// A finite witness of the Lemma 4.1 obstruction: points `a_i ≤ a_j` (with
/// `a_j = a_i + k·step` for every `k ≤ repeats`, so the pattern extends to the
/// increasing sequence required by the lemma) and a shift `Δ` with
///
/// ```text
/// f(a_i + Δ) − f(a_i)  >  f(a_j + Δ) − f(a_j).
/// ```
///
/// By Theorem 5.4, a semilinear nondecreasing `f` admitting such a sequence is
/// **not** obliviously-computable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lemma41Witness {
    /// The base point `a_1` of the sequence.
    pub base: NVec,
    /// The step between consecutive sequence elements (`a_{k+1} = a_k + step`).
    pub step: NVec,
    /// The shift `Δ` whose marginal value decreases along the sequence.
    pub delta: NVec,
    /// How many consecutive sequence elements were verified.
    pub verified_elements: usize,
}

impl Lemma41Witness {
    /// The `k`-th element `a_k = base + k·step` of the witness sequence
    /// (0-indexed).
    #[must_use]
    pub fn element(&self, k: usize) -> NVec {
        let mut out = self.base.clone();
        for _ in 0..k {
            out = &out + &self.step;
        }
        out
    }
}

/// Searches for a Lemma 4.1 witness for `f` within the box `[0, bound]^d`.
///
/// The search looks for a base point `a`, a nonzero step `s` and a nonzero
/// unit shift `δ` such that, writing `a_k = a + k·s` and `Δ_{ij} = j·δ`
/// (exactly the pattern used for `max` in Figure 6, where `a_i = (i, 0)` and
/// `Δ_{ij} = (0, j)`), the Lemma 4.1 inequality
///
/// ```text
/// f(a_i + Δ_{ij}) − f(a_i) > f(a_j + Δ_{ij}) − f(a_j)
/// ```
///
/// holds for **every** pair `0 ≤ i < j ≤ repeats`.
///
/// Returns `None` if no witness exists within the bound (which does **not**
/// prove oblivious computability — that is what the positive characterization
/// in [`mod@crate::characterize`] is for).
#[must_use]
pub fn find_lemma41_witness(
    f: &dyn Fn(&NVec) -> u64,
    dim: usize,
    bound: u64,
    repeats: usize,
) -> Option<Lemma41Witness> {
    let scale = |v: &NVec, k: usize| -> NVec {
        let mut out = NVec::zeros(dim);
        for _ in 0..k {
            out = &out + v;
        }
        out
    };
    let bases = NVec::enumerate_box(dim, bound);
    let small = NVec::enumerate_box(dim, bound.min(3));
    for base in &bases {
        for step in &small {
            if step.is_zero() {
                continue;
            }
            'delta: for delta in &small {
                if delta.is_zero() {
                    continue;
                }
                for j in 1..=repeats {
                    let a_j = base + &scale(step, j);
                    let shift = scale(delta, j);
                    let rhs = i128::from(f(&(&a_j + &shift))) - i128::from(f(&a_j));
                    for i in 0..j {
                        let a_i = base + &scale(step, i);
                        let lhs = i128::from(f(&(&a_i + &shift))) - i128::from(f(&a_i));
                        if lhs <= rhs {
                            continue 'delta;
                        }
                    }
                }
                return Some(Lemma41Witness {
                    base: base.clone(),
                    step: step.clone(),
                    delta: delta.clone(),
                    verified_elements: repeats + 1,
                });
            }
        }
    }
    None
}

/// Replays the Figure 6 overproduction argument executably: strips the
/// output-consuming reactions from a non-output-oblivious CRN (as in
/// Lemma 2.3) and reports the maximum output reachable on `x`, which for the
/// `max` CRN exceeds `max(x1, x2)` — demonstrating *why* the consumption of
/// output is unavoidable.
///
/// # Errors
///
/// Propagates reachability errors.
pub fn overproduction_after_stripping(
    crn: &FunctionCrn,
    x: &NVec,
    max_configurations: usize,
) -> Result<u64, CoreError> {
    let output = crn.output();
    let mut stripped = crn_model::Crn::new();
    for (_, name) in crn.crn().species().iter_named() {
        stripped.add_species(name);
    }
    for reaction in crn.crn().reactions() {
        if reaction.consumes(output) {
            continue;
        }
        stripped.add_reaction(reaction.clone());
    }
    let roles = crn.roles().clone();
    let stripped_crn = FunctionCrn::new(stripped, roles)?;
    max_output_reachable(&stripped_crn, x, max_configurations).map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_model::examples;
    use crn_semilinear::examples as sl;

    #[test]
    fn max_has_a_lemma41_witness() {
        // Figure 6: a_i = (i, 0), Δ_ij = (0, j).
        let f = |x: &NVec| x[0].max(x[1]);
        let witness = find_lemma41_witness(&f, 2, 4, 6).expect("max must have a witness");
        // Verify the defining inequality on the first two elements.
        let a1 = witness.element(0);
        let a2 = witness.element(1);
        assert!(a1.le(&a2) && a1 != a2);
        let gain = |a: &NVec| f(&(a + &witness.delta)) as i128 - f(a) as i128;
        assert!(gain(&a1) > gain(&a2));
    }

    #[test]
    fn equation2_counterexample_has_a_witness() {
        let sem = sl::equation2_counterexample();
        let f = |x: &NVec| sem.eval(x).unwrap();
        assert!(find_lemma41_witness(&f, 2, 4, 6).is_some());
    }

    #[test]
    fn obliviously_computable_examples_have_no_witness() {
        for (name, sem) in [
            ("min2", sl::min2()),
            ("figure7", sl::figure7_example()),
            ("add2", sl::add2()),
        ] {
            let f = |x: &NVec| sem.eval(x).unwrap();
            assert!(
                find_lemma41_witness(&f, 2, 4, 6).is_none(),
                "{name} must not have a Lemma 4.1 witness"
            );
        }
    }

    #[test]
    fn one_dimensional_nondecreasing_functions_have_no_witness() {
        let sem = sl::floor_three_halves();
        let f = |x: &NVec| sem.eval(x).unwrap();
        assert!(find_lemma41_witness(&f, 1, 8, 6).is_none());
    }

    #[test]
    fn stripping_the_max_crn_overproduces() {
        // Removing K + Y -> ∅ from the Figure 1 max CRN lets the output reach
        // x1 + x2 and stay there: the CRN cannot be made output-oblivious.
        let max = examples::max_crn();
        let peak = overproduction_after_stripping(&max, &NVec::from(vec![2, 3]), 100_000).unwrap();
        assert_eq!(peak, 5);
        assert!(peak > 3);
    }

    #[test]
    fn stripping_an_oblivious_crn_changes_nothing() {
        let min = examples::min_crn();
        let peak = overproduction_after_stripping(&min, &NVec::from(vec![2, 3]), 100_000).unwrap();
        assert_eq!(peak, 2);
    }
}
