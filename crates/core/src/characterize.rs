//! The Section 7 characterization pipeline, made executable.
//!
//! Given a fixed semilinear presentation of `f : N^d → N`, the pipeline
//! follows the structure of the proof of Theorem 7.1:
//!
//! 1. check that `f` is nondecreasing (Observation 2.1);
//! 2. build the hyperplane arrangement and global period of the presentation
//!    (Lemma 7.3) and enumerate its eventual regions;
//! 3. fit the unique quilt-affine extension of each determined region
//!    (Lemmas 7.7/7.9) by exact affine fitting per congruence class;
//! 4. for each under-determined eventual region, construct the averaged strip
//!    extension of Lemma 7.16 (with an enlarged period) when it exists;
//! 5. verify that `f = min_k g_k` above a threshold and recurse into the
//!    fixed-input restrictions (condition (iii) of Theorem 5.2);
//! 6. if verification fails, search for a Lemma 4.1 witness (Theorem 5.4).
//!
//! The outcome is a [`Characterization`]: either a complete [`ObliviousSpec`]
//! that the Lemma 6.2 synthesizer can compile to a CRN, a proof of
//! impossibility, or (if the search bounds were too small) an inconclusive
//! report.

use std::collections::BTreeMap;

use crn_geometry::{Arrangement, Region};
use crn_numeric::{lcm_u64, NVec, QVec, Rational};
use crn_semilinear::SemilinearFunction;

use crate::error::CoreError;
use crate::impossibility::{find_lemma41_witness, Lemma41Witness};
use crate::one_dim::{analyze_semilinear_1d, Structure1D};
use crate::quilt::QuiltAffine;
use crate::spec::{EventuallyMin, ObliviousSpec};

/// The outcome of the characterization pipeline.
#[derive(Debug, Clone)]
pub enum Characterization {
    /// The function satisfies Theorem 5.2; the attached spec can be compiled
    /// to an output-oblivious CRN by [`crate::synthesis::synthesize`].
    ObliviouslyComputable {
        /// The recursive specification (eventual-min pieces + restrictions).
        spec: ObliviousSpec,
    },
    /// The function is provably not obliviously-computable.
    NotObliviouslyComputable {
        /// Human-readable reason (monotonicity violation or Lemma 4.1).
        reason: String,
        /// A Lemma 4.1 witness, when the obstruction is of that form.
        witness: Option<Lemma41Witness>,
    },
    /// The pipeline could not decide within its search bounds.
    Inconclusive {
        /// What failed or ran out of budget.
        reason: String,
    },
}

impl Characterization {
    /// Whether the verdict is "obliviously computable".
    #[must_use]
    pub fn is_computable(&self) -> bool {
        matches!(self, Characterization::ObliviouslyComputable { .. })
    }

    /// Whether the verdict is a proof of impossibility.
    #[must_use]
    pub fn is_impossible(&self) -> bool {
        matches!(self, Characterization::NotObliviouslyComputable { .. })
    }
}

/// Runs the characterization pipeline on a semilinear presentation, examining
/// the box `[0, bound]^d`.
///
/// # Errors
///
/// Returns errors only for malformed presentations (evaluation failures);
/// bounded-search shortfalls are reported as
/// [`Characterization::Inconclusive`].
pub fn characterize(f: &SemilinearFunction, bound: u64) -> Result<Characterization, CoreError> {
    // Condition (i): nondecreasing.
    if let Some((x, y)) = f.is_nondecreasing_on_box(bound) {
        return Ok(Characterization::NotObliviouslyComputable {
            reason: format!("not nondecreasing: f({x}) > f({y}) although {x} ≤ {y}"),
            witness: None,
        });
    }
    match f.dim() {
        0 => {
            let value = f.eval(&NVec::zeros(0)).map_err(|e| {
                CoreError::AnalysisInconclusive(format!("cannot evaluate constant: {e}"))
            })?;
            Ok(Characterization::ObliviouslyComputable {
                spec: ObliviousSpec::Constant(value),
            })
        }
        1 => characterize_1d(f, bound),
        _ => characterize_multi(f, bound),
    }
}

fn eval_or_zero(f: &SemilinearFunction, x: &NVec) -> u64 {
    f.eval(x).unwrap_or(0)
}

/// 1-D case (Theorem 3.1): semilinear + nondecreasing is sufficient; extract
/// the eventual structure and package it as a spec.
fn characterize_1d(f: &SemilinearFunction, bound: u64) -> Result<Characterization, CoreError> {
    let structure = match analyze_semilinear_1d(f, bound, bound.max(1)) {
        Ok(s) => s,
        Err(CoreError::NotNondecreasing(msg)) => {
            return Ok(Characterization::NotObliviouslyComputable {
                reason: msg,
                witness: None,
            })
        }
        Err(e) => {
            return Ok(Characterization::Inconclusive {
                reason: format!("1-D structure extraction failed: {e}"),
            })
        }
    };
    Ok(Characterization::ObliviouslyComputable {
        spec: structure_to_spec(&structure),
    })
}

/// Converts the Theorem 3.1 structure into a one-dimensional spec: a single
/// quilt-affine eventual piece plus constant restrictions below the threshold.
#[must_use]
pub fn structure_to_spec(structure: &Structure1D) -> ObliviousSpec {
    let n = structure.threshold();
    let p = structure.period;
    let slope_sum: u64 = structure.deltas.iter().sum();
    let gradient = QVec::from(vec![Rational::new(slope_sum as i128, p as i128)]);
    let mut offsets = BTreeMap::new();
    for a in 0..p {
        // A representative of class `a` at or above the threshold.
        let rep = if n == 0 {
            a
        } else {
            let offset = (a + p - (n % p)) % p;
            n + offset
        };
        offsets.insert(
            vec![a],
            Rational::from(structure.eval(rep) as i64) - gradient.dot_n(&NVec::from(vec![rep])),
        );
    }
    let piece = QuiltAffine::new(gradient, p, offsets).expect("eventual structure is quilt-affine");
    let eventual =
        EventuallyMin::new(NVec::from(vec![n]), vec![piece]).expect("one piece, same dimension");
    let mut restrictions = BTreeMap::new();
    for j in 0..n {
        restrictions.insert(
            (0usize, j),
            ObliviousSpec::Constant(structure.initial_values[j as usize]),
        );
    }
    ObliviousSpec::compound(eventual, restrictions).expect("restrictions cover the threshold")
}

/// Multi-dimensional case: the Section 7 pipeline proper.
fn characterize_multi(f: &SemilinearFunction, bound: u64) -> Result<Characterization, CoreError> {
    let dim = f.dim();
    let arrangement = Arrangement::from_function(f);
    let period = arrangement.period();
    let regions = arrangement.regions_in_box(bound);
    let eventual_regions: Vec<&Region> = regions.iter().filter(|r| r.is_eventual()).collect();

    // Step 1: unique extensions from determined eventual regions.
    let mut pieces: Vec<QuiltAffine> = Vec::new();
    let mut determined_info: Vec<(usize, QuiltAffine)> = Vec::new();
    for (idx, region) in eventual_regions.iter().enumerate() {
        if !region.is_determined() {
            continue;
        }
        match fit_region_extension(f, region, period, bound) {
            Ok(extension) => {
                determined_info.push((idx, extension.clone()));
                if !pieces.contains(&extension) {
                    pieces.push(extension);
                }
            }
            Err(e) => {
                return Ok(Characterization::Inconclusive {
                    reason: format!("could not fit a determined-region extension: {e}"),
                });
            }
        }
    }
    if pieces.is_empty() {
        return Ok(Characterization::Inconclusive {
            reason: "no determined eventual region found within the search box".into(),
        });
    }

    // Step 2: strip extensions for under-determined eventual regions.
    for region in eventual_regions.iter().filter(|r| !r.is_determined()) {
        let neighbors: Vec<&QuiltAffine> = determined_info
            .iter()
            .filter(|(idx, _)| eventual_regions[*idx].is_neighbor_of(region))
            .map(|(_, ext)| ext)
            .collect();
        if neighbors.is_empty() {
            continue;
        }
        match fit_strip_extension(f, region, &neighbors, period, bound) {
            Ok(Some(extension)) => {
                if !pieces.contains(&extension) {
                    pieces.push(extension);
                }
            }
            Ok(None) => {}
            Err(_) => {
                // A failed strip fit is not itself a proof of impossibility;
                // the verification step below will sort it out.
            }
        }
    }

    // Step 3: find a threshold above which f = min of the pieces.
    let threshold = find_valid_threshold(f, &pieces, bound);
    let Some(t) = threshold else {
        // Verification failed: look for a Lemma 4.1 obstruction.
        let oracle = |x: &NVec| eval_or_zero(f, x);
        if let Some(witness) = find_lemma41_witness(&oracle, dim, bound.min(6), 6) {
            return Ok(Characterization::NotObliviouslyComputable {
                reason:
                    "f is not eventually a min of quilt-affine functions (Lemma 4.1 witness found)"
                        .into(),
                witness: Some(witness),
            });
        }
        return Ok(Characterization::Inconclusive {
            reason: "no threshold found for the eventual-min representation, and no Lemma 4.1 witness within the search box"
                .into(),
        });
    };

    // Step 4: recurse into the fixed-input restrictions (condition (iii)).
    let mut restrictions = BTreeMap::new();
    for i in 0..dim {
        for j in 0..t {
            let restricted = f.restrict(i, j);
            match characterize(&restricted, bound)? {
                Characterization::ObliviouslyComputable { spec } => {
                    restrictions.insert((i, j), spec);
                }
                Characterization::NotObliviouslyComputable { reason, witness } => {
                    return Ok(Characterization::NotObliviouslyComputable {
                        reason: format!(
                            "restriction x({i}) = {j} is not obliviously computable: {reason}"
                        ),
                        witness,
                    });
                }
                Characterization::Inconclusive { reason } => {
                    return Ok(Characterization::Inconclusive {
                        reason: format!("restriction x({i}) = {j} inconclusive: {reason}"),
                    });
                }
            }
        }
    }

    let eventual = EventuallyMin::new(NVec::constant(dim, t), pieces)?;
    let spec = ObliviousSpec::compound(eventual, restrictions)?;
    // Final sanity check: the spec reproduces f on the whole box.
    for x in NVec::enumerate_box(dim, bound) {
        if spec.eval(&x)? != eval_or_zero(f, &x) {
            return Ok(Characterization::Inconclusive {
                reason: format!("assembled spec disagrees with f at {x}"),
            });
        }
    }
    Ok(Characterization::ObliviouslyComputable { spec })
}

/// Fits the unique quilt-affine extension of `f` from a determined region
/// (Lemma 7.7): one exact affine fit per congruence class, all sharing a
/// gradient.
fn fit_region_extension(
    f: &SemilinearFunction,
    region: &Region,
    period: u64,
    bound: u64,
) -> Result<QuiltAffine, CoreError> {
    let dim = region.dim();
    let members = region.members_in_box(bound);
    let mut gradient: Option<QVec> = None;
    let mut offsets: BTreeMap<Vec<u64>, Rational> = BTreeMap::new();
    for class in crn_numeric::CongruenceClass::enumerate_all(dim, period) {
        let points: Vec<NVec> = members
            .iter()
            .filter(|x| class.contains(x))
            .cloned()
            .collect();
        if points.is_empty() {
            continue;
        }
        let values: Vec<i64> = points.iter().map(|x| eval_or_zero(f, x) as i64).collect();
        let Some((grad, offset, unique)) = crn_geometry::matrix::fit_affine(&points, &values)
        else {
            return Err(CoreError::AnalysisInconclusive(format!(
                "values on region ∩ {class} are not affine"
            )));
        };
        if !unique && points.len() < dim + 1 {
            return Err(CoreError::AnalysisInconclusive(format!(
                "not enough points in region ∩ {class} to pin down the extension"
            )));
        }
        match &gradient {
            None => gradient = Some(grad.clone()),
            Some(g) if *g != grad => {
                return Err(CoreError::AnalysisInconclusive(
                    "per-class gradients disagree on a determined region".into(),
                ))
            }
            Some(_) => {}
        }
        offsets.insert(class.representative().as_slice().to_vec(), offset);
    }
    let gradient = gradient.ok_or_else(|| {
        CoreError::AnalysisInconclusive("region has no points in the search box".into())
    })?;
    // Classes with no region points: extend with the nondecreasing-maximal
    // rule relative to the classes we did fit (rarely needed for determined
    // regions, which meet every class once the box is large enough).
    for class in crn_numeric::CongruenceClass::enumerate_all(dim, period) {
        let key = class.representative().as_slice().to_vec();
        offsets.entry(key).or_insert(Rational::ZERO);
    }
    QuiltAffine::new(gradient, period, offsets)
}

/// Builds the averaged strip extension of Lemma 7.16 for an under-determined
/// eventual region, or `None` when the determined extensions already cover it.
fn fit_strip_extension(
    f: &SemilinearFunction,
    region: &Region,
    neighbors: &[&QuiltAffine],
    period: u64,
    bound: u64,
) -> Result<Option<QuiltAffine>, CoreError> {
    let dim = region.dim();
    let members = region.members_in_box(bound);
    if members.is_empty() {
        return Ok(None);
    }
    // If the neighbor extensions already agree with f on the region, no extra
    // piece is needed.
    let covered = members.iter().all(|x| {
        let min_neighbor = neighbors
            .iter()
            .filter_map(|g| g.eval(x).ok())
            .min()
            .unwrap_or(i64::MAX);
        min_neighbor == eval_or_zero(f, x) as i64
    });
    if covered {
        return Ok(None);
    }
    // Average gradient of the neighbors (Lemma 7.16), with the period enlarged
    // so that the average is integral per class.
    let gradients: Vec<QVec> = neighbors.iter().map(|g| g.gradient().clone()).collect();
    let avg = QVec::average(&gradients);
    let denom = avg.denominator_lcm().unsigned_abs() as u64;
    let p_star = lcm_u64(period.max(1), denom.max(1));
    // Offsets: exact on classes that meet the region (the extension agrees
    // with f there), maximal-nondecreasing on the rest.
    let mut offsets: BTreeMap<Vec<u64>, Rational> = BTreeMap::new();
    let mut strip_classes: Vec<crn_numeric::CongruenceClass> = Vec::new();
    for class in crn_numeric::CongruenceClass::enumerate_all(dim, p_star) {
        let points: Vec<&NVec> = members.iter().filter(|x| class.contains(x)).collect();
        if points.is_empty() {
            continue;
        }
        let candidates: Vec<Rational> = points
            .iter()
            .map(|x| Rational::from(eval_or_zero(f, x) as i64) - avg.dot_n(x))
            .collect();
        if candidates.windows(2).any(|w| w[0] != w[1]) {
            return Err(CoreError::AnalysisInconclusive(
                "strip values are not quilt-affine with the averaged gradient".into(),
            ));
        }
        offsets.insert(class.representative().as_slice().to_vec(), candidates[0]);
        strip_classes.push(class);
    }
    // Remaining classes: B(a) = min over strip-class points y ≥ rep(a) of
    // g(y) − ∇avg·rep(a)  (the "as large as possible while nondecreasing"
    // rule from the proof of Lemma 7.16, evaluated on the representative).
    for class in crn_numeric::CongruenceClass::enumerate_all(dim, p_star) {
        let key = class.representative().as_slice().to_vec();
        if offsets.contains_key(&key) {
            continue;
        }
        let rep = class.representative();
        let mut best: Option<Rational> = None;
        for strip_class in &strip_classes {
            for y in NVec::enumerate_box(dim, bound) {
                if !strip_class.contains(&y) || !y.ge(&rep) {
                    continue;
                }
                let g_y =
                    avg.dot_n(&y) + offsets[&strip_class.representative().as_slice().to_vec()];
                let candidate = g_y - avg.dot_n(&rep);
                best = Some(best.map_or(candidate, |b: Rational| b.min(candidate)));
            }
        }
        let Some(value) = best else {
            return Err(CoreError::AnalysisInconclusive(
                "could not complete the strip extension's offsets".into(),
            ));
        };
        offsets.insert(key, value);
    }
    QuiltAffine::new(avg, p_star, offsets).map(Some)
}

/// Finds the smallest `t ≤ bound/2` such that `f(x) = min_k g_k(x)` for every
/// box point `x ≥ (t, …, t)`.
fn find_valid_threshold(f: &SemilinearFunction, pieces: &[QuiltAffine], bound: u64) -> Option<u64> {
    let dim = f.dim();
    'outer: for t in 0..=bound / 2 {
        let corner = NVec::constant(dim, t);
        for x in NVec::enumerate_box(dim, bound) {
            if !x.ge(&corner) {
                continue;
            }
            let min_piece = pieces.iter().filter_map(|g| g.eval(&x).ok()).min()?;
            if min_piece != eval_or_zero(f, &x) as i64 {
                continue 'outer;
            }
        }
        return Some(t);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_semilinear::examples as sl;

    #[test]
    fn min2_is_obliviously_computable() {
        let verdict = characterize(&sl::min2(), 8).unwrap();
        let Characterization::ObliviouslyComputable { spec } = verdict else {
            panic!("min must be obliviously computable: {verdict:?}");
        };
        for x1 in 0..8u64 {
            for x2 in 0..8u64 {
                assert_eq!(spec.eval(&NVec::from(vec![x1, x2])).unwrap(), x1.min(x2));
            }
        }
    }

    #[test]
    fn figure7_example_is_obliviously_computable_with_three_pieces() {
        let f = sl::figure7_example();
        let verdict = characterize(&f, 8).unwrap();
        let Characterization::ObliviouslyComputable { spec } = verdict else {
            panic!("Figure 7 example must be obliviously computable: {verdict:?}");
        };
        let ObliviousSpec::Compound { eventual, .. } = &spec else {
            panic!("expected a compound spec");
        };
        // Two determined extensions (x1+1, x2+1) plus the strip extension
        // ⌈(x1+x2)/2⌉ from the diagonal.
        assert_eq!(eventual.pieces().len(), 3);
        for x1 in 0..8u64 {
            for x2 in 0..8u64 {
                assert_eq!(
                    spec.eval(&NVec::from(vec![x1, x2])).unwrap(),
                    f.eval(&NVec::from(vec![x1, x2])).unwrap()
                );
            }
        }
    }

    #[test]
    fn max_is_not_obliviously_computable() {
        let verdict = characterize(&sl::max2(), 8).unwrap();
        assert!(verdict.is_impossible(), "{verdict:?}");
        let Characterization::NotObliviouslyComputable { witness, .. } = verdict else {
            unreachable!()
        };
        assert!(witness.is_some());
    }

    #[test]
    fn equation2_counterexample_is_not_obliviously_computable() {
        let verdict = characterize(&sl::equation2_counterexample(), 8).unwrap();
        assert!(verdict.is_impossible(), "{verdict:?}");
    }

    #[test]
    fn decreasing_function_rejected_by_monotonicity() {
        let verdict = characterize(&sl::truncated_subtraction_from(3), 8).unwrap();
        let Characterization::NotObliviouslyComputable { reason, witness } = verdict else {
            panic!("decreasing function must be rejected");
        };
        assert!(reason.contains("nondecreasing"));
        assert!(witness.is_none());
    }

    #[test]
    fn one_dimensional_examples() {
        for (name, f, oracle) in [
            (
                "floor_three_halves",
                sl::floor_three_halves(),
                Box::new(|x: u64| 3 * x / 2) as Box<dyn Fn(u64) -> u64>,
            ),
            ("min_one", sl::min_one(), Box::new(|x: u64| x.min(1))),
            (
                "staircase",
                sl::staircase_1d(),
                Box::new(|x: u64| if x < 3 { 0 } else { 2 * x + x % 2 }),
            ),
        ] {
            let verdict = characterize(&f, 10).unwrap();
            let Characterization::ObliviouslyComputable { spec } = verdict else {
                panic!("{name} must be obliviously computable");
            };
            for x in 0..12u64 {
                assert_eq!(
                    spec.eval(&NVec::from(vec![x])).unwrap(),
                    oracle(x),
                    "{name}({x})"
                );
            }
        }
    }

    #[test]
    fn add2_is_obliviously_computable() {
        let verdict = characterize(&sl::add2(), 6).unwrap();
        assert!(verdict.is_computable(), "{verdict:?}");
    }

    #[test]
    fn structure_to_spec_round_trips() {
        let s = Structure1D {
            initial_values: vec![0, 0, 1],
            period: 2,
            deltas: vec![2, 1],
        };
        let spec = structure_to_spec(&s);
        for x in 0..12u64 {
            assert_eq!(spec.eval(&NVec::from(vec![x])).unwrap(), s.eval(x));
        }
    }
}
