//! The ∞-scaling of Theorem 8.2: the correspondence with continuous
//! rate-independent CRNs (Chalk, Kornerup, Reeves, Soloveichik).

use crn_continuous::MinOfLinear;
use crn_numeric::{NVec, QVec, Rational};

use crate::spec::EventuallyMin;

/// The ∞-scaling `f̂(z) = lim_{c→∞} f(⌊cz⌋)/c` of a function with an
/// eventual-min representation (Definition 8.1 / Theorem 8.2).
///
/// For `f(x) = min_k g_k(x)` eventually, the scaling limit is the minimum of
/// the *linear parts* of the pieces: `f̂(z) = min_k ∇g_k · z` (the bounded
/// periodic offsets vanish in the limit), which is exactly the function class
/// obliviously-computable by continuous CRNs.
#[derive(Debug, Clone, PartialEq)]
pub struct InfinityScaling {
    gradients: Vec<QVec>,
}

impl InfinityScaling {
    /// Computes the scaling limit of an eventual-min representation.
    #[must_use]
    pub fn of(eventual: &EventuallyMin) -> Self {
        InfinityScaling {
            gradients: eventual
                .pieces()
                .iter()
                .map(|g| g.gradient().clone())
                .collect(),
        }
    }

    /// The gradients `∇g_k` of the pieces.
    #[must_use]
    pub fn gradients(&self) -> &[QVec] {
        &self.gradients
    }

    /// Evaluates `f̂(z) = min_k ∇g_k · z` at a rational point.
    ///
    /// # Panics
    ///
    /// Panics if there are no pieces (an [`EventuallyMin`] always has one).
    #[must_use]
    pub fn eval(&self, z: &QVec) -> Rational {
        self.gradients
            .iter()
            .map(|g| g.dot(z))
            .min()
            .expect("at least one piece")
    }

    /// Converts into the continuous-CRN function class of Chalk et al.: a
    /// min-of-rational-linear function on the positive orthant.
    #[must_use]
    pub fn to_min_of_linear(&self) -> MinOfLinear {
        MinOfLinear::new(self.gradients.clone())
    }

    /// Empirically measures the convergence `|f(⌊cz⌋)/c − f̂(z)|` for a
    /// discrete function oracle at scaling factor `c` (the data series of
    /// experiment E11).
    #[must_use]
    pub fn scaling_error(&self, f: &dyn Fn(&NVec) -> u64, z: &QVec, c: u64) -> f64 {
        let scaled: NVec = z
            .iter()
            .map(|&zi| (zi * Rational::from(c)).floor().max(0) as u64)
            .collect();
        let discrete = f(&scaled) as f64 / c as f64;
        (discrete - self.eval(z).to_f64()).abs()
    }
}

/// Verifies Theorem 8.2 numerically: the scaling error at factors
/// `c, 2c, 4c, …` is (weakly) decreasing towards zero for strictly positive
/// `z`.  Returns the error series.
#[must_use]
pub fn scaling_error_series(
    scaling: &InfinityScaling,
    f: &dyn Fn(&NVec) -> u64,
    z: &QVec,
    factors: &[u64],
) -> Vec<(u64, f64)> {
    factors
        .iter()
        .map(|&c| (c, scaling.scaling_error(f, z, c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quilt::QuiltAffine;

    fn min_eventual() -> EventuallyMin {
        let g1 = QuiltAffine::affine(QVec::from(vec![1, 0]), Rational::ONE).unwrap();
        let g2 = QuiltAffine::affine(QVec::from(vec![0, 1]), Rational::from(3)).unwrap();
        EventuallyMin::new(NVec::zeros(2), vec![g1, g2]).unwrap()
    }

    #[test]
    fn scaling_drops_constant_offsets() {
        // min(x1 + 1, x2 + 3) scales to min(z1, z2).
        let scaling = InfinityScaling::of(&min_eventual());
        assert_eq!(scaling.gradients().len(), 2);
        let z = QVec::from(vec![Rational::from(2), Rational::from(5)]);
        assert_eq!(scaling.eval(&z), Rational::from(2));
        let z = QVec::from(vec![Rational::from(7), Rational::from(5)]);
        assert_eq!(scaling.eval(&z), Rational::from(5));
    }

    #[test]
    fn scaling_of_quilt_affine_is_its_linear_part() {
        // floor(3x/2) scales to (3/2) z.
        let g = QuiltAffine::floor_linear(QVec::from(vec![Rational::new(3, 2)]), 2);
        let eventual = EventuallyMin::new(NVec::zeros(1), vec![g]).unwrap();
        let scaling = InfinityScaling::of(&eventual);
        assert_eq!(
            scaling.eval(&QVec::from(vec![Rational::from(4)])),
            Rational::from(6)
        );
    }

    #[test]
    fn scaling_error_decreases_with_c() {
        let g = QuiltAffine::floor_linear(QVec::from(vec![Rational::new(3, 2)]), 2);
        let eventual = EventuallyMin::new(NVec::zeros(1), vec![g]).unwrap();
        let scaling = InfinityScaling::of(&eventual);
        let f = |x: &NVec| 3 * x[0] / 2;
        let z = QVec::from(vec![Rational::new(7, 3)]);
        let series = scaling_error_series(&scaling, &f, &z, &[1, 4, 16, 64, 256]);
        assert!(series.last().unwrap().1 < series.first().unwrap().1 + 1e-9);
        assert!(series.last().unwrap().1 < 0.02);
    }

    #[test]
    fn conversion_to_continuous_class() {
        let scaling = InfinityScaling::of(&min_eventual());
        let continuous = scaling.to_min_of_linear();
        let z = QVec::from(vec![Rational::from(3), Rational::from(4)]);
        assert_eq!(continuous.eval(&z), Rational::from(3));
        assert!(continuous.is_superadditive_on_grid(4));
    }
}
