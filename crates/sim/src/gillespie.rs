//! Exact Gillespie stochastic simulation (SSA).
//!
//! The CRN model is a continuous-time Markov chain: in configuration `C`, each
//! reaction fires at a rate equal to its mass-action propensity, and the time
//! to the next firing is exponentially distributed with the total propensity
//! as its rate (Gillespie 1977, reference [20] of the paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crn_model::{Configuration, Crn};

use crate::scheduler::propensity;

/// The outcome of one Gillespie run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GillespieOutcome {
    /// The final configuration when the run stopped.
    pub final_configuration: Configuration,
    /// Number of reactions fired.
    pub steps: u64,
    /// Simulated (physical) time elapsed.
    pub time: f64,
    /// Whether the run stopped because no reaction was applicable.
    pub silent: bool,
}

/// An exact stochastic simulator for a CRN.
///
/// ```
/// use crn_model::examples;
/// use crn_numeric::NVec;
/// use crn_sim::Gillespie;
///
/// let double = examples::double_crn();
/// let start = double.initial_configuration(&NVec::from(vec![10])).unwrap();
/// let mut sim = Gillespie::new(double.crn().clone(), 42);
/// let outcome = sim.run(&start, 1_000_000);
/// assert!(outcome.silent);
/// assert_eq!(outcome.final_configuration.count(double.output()), 20);
/// ```
#[derive(Debug, Clone)]
pub struct Gillespie {
    crn: Crn,
    rng: StdRng,
}

impl Gillespie {
    /// Creates a simulator for `crn` with a deterministic RNG seed.
    #[must_use]
    pub fn new(crn: Crn, seed: u64) -> Self {
        Gillespie {
            crn,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The simulated CRN.
    #[must_use]
    pub fn crn(&self) -> &Crn {
        &self.crn
    }

    /// Runs from `start` until the CRN is silent or `max_steps` reactions have
    /// fired.
    #[must_use]
    pub fn run(&mut self, start: &Configuration, max_steps: u64) -> GillespieOutcome {
        let mut config = start.clone();
        let mut time = 0.0f64;
        let mut steps = 0u64;
        while steps < max_steps {
            let propensities: Vec<f64> = (0..self.crn.reactions().len())
                .map(|i| propensity(&self.crn, &config, i))
                .collect();
            let total: f64 = propensities.iter().sum();
            if total <= 0.0 {
                return GillespieOutcome {
                    final_configuration: config,
                    steps,
                    time,
                    silent: true,
                };
            }
            // Exponential waiting time with rate `total`.
            let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            time += -u.ln() / total;
            // Choose the reaction proportionally to its propensity.
            let mut target = self.rng.gen::<f64>() * total;
            let mut chosen = propensities.len() - 1;
            for (i, a) in propensities.iter().enumerate() {
                if target < *a {
                    chosen = i;
                    break;
                }
                target -= a;
            }
            config = config.apply(&self.crn.reactions()[chosen]);
            steps += 1;
        }
        GillespieOutcome {
            final_configuration: config,
            steps,
            time,
            silent: false,
        }
    }

    /// Runs from `start`, recording `(time, count-of-species)` after every
    /// firing — the trajectory data behind the convergence-time figures.
    #[must_use]
    pub fn run_recording(
        &mut self,
        start: &Configuration,
        tracked: crn_model::Species,
        max_steps: u64,
    ) -> (GillespieOutcome, Vec<(f64, u64)>) {
        let mut config = start.clone();
        let mut time = 0.0f64;
        let mut steps = 0u64;
        let mut trajectory = vec![(0.0, config.count(tracked))];
        loop {
            if steps >= max_steps {
                return (
                    GillespieOutcome {
                        final_configuration: config,
                        steps,
                        time,
                        silent: false,
                    },
                    trajectory,
                );
            }
            let propensities: Vec<f64> = (0..self.crn.reactions().len())
                .map(|i| propensity(&self.crn, &config, i))
                .collect();
            let total: f64 = propensities.iter().sum();
            if total <= 0.0 {
                return (
                    GillespieOutcome {
                        final_configuration: config,
                        steps,
                        time,
                        silent: true,
                    },
                    trajectory,
                );
            }
            let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            time += -u.ln() / total;
            let mut target = self.rng.gen::<f64>() * total;
            let mut chosen = propensities.len() - 1;
            for (i, a) in propensities.iter().enumerate() {
                if target < *a {
                    chosen = i;
                    break;
                }
                target -= a;
            }
            config = config.apply(&self.crn.reactions()[chosen]);
            steps += 1;
            trajectory.push((time, config.count(tracked)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_model::examples;
    use crn_numeric::NVec;

    #[test]
    fn double_crn_terminates_with_exact_output() {
        let double = examples::double_crn();
        let start = double.initial_configuration(&NVec::from(vec![25])).unwrap();
        let mut sim = Gillespie::new(double.crn().clone(), 1);
        let out = sim.run(&start, 1_000_000);
        assert!(out.silent);
        assert_eq!(out.steps, 25);
        assert_eq!(out.final_configuration.count(double.output()), 50);
        assert!(out.time > 0.0);
    }

    #[test]
    fn min_crn_computes_min_under_ssa() {
        let min = examples::min_crn();
        let start = min
            .initial_configuration(&NVec::from(vec![17, 40]))
            .unwrap();
        let mut sim = Gillespie::new(min.crn().clone(), 2);
        let out = sim.run(&start, 1_000_000);
        assert!(out.silent);
        assert_eq!(out.final_configuration.count(min.output()), 17);
    }

    #[test]
    fn max_crn_converges_to_max_with_fair_ssa() {
        let max = examples::max_crn();
        for seed in 0..5 {
            let start = max.initial_configuration(&NVec::from(vec![8, 13])).unwrap();
            let mut sim = Gillespie::new(max.crn().clone(), seed);
            let out = sim.run(&start, 1_000_000);
            assert!(out.silent);
            assert_eq!(out.final_configuration.count(max.output()), 13);
        }
    }

    #[test]
    fn step_limit_is_honoured() {
        let double = examples::double_crn();
        let start = double
            .initial_configuration(&NVec::from(vec![100]))
            .unwrap();
        let mut sim = Gillespie::new(double.crn().clone(), 3);
        let out = sim.run(&start, 10);
        assert!(!out.silent);
        assert_eq!(out.steps, 10);
    }

    #[test]
    fn recording_tracks_output_monotonically_for_oblivious_crn() {
        let double = examples::double_crn();
        let start = double.initial_configuration(&NVec::from(vec![12])).unwrap();
        let mut sim = Gillespie::new(double.crn().clone(), 4);
        let (out, trajectory) = sim.run_recording(&start, double.output(), 1_000_000);
        assert!(out.silent);
        assert!(trajectory.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(trajectory.last().unwrap().1, 24);
        assert!(trajectory.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn identical_seeds_reproduce_runs() {
        let max = examples::max_crn();
        let start = max.initial_configuration(&NVec::from(vec![5, 9])).unwrap();
        let run = |seed| Gillespie::new(max.crn().clone(), seed).run(&start, 1_000_000);
        let a = run(11);
        let b = run(11);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.final_configuration, b.final_configuration);
    }
}
