//! Exact Gillespie stochastic simulation (SSA).
//!
//! The CRN model is a continuous-time Markov chain: in configuration `C`, each
//! reaction fires at a rate equal to its mass-action propensity, and the time
//! to the next firing is exponentially distributed with the total propensity
//! as its rate (Gillespie 1977, reference \[20\] of the paper).
//!
//! [`Gillespie`] runs on the dense kernel: the CRN is compiled once
//! ([`CompiledCrn`]), the configuration is a flat count vector fired in
//! place, and the per-reaction propensity table is refreshed **incrementally**
//! through the compiled dependency graph — after a firing only the reactions
//! sharing a species with the fired one are recomputed.  [`SparseGillespie`]
//! is the seed implementation on sparse `BTreeMap` configurations, kept as
//! the differential oracle: for the same seed the two produce bit-identical
//! trajectories (the dense propensities, their summation order and the RNG
//! draws all match), which the property tests in `tests/dense_kernel.rs`
//! check seed-for-seed on random CRNs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crn_model::{CompiledCrn, Configuration, Crn, DenseState};

use crate::kernel::PropensityTable;
use crate::scheduler::propensity;

/// The outcome of one Gillespie run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GillespieOutcome {
    /// The final configuration when the run stopped.
    pub final_configuration: Configuration,
    /// Number of reactions fired.
    pub steps: u64,
    /// Simulated (physical) time elapsed.
    pub time: f64,
    /// Whether the run stopped because no reaction was applicable.
    pub silent: bool,
}

/// Selects the reaction whose propensity interval contains `target`, given a
/// roulette target drawn uniformly from `[0, total)`.
///
/// Floating-point rounding in the cumulative subtraction can exhaust `target`
/// past every interval; the fallback must then be the **last reaction with
/// positive propensity** — never a zero-propensity (inapplicable) reaction,
/// whose firing would corrupt the state (or panic, on the sparse oracle).
fn select_reaction(propensities: &[f64], mut target: f64) -> usize {
    let mut last_positive = None;
    for (i, &a) in propensities.iter().enumerate() {
        if a > 0.0 {
            if target < a {
                return i;
            }
            last_positive = Some(i);
        }
        target -= a;
    }
    last_positive.expect("total propensity is positive, so some reaction is applicable")
}

/// An exact stochastic simulator for a CRN, on the dense compiled kernel.
///
/// ```
/// use crn_model::examples;
/// use crn_numeric::NVec;
/// use crn_sim::Gillespie;
///
/// let double = examples::double_crn();
/// let start = double.initial_configuration(&NVec::from(vec![10])).unwrap();
/// let mut sim = Gillespie::new(double.crn().clone(), 42);
/// let outcome = sim.run(&start, 1_000_000);
/// assert!(outcome.silent);
/// assert_eq!(outcome.final_configuration.count(double.output()), 20);
/// ```
#[derive(Debug, Clone)]
pub struct Gillespie {
    crn: Crn,
    compiled: CompiledCrn,
    rng: StdRng,
    /// Incrementally-maintained per-reaction propensities.
    propensities: PropensityTable,
    /// Dense configuration scratch, reused across runs.
    state: DenseState,
}

impl Gillespie {
    /// Creates a simulator for `crn` with a deterministic RNG seed, compiling
    /// the CRN once.
    #[must_use]
    pub fn new(crn: Crn, seed: u64) -> Self {
        let compiled = CompiledCrn::compile(&crn);
        let state = DenseState::zero(compiled.stride());
        Gillespie {
            crn,
            compiled,
            rng: StdRng::seed_from_u64(seed),
            propensities: PropensityTable::new(),
            state,
        }
    }

    /// The simulated CRN.
    #[must_use]
    pub fn crn(&self) -> &Crn {
        &self.crn
    }

    /// The compiled form of the CRN.
    #[must_use]
    pub fn compiled(&self) -> &CompiledCrn {
        &self.compiled
    }

    /// Restarts the RNG stream from `seed`, keeping the compiled CRN and all
    /// scratch allocations.  The ensemble runner uses this to reuse one
    /// simulator across a whole batch of trials instead of rebuilding (and
    /// recompiling) a simulator per trial.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Loads `start` into the dense scratch state, regrowing it if the
    /// configuration mentions species past the current stride (the public API
    /// allows start configurations over foreign species; their counts are
    /// inert but must be carried into the final configuration).
    fn load_start(&mut self, start: &Configuration) {
        if start.iter().all(|(s, _)| s.index() < self.state.stride()) {
            self.state.load(start);
        } else {
            self.state = DenseState::from_configuration(start, self.compiled.stride());
        }
        self.propensities
            .rebuild(&self.compiled, self.state.counts());
    }

    /// Advances the chain by one reaction firing: draws the exponential
    /// waiting time, selects a reaction proportionally to its propensity and
    /// applies it in place, refreshing only the propensities the firing can
    /// have changed.  Returns `false` (leaving the state and `time` untouched)
    /// when the CRN is silent.  Both run modes share this step so the
    /// selection logic cannot drift between them.
    fn step(&mut self, time: &mut f64) -> bool {
        let total = self.propensities.total();
        if total <= 0.0 {
            return false;
        }
        // Exponential waiting time with rate `total`.
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        *time += -u.ln() / total;
        // Choose the reaction proportionally to its propensity.
        let target = self.rng.gen::<f64>() * total;
        let chosen = select_reaction(self.propensities.values(), target);
        self.state.apply(&self.compiled.reactions()[chosen]);
        self.propensities
            .refresh_after(&self.compiled, self.state.counts(), chosen);
        true
    }

    /// Runs from `start` until the CRN is silent or `max_steps` reactions have
    /// fired.
    ///
    /// Deliberately uninstrumented: a single run is often one iteration of a
    /// caller's hot loop (ensemble trials, spot checks), so the
    /// observability counters for it are accumulated by those callers and
    /// flushed per batch, never per run.
    #[must_use]
    pub fn run(&mut self, start: &Configuration, max_steps: u64) -> GillespieOutcome {
        self.load_start(start);
        let mut time = 0.0f64;
        let mut steps = 0u64;
        while steps < max_steps {
            if !self.step(&mut time) {
                return GillespieOutcome {
                    final_configuration: self.state.to_configuration(),
                    steps,
                    time,
                    silent: true,
                };
            }
            steps += 1;
        }
        GillespieOutcome {
            final_configuration: self.state.to_configuration(),
            steps,
            time,
            silent: false,
        }
    }

    /// Runs from `start`, recording `(time, count-of-species)` after every
    /// firing — the trajectory data behind the convergence-time figures.
    #[must_use]
    pub fn run_recording(
        &mut self,
        start: &Configuration,
        tracked: crn_model::Species,
        max_steps: u64,
    ) -> (GillespieOutcome, Vec<(f64, u64)>) {
        self.load_start(start);
        let mut time = 0.0f64;
        let mut steps = 0u64;
        let mut trajectory = vec![(0.0, self.state.count(tracked))];
        while steps < max_steps {
            if !self.step(&mut time) {
                return (
                    GillespieOutcome {
                        final_configuration: self.state.to_configuration(),
                        steps,
                        time,
                        silent: true,
                    },
                    trajectory,
                );
            }
            steps += 1;
            trajectory.push((time, self.state.count(tracked)));
        }
        (
            GillespieOutcome {
                final_configuration: self.state.to_configuration(),
                steps,
                time,
                silent: false,
            },
            trajectory,
        )
    }
}

/// The seed Gillespie implementation on sparse configurations: every step
/// recomputes all propensities and `Configuration::apply` clones a map.
///
/// Retained as the **differential oracle** for the dense kernel — identical
/// seed must give an identical trajectory — and as the sparse baseline the
/// E14 benchmark measures the dense speedup against.  Not for hot paths.
#[derive(Debug, Clone)]
pub struct SparseGillespie {
    crn: Crn,
    rng: StdRng,
    /// Per-step propensity buffer, reused so the loop never allocates.
    propensities: Vec<f64>,
}

impl SparseGillespie {
    /// Creates a sparse simulator for `crn` with a deterministic RNG seed.
    #[must_use]
    pub fn new(crn: Crn, seed: u64) -> Self {
        SparseGillespie {
            crn,
            rng: StdRng::seed_from_u64(seed),
            propensities: Vec::new(),
        }
    }

    /// Restarts the RNG stream from `seed` (mirrors [`Gillespie::reseed`], so
    /// differential drivers can reuse one simulator of each kind).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// One sparse step: full propensity recompute, clone-on-apply.
    fn step(&mut self, config: &mut Configuration, time: &mut f64) -> bool {
        self.propensities.clear();
        for i in 0..self.crn.reactions().len() {
            self.propensities.push(propensity(&self.crn, config, i));
        }
        let total: f64 = self.propensities.iter().sum();
        if total <= 0.0 {
            return false;
        }
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        *time += -u.ln() / total;
        let target = self.rng.gen::<f64>() * total;
        let chosen = select_reaction(&self.propensities, target);
        *config = config.apply(&self.crn.reactions()[chosen]);
        true
    }

    /// Runs from `start` until the CRN is silent or `max_steps` reactions have
    /// fired.
    #[must_use]
    pub fn run(&mut self, start: &Configuration, max_steps: u64) -> GillespieOutcome {
        let mut config = start.clone();
        let mut time = 0.0f64;
        let mut steps = 0u64;
        while steps < max_steps {
            if !self.step(&mut config, &mut time) {
                return GillespieOutcome {
                    final_configuration: config,
                    steps,
                    time,
                    silent: true,
                };
            }
            steps += 1;
        }
        GillespieOutcome {
            final_configuration: config,
            steps,
            time,
            silent: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_model::examples;
    use crn_numeric::NVec;

    #[test]
    fn double_crn_terminates_with_exact_output() {
        let double = examples::double_crn();
        let start = double.initial_configuration(&NVec::from(vec![25])).unwrap();
        let mut sim = Gillespie::new(double.crn().clone(), 1);
        let out = sim.run(&start, 1_000_000);
        assert!(out.silent);
        assert_eq!(out.steps, 25);
        assert_eq!(out.final_configuration.count(double.output()), 50);
        assert!(out.time > 0.0);
    }

    #[test]
    fn min_crn_computes_min_under_ssa() {
        let min = examples::min_crn();
        let start = min
            .initial_configuration(&NVec::from(vec![17, 40]))
            .unwrap();
        let mut sim = Gillespie::new(min.crn().clone(), 2);
        let out = sim.run(&start, 1_000_000);
        assert!(out.silent);
        assert_eq!(out.final_configuration.count(min.output()), 17);
    }

    #[test]
    fn max_crn_converges_to_max_with_fair_ssa() {
        let max = examples::max_crn();
        for seed in 0..5 {
            let start = max.initial_configuration(&NVec::from(vec![8, 13])).unwrap();
            let mut sim = Gillespie::new(max.crn().clone(), seed);
            let out = sim.run(&start, 1_000_000);
            assert!(out.silent);
            assert_eq!(out.final_configuration.count(max.output()), 13);
        }
    }

    #[test]
    fn step_limit_is_honoured() {
        let double = examples::double_crn();
        let start = double
            .initial_configuration(&NVec::from(vec![100]))
            .unwrap();
        let mut sim = Gillespie::new(double.crn().clone(), 3);
        let out = sim.run(&start, 10);
        assert!(!out.silent);
        assert_eq!(out.steps, 10);
    }

    #[test]
    fn recording_tracks_output_monotonically_for_oblivious_crn() {
        let double = examples::double_crn();
        let start = double.initial_configuration(&NVec::from(vec![12])).unwrap();
        let mut sim = Gillespie::new(double.crn().clone(), 4);
        let (out, trajectory) = sim.run_recording(&start, double.output(), 1_000_000);
        assert!(out.silent);
        assert!(trajectory.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(trajectory.last().unwrap().1, 24);
        assert!(trajectory.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn identical_seeds_reproduce_runs() {
        let max = examples::max_crn();
        let start = max.initial_configuration(&NVec::from(vec![5, 9])).unwrap();
        let run = |seed| Gillespie::new(max.crn().clone(), seed).run(&start, 1_000_000);
        let a = run(11);
        let b = run(11);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.final_configuration, b.final_configuration);
    }

    #[test]
    fn reseed_replays_the_same_trajectory_on_one_simulator() {
        let max = examples::max_crn();
        let start = max.initial_configuration(&NVec::from(vec![6, 4])).unwrap();
        let mut sim = Gillespie::new(max.crn().clone(), 0);
        sim.reseed(11);
        let a = sim.run(&start, 1_000_000);
        sim.reseed(11);
        let b = sim.run(&start, 1_000_000);
        assert_eq!(a, b);
        // And a reused simulator matches a fresh one.
        let fresh = Gillespie::new(max.crn().clone(), 11).run(&start, 1_000_000);
        assert_eq!(a, fresh);
    }

    #[test]
    fn dense_kernel_matches_sparse_oracle_seed_for_seed() {
        let max = examples::max_crn();
        let start = max.initial_configuration(&NVec::from(vec![9, 6])).unwrap();
        for seed in 0..10 {
            let dense = Gillespie::new(max.crn().clone(), seed).run(&start, 1_000_000);
            let sparse = SparseGillespie::new(max.crn().clone(), seed).run(&start, 1_000_000);
            assert_eq!(dense, sparse, "diverged at seed {seed}");
        }
    }

    #[test]
    fn foreign_species_in_start_configuration_are_carried() {
        // A start configuration can mention species the CRN never interned;
        // they are inert but must survive into the final configuration.
        let double = examples::double_crn();
        // A species interned by a *different* CRN, with an index past every
        // species the double CRN knows.
        let mut other = Crn::new();
        let mut foreign = other.add_species("F0");
        for i in 1..8 {
            foreign = other.add_species(&format!("F{i}"));
        }
        let mut start = double.initial_configuration(&NVec::from(vec![3])).unwrap();
        start.set(foreign, 9);
        let mut sim = Gillespie::new(double.crn().clone(), 5);
        let out = sim.run(&start, 1_000_000);
        assert!(out.silent);
        assert_eq!(out.final_configuration.count(foreign), 9);
        assert_eq!(out.final_configuration.count(double.output()), 6);
    }

    /// A CRN whose *final* reaction is inapplicable from the start
    /// configuration: `X -> Y` can fire, `K + Y -> K` never can (no `K`).
    fn crn_with_inapplicable_final_reaction() -> Crn {
        let mut crn = Crn::new();
        crn.parse_reaction("X -> Y").unwrap();
        crn.parse_reaction("K + Y -> K").unwrap();
        crn
    }

    /// Regression test for the roulette-selection fallback.  The seed code
    /// initialised `chosen = propensities.len() - 1` before the scan, so when
    /// floating-point rounding exhausts `target` past every entry the
    /// zero-propensity final reaction was selected and `Configuration::apply`
    /// panicked.  `select_reaction` must fall back to the last reaction with
    /// *positive* propensity instead.
    #[test]
    fn exhausted_target_falls_back_to_last_applicable_reaction() {
        let crn = crn_with_inapplicable_final_reaction();
        let mut config = Configuration::new();
        config.set(crn.species_named("X").unwrap(), 3);
        let propensities: Vec<f64> = (0..crn.reactions().len())
            .map(|i| propensity(&crn, &config, i))
            .collect();
        let total: f64 = propensities.iter().sum();
        assert_eq!(
            propensities.last().copied(),
            Some(0.0),
            "final reaction must be inapplicable"
        );
        // Simulate the rounding overshoot: a roulette target at (or past) the
        // total propensity survives every cumulative subtraction.
        for target in [total, total * (1.0 + f64::EPSILON)] {
            let chosen = select_reaction(&propensities, target);
            assert!(
                propensities[chosen] > 0.0,
                "selected inapplicable reaction {chosen} for target {target}"
            );
            // Applying the selected reaction must not panic.
            let _ = config.apply(&crn.reactions()[chosen]);
        }
    }

    #[test]
    fn select_reaction_respects_propensity_intervals() {
        // Intervals: [0,1) -> 0, [1,3) -> 1, zero-width for 2, [3,4) -> 3.
        let p = [1.0, 2.0, 0.0, 1.0];
        assert_eq!(select_reaction(&p, 0.0), 0);
        assert_eq!(select_reaction(&p, 0.999), 0);
        assert_eq!(select_reaction(&p, 1.0), 1);
        assert_eq!(select_reaction(&p, 2.999), 1);
        assert_eq!(select_reaction(&p, 3.5), 3);
        // Trailing zero propensity is never selected, even on overshoot.
        assert_eq!(select_reaction(&[1.0, 0.0], 2.0), 0);
    }

    #[test]
    fn runs_with_inapplicable_final_reaction_never_panic() {
        let crn = crn_with_inapplicable_final_reaction();
        let x = crn.species_named("X").unwrap();
        let y = crn.species_named("Y").unwrap();
        for seed in 0..50 {
            let mut start = Configuration::new();
            start.set(x, 20);
            let mut sim = Gillespie::new(crn.clone(), seed);
            let out = sim.run(&start, 1_000_000);
            assert!(out.silent);
            assert_eq!(out.final_configuration.count(y), 20);
        }
    }
}
