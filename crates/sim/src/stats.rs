//! Summary statistics for batches of measurements.

use serde::{Deserialize, Serialize};

/// Summary statistics of a batch of nonnegative measurements (step counts,
/// interaction counts, simulated times).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Summarizes a batch of samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty batch");
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Summary {
            count,
            mean,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile(&sorted, 0.5),
            p95: percentile(&sorted, 0.95),
        }
    }

    /// Summarizes integer samples (convenience for step counts).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn of_counts(samples: &[u64]) -> Self {
        let as_f64: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
        Summary::of(&as_f64)
    }
}

/// A mergeable, streaming accumulator of samples feeding a [`Summary`].
///
/// Ensemble workers each fill one accumulator and the driver merges them in
/// trial order, so the final [`Summary`] is **bit-identical** to a sequential
/// run regardless of the worker count.  Samples are retained (the summary's
/// median and p95 are exact nearest-rank percentiles, which no constant-space
/// sketch reproduces); pushes and merges are amortized O(1) per sample.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SummaryAccumulator {
    samples: Vec<f64>,
}

impl SummaryAccumulator {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        SummaryAccumulator::default()
    }

    /// An empty accumulator with room for `capacity` samples.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        SummaryAccumulator {
            samples: Vec::with_capacity(capacity),
        }
    }

    /// Records one sample.
    pub fn push(&mut self, sample: f64) {
        self.samples.push(sample);
    }

    /// Appends `later`'s samples after this accumulator's own.  Merging is
    /// ordered: the caller merges worker accumulators in trial order so the
    /// combined sample sequence equals the sequential one.
    pub fn merge(&mut self, later: SummaryAccumulator) {
        self.samples.extend(later.samples);
    }

    /// The number of samples recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no sample has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Summarizes the accumulated samples.
    ///
    /// # Panics
    ///
    /// Panics if no sample has been recorded.
    #[must_use]
    pub fn finish(&self) -> Summary {
        Summary::of(&self.samples)
    }
}

/// Nearest-rank percentile of an already-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_constant_batch() {
        let s = Summary::of(&[4.0, 4.0, 4.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.p95, 4.0);
    }

    #[test]
    fn summary_of_known_batch() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.0);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn counts_are_converted() {
        let s = Summary::of_counts(&[10, 20, 30]);
        assert_eq!(s.mean, 20.0);
        assert_eq!(s.max, 30.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_batch_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn accumulator_merge_matches_sequential_summary() {
        let samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        let mut left = SummaryAccumulator::new();
        let mut right = SummaryAccumulator::with_capacity(4);
        for (i, &s) in samples.iter().enumerate() {
            if i < 3 {
                left.push(s);
            } else {
                right.push(s);
            }
        }
        left.merge(right);
        assert_eq!(left.len(), samples.len());
        assert!(!left.is_empty());
        assert_eq!(left.finish(), Summary::of(&samples));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_accumulator_panics_on_finish() {
        let _ = SummaryAccumulator::new().finish();
    }

    #[test]
    fn percentile_is_monotone_in_q() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.5), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
    }

    /// Sorts an arbitrary integer batch into the form `percentile` expects.
    fn sorted_batch(raw: &[u64]) -> Vec<f64> {
        let mut sorted: Vec<f64> = raw.iter().map(|&s| s as f64).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        sorted
    }

    proptest! {
        /// Nearest-rank percentile is monotone in `q` on any sorted batch.
        #[test]
        fn percentile_monotone_on_arbitrary_batches(
            raw in proptest::collection::vec(0u64..1_000, 1..32),
            qa in 0u64..101,
            qb in 0u64..101,
        ) {
            let sorted = sorted_batch(&raw);
            let (lo, hi) = (qa.min(qb), qa.max(qb));
            prop_assert!(
                percentile(&sorted, lo as f64 / 100.0) <= percentile(&sorted, hi as f64 / 100.0)
            );
        }

        /// The summary statistics respect the order min ≤ median ≤ p95 ≤ max,
        /// and the mean lies within the sample range.
        #[test]
        fn summary_order_invariants(
            raw in proptest::collection::vec(0u64..1_000_000, 1..48),
        ) {
            let s = Summary::of_counts(&raw);
            prop_assert!(s.min <= s.median);
            prop_assert!(s.median <= s.p95);
            prop_assert!(s.p95 <= s.max);
            prop_assert!(s.min <= s.mean && s.mean <= s.max);
            prop_assert_eq!(s.count, raw.len());
        }

        /// The `q = 0` edge case clamps to the smallest sample, and every
        /// percentile of a single-sample batch is that sample.
        #[test]
        fn percentile_edge_cases(
            raw in proptest::collection::vec(0u64..1_000, 1..16),
            x in 0u64..1_000,
            q in 0u64..101,
        ) {
            let sorted = sorted_batch(&raw);
            prop_assert_eq!(percentile(&sorted, 0.0), sorted[0]);
            let single = Summary::of(&[x as f64]);
            prop_assert_eq!(percentile(&[x as f64], q as f64 / 100.0), x as f64);
            prop_assert_eq!(single.min, x as f64);
            prop_assert_eq!(single.median, x as f64);
            prop_assert_eq!(single.p95, x as f64);
            prop_assert_eq!(single.max, x as f64);
        }
    }
}
