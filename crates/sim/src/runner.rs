//! Batch experiment runner: repeated trials and convergence-versus-input-size
//! series (the data behind experiments E1, E9, E10, E12).
//!
//! Repeated trials run on the [`Ensemble`] —
//! independent simulations fanned across scoped worker threads with
//! SplitMix64-decorrelated per-trial seeds — whose determinism contract makes
//! every public result here independent of the worker count.

use serde::{Deserialize, Serialize};

use crn_model::{CrnError, FunctionCrn};
use crn_numeric::NVec;

use crate::convergence::ConvergenceKernel;
use crate::ensemble::{Ensemble, SeedStream};
use crate::scheduler::UniformScheduler;
use crate::stats::Summary;

/// Summary of repeated trials of one CRN on one input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialSummary {
    /// The input supplied to every trial.
    pub input: NVec,
    /// Statistics over the step counts of the trials.
    pub steps: Summary,
    /// Statistics over the simulated times (Gillespie only; zero otherwise).
    pub time: Summary,
    /// The set of distinct final outputs observed (a correct, converging CRN
    /// yields a single value here).
    pub outputs: Vec<u64>,
    /// Fraction of trials that reached silence before the step bound.
    pub silent_fraction: f64,
}

/// Runs `trials` independent Gillespie simulations of `crn` on `x`, fanned
/// across one worker thread per available core.
///
/// Trial `t` is seeded with `SeedStream::new(seed).seed(t)`, so the result is
/// deterministic in `seed` and identical for every worker count.
///
/// # Errors
///
/// Returns [`CrnError::DimensionMismatch`] if `x` has the wrong arity.
pub fn measure_convergence(
    crn: &FunctionCrn,
    x: &NVec,
    trials: u32,
    max_steps: u64,
    seed: u64,
) -> Result<TrialSummary, CrnError> {
    Ensemble::new(crn)
        .with_max_steps(max_steps)
        .run(x, trials, seed)
}

/// [`measure_convergence`] with an explicit worker-thread count (mainly for
/// scaling benchmarks; the results are identical for every value).
///
/// # Errors
///
/// Returns [`CrnError::DimensionMismatch`] if `x` has the wrong arity.
pub fn measure_convergence_with_workers(
    crn: &FunctionCrn,
    x: &NVec,
    trials: u32,
    max_steps: u64,
    seed: u64,
    workers: usize,
) -> Result<TrialSummary, CrnError> {
    Ensemble::new(crn)
        .with_max_steps(max_steps)
        .with_workers(workers)
        .run(x, trials, seed)
}

/// One point of a convergence-versus-input-size series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Total input size `‖x‖₁`.
    pub input_size: u64,
    /// The input vector used at this point.
    pub input: NVec,
    /// Mean number of reactions fired until silence.
    pub mean_steps: f64,
    /// Mean simulated time until silence.
    pub mean_time: f64,
    /// Whether every trial produced the expected output.
    pub all_correct: bool,
}

/// Sweeps input sizes and measures convergence, producing the series plotted
/// in the E1/E9 experiments.  `make_input` maps a size `n` to the input vector
/// (e.g. `|n| NVec::from(vec![n, n])`), and `expected` gives the correct
/// output for that input.
///
/// # Errors
///
/// Propagates errors from [`measure_convergence`].
pub fn convergence_series(
    crn: &FunctionCrn,
    sizes: &[u64],
    make_input: impl Fn(u64) -> NVec,
    expected: impl Fn(&NVec) -> u64,
    trials: u32,
    max_steps: u64,
    seed: u64,
) -> Result<Vec<ConvergencePoint>, CrnError> {
    let stream = SeedStream::new(seed);
    let mut series = Vec::with_capacity(sizes.len());
    for (k, &n) in sizes.iter().enumerate() {
        let input = make_input(n);
        let summary = measure_convergence(crn, &input, trials, max_steps, stream.seed(k as u64))?;
        let want = expected(&input);
        series.push(ConvergencePoint {
            input_size: input.total(),
            input: input.clone(),
            mean_steps: summary.steps.mean,
            mean_time: summary.time.mean,
            all_correct: summary.outputs == vec![want] && summary.silent_fraction == 1.0,
        });
    }
    Ok(series)
}

/// Runs one discrete-scheduler trial per input in a box and checks the output
/// against `expected`; returns the number of mismatches.  This is a cheap
/// smoke test used by examples (the exhaustive checker in `crn-model`
/// provides the real guarantee).
///
/// The CRN is compiled once (one [`ConvergenceKernel`] reused across every
/// input) and the box is streamed lazily, so arbitrarily large boxes cost no
/// up-front materialization.
///
/// # Errors
///
/// Propagates errors from
/// [`run_to_silence`](crate::convergence::run_to_silence).
pub fn spot_check_on_box(
    crn: &FunctionCrn,
    expected: impl Fn(&NVec) -> u64,
    bound: u64,
    max_steps: u64,
    seed: u64,
) -> Result<usize, CrnError> {
    let stream = SeedStream::new(seed);
    let mut kernel = ConvergenceKernel::new(crn);
    let mut mismatches = 0;
    for (k, x) in NVec::box_iter(crn.dim(), bound).enumerate() {
        let mut scheduler = UniformScheduler::seeded(stream.seed(k as u64));
        let report = kernel.run_to_silence(&x, &mut scheduler, max_steps)?;
        if !report.silent || report.output != expected(&x) {
            mismatches += 1;
        }
    }
    Ok(mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_model::examples;

    #[test]
    fn measure_convergence_of_min() {
        let min = examples::min_crn();
        let summary =
            measure_convergence(&min, &NVec::from(vec![20, 35]), 10, 1_000_000, 7).unwrap();
        assert_eq!(summary.outputs, vec![20]);
        assert_eq!(summary.silent_fraction, 1.0);
        assert_eq!(summary.steps.mean, 20.0);
        assert!(summary.time.mean > 0.0);
    }

    #[test]
    fn convergence_series_grows_with_input_size() {
        let max = examples::max_crn();
        let series = convergence_series(
            &max,
            &[5, 10, 20],
            |n| NVec::from(vec![n, n]),
            |x| x[0].max(x[1]),
            5,
            1_000_000,
            11,
        )
        .unwrap();
        assert_eq!(series.len(), 3);
        assert!(series.iter().all(|p| p.all_correct));
        assert!(series[0].mean_steps < series[2].mean_steps);
        assert!(series[0].input_size < series[2].input_size);
    }

    #[test]
    fn measurement_is_independent_of_worker_count() {
        let max = examples::max_crn();
        let x = NVec::from(vec![6, 9]);
        let one = measure_convergence_with_workers(&max, &x, 8, 1_000_000, 3, 1).unwrap();
        for workers in [2usize, 4, 8] {
            let many =
                measure_convergence_with_workers(&max, &x, 8, 1_000_000, 3, workers).unwrap();
            assert_eq!(many, one, "workers={workers}");
        }
        assert_eq!(measure_convergence(&max, &x, 8, 1_000_000, 3).unwrap(), one);
    }

    #[test]
    fn spot_check_box_all_pass_for_double() {
        let double = examples::double_crn();
        let mismatches = spot_check_on_box(&double, |x| 2 * x[0], 6, 100_000, 3).unwrap();
        assert_eq!(mismatches, 0);
    }

    #[test]
    fn spot_check_box_detects_wrong_spec() {
        let double = examples::double_crn();
        // Claiming the double CRN computes 3x must produce mismatches.
        let mismatches = spot_check_on_box(&double, |x| 3 * x[0], 4, 100_000, 3).unwrap();
        assert!(mismatches > 0);
    }
}
