//! Running a function CRN until it converges (is silent) under a scheduler.
//!
//! Runs execute on the dense kernel: the CRN is compiled once, the
//! configuration is fired in place, and the applicable set is maintained
//! incrementally through the compiled dependency graph instead of rescanned
//! every step.  [`ConvergenceKernel`] keeps the compiled CRN and the scratch
//! alive so a batch of inputs (e.g. [`crate::runner::spot_check_on_box`])
//! compiles once and allocates per run only what the report itself needs.

use serde::{Deserialize, Serialize};

use crn_model::{CompiledCrn, CrnError, DenseState, FunctionCrn};
use crn_numeric::NVec;

use crate::kernel::ApplicableSet;
use crate::scheduler::Scheduler;

/// The result of running a function CRN on one input until silence (or a step
/// bound).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// The input supplied.
    pub input: NVec,
    /// The count of the output species when the run stopped.
    pub output: u64,
    /// The number of reactions fired.
    pub steps: u64,
    /// Whether the CRN became silent (no reaction applicable).
    pub silent: bool,
}

/// A reusable discrete-scheduler runner for one function CRN: the compiled
/// tables, dense state and applicable-set scratch persist across runs.
#[derive(Debug, Clone)]
pub struct ConvergenceKernel<'a> {
    crn: &'a FunctionCrn,
    compiled: CompiledCrn,
    state: DenseState,
    applicable: ApplicableSet,
}

impl<'a> ConvergenceKernel<'a> {
    /// Compiles `crn` once and readies the scratch.
    #[must_use]
    pub fn new(crn: &'a FunctionCrn) -> Self {
        let compiled = CompiledCrn::compile(crn.crn());
        // The stride must also cover the role species the start configuration
        // is built from (they can come from a different interner).
        let stride = crn.role_stride().max(compiled.stride());
        ConvergenceKernel {
            crn,
            compiled,
            state: DenseState::zero(stride),
            applicable: ApplicableSet::new(),
        }
    }

    /// The compiled form of the CRN.
    #[must_use]
    pub fn compiled(&self) -> &CompiledCrn {
        &self.compiled
    }

    /// Loads the initial configuration `I_x` and rebuilds the applicable set.
    fn start(&mut self, x: &NVec) -> Result<(), CrnError> {
        let start = self.crn.initial_configuration(x)?;
        self.state.load(&start);
        self.applicable.rebuild(&self.compiled, self.state.counts());
        Ok(())
    }

    /// Fires the scheduler's pick and refreshes the applicable set.  Returns
    /// `false` when the run stops (silent or scheduler halt).
    fn fire(&mut self, scheduler: &mut dyn Scheduler) -> bool {
        if self.applicable.is_empty() {
            return false;
        }
        match scheduler.select(&self.compiled, &self.state, self.applicable.indices()) {
            None => false,
            Some(i) => {
                self.state.apply(&self.compiled.reactions()[i]);
                self.applicable
                    .refresh_after(&self.compiled, self.state.counts(), i);
                true
            }
        }
    }

    /// Runs on input `x` under `scheduler` until no reaction is applicable,
    /// the scheduler declines to pick one, or `max_steps` is reached.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::DimensionMismatch`] if `x` has the wrong arity.
    pub fn run_to_silence(
        &mut self,
        x: &NVec,
        scheduler: &mut dyn Scheduler,
        max_steps: u64,
    ) -> Result<ConvergenceReport, CrnError> {
        self.start(x)?;
        let mut steps = 0u64;
        let silent = loop {
            if steps >= max_steps {
                break false;
            }
            // `fire` returns false both when nothing is applicable and when
            // the scheduler declines; either way the run halts as "silent".
            if !self.fire(scheduler) {
                break true;
            }
            steps += 1;
        };
        Ok(ConvergenceReport {
            input: x.clone(),
            output: self.state.count(self.crn.output()),
            steps,
            silent,
        })
    }

    /// The largest output count observed at any point of a single run
    /// (transient overshoot detection, used for the composition experiments
    /// of E10).
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::DimensionMismatch`] if `x` has the wrong arity.
    pub fn peak_output(
        &mut self,
        x: &NVec,
        scheduler: &mut dyn Scheduler,
        max_steps: u64,
    ) -> Result<u64, CrnError> {
        self.start(x)?;
        let output = self.crn.output();
        let mut peak = self.state.count(output);
        let mut steps = 0u64;
        while steps < max_steps && self.fire(scheduler) {
            peak = peak.max(self.state.count(output));
            steps += 1;
        }
        Ok(peak)
    }
}

/// Runs `crn` on input `x` under `scheduler` until no reaction is applicable,
/// the scheduler declines to pick one, or `max_steps` is reached.
///
/// For output-oblivious CRNs driven by a fair scheduler, silence implies the
/// output equals the stably computed value; for non-oblivious CRNs (or unfair
/// schedulers) the report may show transient overshoot, which is exactly what
/// the Section 1.2 experiments demonstrate.
///
/// Compiles the CRN per call; batch drivers should hold a
/// [`ConvergenceKernel`] instead.
///
/// # Errors
///
/// Returns [`CrnError::DimensionMismatch`] if `x` has the wrong arity.
pub fn run_to_silence(
    crn: &FunctionCrn,
    x: &NVec,
    scheduler: &mut dyn Scheduler,
    max_steps: u64,
) -> Result<ConvergenceReport, CrnError> {
    ConvergenceKernel::new(crn).run_to_silence(x, scheduler, max_steps)
}

/// The largest output count observed at any point of a single run (transient
/// overshoot detection, used for the composition experiments of E10).
///
/// # Errors
///
/// Returns [`CrnError::DimensionMismatch`] if `x` has the wrong arity.
pub fn peak_output(
    crn: &FunctionCrn,
    x: &NVec,
    scheduler: &mut dyn Scheduler,
    max_steps: u64,
) -> Result<u64, CrnError> {
    ConvergenceKernel::new(crn).peak_output(x, scheduler, max_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{PriorityScheduler, PropensityScheduler, UniformScheduler};
    use crn_model::examples;

    #[test]
    fn min_converges_to_min_under_uniform_scheduler() {
        let min = examples::min_crn();
        let mut sched = UniformScheduler::seeded(3);
        let report = run_to_silence(&min, &NVec::from(vec![9, 4]), &mut sched, 100_000).unwrap();
        assert!(report.silent);
        assert_eq!(report.output, 4);
        assert_eq!(report.steps, 4);
    }

    #[test]
    fn max_converges_to_max_under_fair_schedulers() {
        let max = examples::max_crn();
        for seed in 0..3 {
            let mut uniform = UniformScheduler::seeded(seed);
            let r = run_to_silence(&max, &NVec::from(vec![6, 11]), &mut uniform, 100_000).unwrap();
            assert!(r.silent);
            assert_eq!(r.output, 11);
            let mut weighted = PropensityScheduler::seeded(seed);
            let r = run_to_silence(&max, &NVec::from(vec![6, 11]), &mut weighted, 100_000).unwrap();
            assert!(r.silent);
            assert_eq!(r.output, 11);
        }
    }

    #[test]
    fn adversarial_schedule_overshoots_max() {
        // Fire the two input-consuming reactions first: the output transiently
        // reaches x1 + x2 before the clean-up reactions bring it back down.
        let max = examples::max_crn();
        let mut adversary = PriorityScheduler::new(vec![0, 1, 2, 3]);
        let peak = peak_output(&max, &NVec::from(vec![5, 7]), &mut adversary, 100_000).unwrap();
        assert_eq!(peak, 12);
        // Even so, the final silent output is correct (stable computation).
        let mut adversary = PriorityScheduler::new(vec![0, 1, 2, 3]);
        let r = run_to_silence(&max, &NVec::from(vec![5, 7]), &mut adversary, 100_000).unwrap();
        assert!(r.silent);
        assert_eq!(r.output, 7);
    }

    #[test]
    fn oblivious_crn_never_overshoots() {
        let min = examples::min_crn();
        for seed in 0..5 {
            let mut sched = UniformScheduler::seeded(seed);
            let peak = peak_output(&min, &NVec::from(vec![8, 3]), &mut sched, 100_000).unwrap();
            assert!(peak <= 3);
        }
    }

    #[test]
    fn step_limit_reported_as_not_silent() {
        let double = examples::double_crn();
        let mut sched = UniformScheduler::seeded(0);
        let report = run_to_silence(&double, &NVec::from(vec![50]), &mut sched, 5).unwrap();
        assert!(!report.silent);
        assert_eq!(report.steps, 5);
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let min = examples::min_crn();
        let mut sched = UniformScheduler::seeded(0);
        assert!(run_to_silence(&min, &NVec::from(vec![1]), &mut sched, 10).is_err());
    }

    #[test]
    fn reused_kernel_matches_fresh_runs() {
        let max = examples::max_crn();
        let mut kernel = ConvergenceKernel::new(&max);
        for (x1, x2) in [(3u64, 5u64), (5, 3), (0, 0), (7, 1)] {
            let x = NVec::from(vec![x1, x2]);
            let reused = kernel
                .run_to_silence(&x, &mut UniformScheduler::seeded(9), 100_000)
                .unwrap();
            let fresh =
                run_to_silence(&max, &x, &mut UniformScheduler::seeded(9), 100_000).unwrap();
            assert_eq!(reused, fresh);
        }
    }
}
