//! Running a function CRN until it converges (is silent) under a scheduler.

use serde::{Deserialize, Serialize};

use crn_model::{CrnError, FunctionCrn};
use crn_numeric::NVec;

use crate::scheduler::Scheduler;

/// The result of running a function CRN on one input until silence (or a step
/// bound).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// The input supplied.
    pub input: NVec,
    /// The count of the output species when the run stopped.
    pub output: u64,
    /// The number of reactions fired.
    pub steps: u64,
    /// Whether the CRN became silent (no reaction applicable).
    pub silent: bool,
}

/// Runs `crn` on input `x` under `scheduler` until no reaction is applicable,
/// the scheduler declines to pick one, or `max_steps` is reached.
///
/// For output-oblivious CRNs driven by a fair scheduler, silence implies the
/// output equals the stably computed value; for non-oblivious CRNs (or unfair
/// schedulers) the report may show transient overshoot, which is exactly what
/// the Section 1.2 experiments demonstrate.
///
/// # Errors
///
/// Returns [`CrnError::DimensionMismatch`] if `x` has the wrong arity.
pub fn run_to_silence(
    crn: &FunctionCrn,
    x: &NVec,
    scheduler: &mut dyn Scheduler,
    max_steps: u64,
) -> Result<ConvergenceReport, CrnError> {
    let mut config = crn.initial_configuration(x)?;
    let mut steps = 0u64;
    let silent = loop {
        if steps >= max_steps {
            break false;
        }
        let applicable = crn.crn().applicable_reactions(&config);
        if applicable.is_empty() {
            break true;
        }
        match scheduler.select(crn.crn(), &config, &applicable) {
            None => break true,
            Some(i) => {
                config = config.apply(&crn.crn().reactions()[i]);
                steps += 1;
            }
        }
    };
    Ok(ConvergenceReport {
        input: x.clone(),
        output: crn.output_count(&config),
        steps,
        silent,
    })
}

/// The largest output count observed at any point of a single run (transient
/// overshoot detection, used for the composition experiments of E10).
///
/// # Errors
///
/// Returns [`CrnError::DimensionMismatch`] if `x` has the wrong arity.
pub fn peak_output(
    crn: &FunctionCrn,
    x: &NVec,
    scheduler: &mut dyn Scheduler,
    max_steps: u64,
) -> Result<u64, CrnError> {
    let mut config = crn.initial_configuration(x)?;
    let mut peak = crn.output_count(&config);
    let mut steps = 0u64;
    while steps < max_steps {
        let applicable = crn.crn().applicable_reactions(&config);
        if applicable.is_empty() {
            break;
        }
        match scheduler.select(crn.crn(), &config, &applicable) {
            None => break,
            Some(i) => {
                config = config.apply(&crn.crn().reactions()[i]);
                peak = peak.max(crn.output_count(&config));
                steps += 1;
            }
        }
    }
    Ok(peak)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{PriorityScheduler, PropensityScheduler, UniformScheduler};
    use crn_model::examples;

    #[test]
    fn min_converges_to_min_under_uniform_scheduler() {
        let min = examples::min_crn();
        let mut sched = UniformScheduler::seeded(3);
        let report = run_to_silence(&min, &NVec::from(vec![9, 4]), &mut sched, 100_000).unwrap();
        assert!(report.silent);
        assert_eq!(report.output, 4);
        assert_eq!(report.steps, 4);
    }

    #[test]
    fn max_converges_to_max_under_fair_schedulers() {
        let max = examples::max_crn();
        for seed in 0..3 {
            let mut uniform = UniformScheduler::seeded(seed);
            let r = run_to_silence(&max, &NVec::from(vec![6, 11]), &mut uniform, 100_000).unwrap();
            assert!(r.silent);
            assert_eq!(r.output, 11);
            let mut weighted = PropensityScheduler::seeded(seed);
            let r = run_to_silence(&max, &NVec::from(vec![6, 11]), &mut weighted, 100_000).unwrap();
            assert!(r.silent);
            assert_eq!(r.output, 11);
        }
    }

    #[test]
    fn adversarial_schedule_overshoots_max() {
        // Fire the two input-consuming reactions first: the output transiently
        // reaches x1 + x2 before the clean-up reactions bring it back down.
        let max = examples::max_crn();
        let mut adversary = PriorityScheduler::new(vec![0, 1, 2, 3]);
        let peak = peak_output(&max, &NVec::from(vec![5, 7]), &mut adversary, 100_000).unwrap();
        assert_eq!(peak, 12);
        // Even so, the final silent output is correct (stable computation).
        let mut adversary = PriorityScheduler::new(vec![0, 1, 2, 3]);
        let r = run_to_silence(&max, &NVec::from(vec![5, 7]), &mut adversary, 100_000).unwrap();
        assert!(r.silent);
        assert_eq!(r.output, 7);
    }

    #[test]
    fn oblivious_crn_never_overshoots() {
        let min = examples::min_crn();
        for seed in 0..5 {
            let mut sched = UniformScheduler::seeded(seed);
            let peak = peak_output(&min, &NVec::from(vec![8, 3]), &mut sched, 100_000).unwrap();
            assert!(peak <= 3);
        }
    }

    #[test]
    fn step_limit_reported_as_not_silent() {
        let double = examples::double_crn();
        let mut sched = UniformScheduler::seeded(0);
        let report = run_to_silence(&double, &NVec::from(vec![50]), &mut sched, 5).unwrap();
        assert!(!report.silent);
        assert_eq!(report.steps, 5);
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let min = examples::min_crn();
        let mut sched = UniformScheduler::seeded(0);
        assert!(run_to_silence(&min, &NVec::from(vec![1]), &mut sched, 10).is_err());
    }
}
