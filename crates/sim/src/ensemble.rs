//! The parallel ensemble runner: independent Gillespie trials fanned across
//! scoped worker threads.
//!
//! Convergence measurements (E1, E9, E10) are embarrassingly parallel — every
//! trial is an independent chain — but the seed runner ran them sequentially,
//! cloned the `Crn` per trial, and seeded trial `t` with `seed + t`, so
//! adjacent trials started from adjacent RNG states.  This module fixes all
//! three:
//!
//! * [`SeedStream`] derives per-trial seeds through a SplitMix64 step, so
//!   consecutive trial indices map to statistically independent seeds;
//! * each worker builds **one** [`Gillespie`] (one CRN compilation) and
//!   [`reseed`](Gillespie::reseed)s it per trial;
//! * trials are partitioned into contiguous per-worker ranges, each worker
//!   fills a mergeable [`TrialAccumulator`], and the driver merges them in
//!   trial order.
//!
//! **Determinism contract:** trial `t`'s outcome depends only on
//! `(crn, x, max_steps, seed, t)` — never on the worker that ran it — and the
//! ordered merge reassembles the sequential sample order, so
//! [`Ensemble::run`] returns **bit-identical** results for every worker
//! count, including 1.

use std::num::NonZeroUsize;

use crn_model::{CrnError, FunctionCrn};
use crn_numeric::NVec;

use crate::gillespie::{Gillespie, GillespieOutcome};
use crate::runner::TrialSummary;
use crate::stats::SummaryAccumulator;

/// The SplitMix64 output function: one multiply-xorshift avalanche chain.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Weyl-sequence increment of SplitMix64 (the golden-ratio constant).
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// A stream of decorrelated seeds derived from one base seed, SplitMix64
/// style: index `i` maps to the `i`-th output of a SplitMix64 generator
/// seeded with the base seed.
///
/// The seed runner used to hand trial `t` the raw seed `base + t`; with the
/// stream, adjacent indices differ by a full avalanche pass instead of one
/// low bit, so per-trial generators (whose own seeding is cheap) do not start
/// in correlated states.
///
/// ```
/// use crn_sim::ensemble::SeedStream;
///
/// let stream = SeedStream::new(42);
/// assert_eq!(stream.seed(7), SeedStream::new(42).seed(7));
/// assert_ne!(stream.seed(0), stream.seed(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    base: u64,
}

impl SeedStream {
    /// The stream rooted at `base`.
    #[must_use]
    pub fn new(base: u64) -> Self {
        SeedStream { base }
    }

    /// The seed at `index`: `splitmix64(base + (index + 1) · γ)`.
    #[must_use]
    pub fn seed(&self, index: u64) -> u64 {
        splitmix64(
            self.base
                .wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)),
        )
    }
}

/// Mergeable per-worker statistics of a batch of trials: step and time
/// samples (in trial order), observed outputs, and the silent-trial count.
#[derive(Debug, Clone, Default)]
pub struct TrialAccumulator {
    steps: SummaryAccumulator,
    times: SummaryAccumulator,
    outputs: Vec<u64>,
    silent: u64,
}

impl TrialAccumulator {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        TrialAccumulator::default()
    }

    /// Records one trial's outcome; `output` is the output-species count of
    /// its final configuration.
    pub fn record(&mut self, outcome: &GillespieOutcome, output: u64) {
        self.steps.push(outcome.steps as f64);
        self.times.push(outcome.time);
        self.outputs.push(output);
        if outcome.silent {
            self.silent += 1;
        }
    }

    /// Appends `later`'s trials after this accumulator's own.  The ensemble
    /// driver merges worker accumulators in trial order, which keeps the
    /// combined sample sequence identical to a sequential run's.
    pub fn merge(&mut self, later: TrialAccumulator) {
        self.steps.merge(later.steps);
        self.times.merge(later.times);
        self.outputs.extend(later.outputs);
        self.silent += later.silent;
    }

    /// The number of trials recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether no trial has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Finalizes the batch into a [`TrialSummary`] for input `x`.
    ///
    /// # Panics
    ///
    /// Panics if no trial has been recorded.
    #[must_use]
    pub fn finish(mut self, x: &NVec) -> TrialSummary {
        let trials = self.outputs.len();
        self.outputs.sort_unstable();
        self.outputs.dedup();
        TrialSummary {
            input: x.clone(),
            steps: self.steps.finish(),
            time: self.times.finish(),
            outputs: self.outputs,
            silent_fraction: self.silent as f64 / trials as f64,
        }
    }
}

/// The number of worker threads the ensemble uses by default: one per
/// available core.
#[must_use]
pub fn default_workers() -> usize {
    crn_sync::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The worker count actually used for a run: the requested count, clamped to
/// the available parallelism and the trial count.
///
/// Trials are CPU-bound, so threads beyond the core count only add scheduling
/// overhead — E14 measured ~5% for 4 requested workers on a 1-core box.  The
/// determinism contract makes the clamp invisible in the results: every
/// worker count returns bit-identical summaries.  A result of 1 (always the
/// case when `available_parallelism()` reports 1) makes
/// [`Ensemble::run`] execute the trials inline on the calling thread with no
/// scoped worker spawned at all.
#[must_use]
pub fn effective_workers(requested: usize, parallelism: usize, trials: u64) -> usize {
    requested
        .max(1)
        .min(parallelism.max(1))
        .min(usize::try_from(trials).unwrap_or(usize::MAX))
        .max(1)
}

/// A configured ensemble of independent Gillespie trials of one function CRN.
///
/// ```
/// use crn_model::examples;
/// use crn_numeric::NVec;
/// use crn_sim::ensemble::Ensemble;
///
/// let min = examples::min_crn();
/// let summary = Ensemble::new(&min)
///     .with_workers(2)
///     .run(&NVec::from(vec![20, 35]), 10, 7)
///     .unwrap();
/// assert_eq!(summary.outputs, vec![20]);
/// assert_eq!(summary.silent_fraction, 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ensemble<'a> {
    crn: &'a FunctionCrn,
    max_steps: u64,
    workers: usize,
}

impl<'a> Ensemble<'a> {
    /// An ensemble over `crn` with the default step bound (10⁷) and one
    /// worker per available core.
    #[must_use]
    pub fn new(crn: &'a FunctionCrn) -> Self {
        Ensemble {
            crn,
            max_steps: 10_000_000,
            workers: default_workers(),
        }
    }

    /// Sets the per-trial step bound.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Pins the requested worker-thread count (clamped to at least 1, and at
    /// run time to the available parallelism and the trial count — see
    /// [`effective_workers`]).  The results are identical for every value;
    /// only the wall-clock changes.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Runs `trials` independent simulations of the CRN on `x`, seeding trial
    /// `t` with `SeedStream::new(seed).seed(t)`.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::DimensionMismatch`] if `x` has the wrong arity.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` (an empty batch has no statistics) or a worker
    /// thread panics.
    pub fn run(&self, x: &NVec, trials: u32, seed: u64) -> Result<TrialSummary, CrnError> {
        let _span = crn_obs::span("sim.ensemble");
        let start = self.crn.initial_configuration(x)?;
        let trials = u64::from(trials);
        let stream = SeedStream::new(seed);
        let output = self.crn.output();

        // One worker per contiguous trial range; each worker reuses a single
        // simulator (one compile, one allocation set) across its range.
        // Observability accumulates locally and flushes once per range — the
        // trial loop stays clean of registry traffic, and `Gillespie::run`
        // itself is uninstrumented (a per-run flush would cost a lock per
        // trial, well over the E20 overhead budget).
        let run_range = |lo: u64, hi: u64| -> TrialAccumulator {
            let profiling = crn_obs::enabled();
            let batch_start = profiling.then(std::time::Instant::now);
            let mut trial_steps = crn_obs::LocalHistogram::new();
            let mut batch_steps = 0u64;
            let mut acc = TrialAccumulator::new();
            let mut sim = Gillespie::new(self.crn.crn().clone(), 0);
            for t in lo..hi {
                sim.reseed(stream.seed(t));
                let outcome = sim.run(&start, self.max_steps);
                let out_count = outcome.final_configuration.count(output);
                if profiling {
                    trial_steps.observe(outcome.steps);
                    batch_steps += outcome.steps;
                }
                acc.record(&outcome, out_count);
            }
            if let Some(batch_start) = batch_start {
                crn_obs::add("sim.trials", hi - lo);
                // One firing refreshes the propensity table once; one trial
                // rebuilds it once at its start.
                crn_obs::add("sim.steps", batch_steps);
                crn_obs::add("sim.propensity_refreshes", batch_steps);
                crn_obs::add("sim.propensity_rebuilds", hi - lo);
                crn_obs::observe_many("sim.trial_steps", &trial_steps);
                let nanos = u64::try_from(batch_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                crn_obs::observe("sim.batch_nanos", nanos);
            }
            acc
        };

        let workers = effective_workers(self.workers, default_workers(), trials);
        let merged = if workers <= 1 {
            // Fast path: no scoped thread, no spawn/join overhead — the
            // single worker's range runs inline on the calling thread.
            run_range(0, trials)
        } else {
            // Split [0, trials) into `workers` contiguous chunks, the first
            // `trials % workers` of them one trial longer.
            let base = trials / workers as u64;
            let extra = trials % workers as u64;
            let bounds: Vec<u64> = (0..=workers as u64)
                .map(|w| w * base + w.min(extra))
                .collect();
            let parent = crn_obs::SpanPath::current();
            let accs: Vec<TrialAccumulator> = crn_sync::thread::scope(|scope| {
                let handles: Vec<_> = bounds
                    .windows(2)
                    .map(|range| {
                        let (lo, hi) = (range[0], range[1]);
                        let parent = parent.clone();
                        scope.spawn(move || {
                            let _adopted = parent.adopt();
                            let _span = crn_obs::span("worker");
                            run_range(lo, hi)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("ensemble worker panicked"))
                    .collect()
            });
            let mut merged = TrialAccumulator::new();
            for acc in accs {
                merged.merge(acc);
            }
            merged
        };
        crn_obs::gauge_max("sim.workers", u64::try_from(workers).unwrap_or(u64::MAX));
        Ok(merged.finish(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_model::examples;

    #[test]
    fn seed_stream_is_deterministic_and_spread_out() {
        let stream = SeedStream::new(123);
        assert_eq!(stream.seed(5), SeedStream::new(123).seed(5));
        // Adjacent indices must not give adjacent seeds (the old scheme's
        // failure mode): require many differing bits, not just the low ones.
        for t in 0..64u64 {
            let diff = (stream.seed(t) ^ stream.seed(t + 1)).count_ones();
            assert!(diff >= 8, "seeds for trials {t} and {} too close", t + 1);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let max = examples::max_crn();
        let x = NVec::from(vec![9, 7]);
        let sequential = Ensemble::new(&max).with_workers(1).run(&x, 12, 99).unwrap();
        for workers in [2usize, 3, 5, 12, 64] {
            let parallel = Ensemble::new(&max)
                .with_workers(workers)
                .run(&x, 12, 99)
                .unwrap();
            assert_eq!(parallel, sequential, "workers={workers}");
        }
        assert_eq!(sequential.outputs, vec![9]);
        assert_eq!(sequential.silent_fraction, 1.0);
    }

    #[test]
    fn effective_workers_fast_path_decision() {
        // Requested 1 → inline, regardless of cores.
        assert_eq!(effective_workers(1, 8, 100), 1);
        // One core → inline, regardless of the requested count (the E14
        // single-core overhead case).
        assert_eq!(effective_workers(4, 1, 100), 1);
        // Never more workers than trials.
        assert_eq!(effective_workers(4, 8, 2), 2);
        // Otherwise the request wins, clamped to the core count.
        assert_eq!(effective_workers(3, 8, 100), 3);
        assert_eq!(effective_workers(16, 8, 100), 8);
        // Degenerate inputs stay sane.
        assert_eq!(effective_workers(0, 0, 0), 1);
    }

    #[test]
    fn workers_one_fast_path_matches_spawned_results() {
        // The inline fast path and any spawning configuration must agree
        // bit-for-bit (the contract the clamp relies on).
        let max = examples::max_crn();
        let x = NVec::from(vec![7, 11]);
        let inline = Ensemble::new(&max).with_workers(1).run(&x, 9, 42).unwrap();
        let clamped = Ensemble::new(&max).with_workers(64).run(&x, 9, 42).unwrap();
        assert_eq!(inline, clamped);
        assert_eq!(inline.outputs, vec![11]);
    }

    #[test]
    fn more_workers_than_trials_is_fine() {
        let min = examples::min_crn();
        let x = NVec::from(vec![3, 4]);
        let summary = Ensemble::new(&min).with_workers(16).run(&x, 2, 1).unwrap();
        assert_eq!(summary.steps.count, 2);
        assert_eq!(summary.outputs, vec![3]);
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let min = examples::min_crn();
        assert!(Ensemble::new(&min).run(&NVec::from(vec![1]), 3, 0).is_err());
    }

    #[test]
    fn accumulator_merge_preserves_trial_order() {
        let outcome = |steps: u64, silent: bool| GillespieOutcome {
            final_configuration: crn_model::Configuration::new(),
            steps,
            time: steps as f64 * 0.5,
            silent,
        };
        let mut a = TrialAccumulator::new();
        a.record(&outcome(1, true), 4);
        let mut b = TrialAccumulator::new();
        b.record(&outcome(3, false), 2);
        b.record(&outcome(2, true), 4);
        a.merge(b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        let summary = a.finish(&NVec::from(vec![0]));
        assert_eq!(summary.steps.count, 3);
        assert_eq!(summary.outputs, vec![2, 4]);
        assert!((summary.silent_fraction - 2.0 / 3.0).abs() < 1e-12);
    }
}
