//! The dense simulation kernel: incremental propensity and applicability
//! maintenance over a [`CompiledCrn`].
//!
//! Every simulator in this crate fires one reaction per step, and one firing
//! only changes the counts of the species in that reaction's delta list.  The
//! compiled dependency graph ([`CompiledCrn::dependents`]) names exactly the
//! reactions whose mass-action propensity (or applicability) can have
//! changed, so after a firing the kernel recomputes *those* instead of
//! rescanning every reaction — the difference between O(dependents) and
//! O(reactions · reactants) per step.
//!
//! Incremental maintenance is *exact*, not approximate: a recomputed entry is
//! the same deterministic function of the same counts a full rebuild would
//! evaluate, so the table is bit-identical to a fresh rebuild after any
//! firing sequence (property-tested in `tests/dense_kernel.rs`).

use crn_model::{CompiledCrn, CompiledReaction};

/// The mass-action propensity of `reaction` on a dense count vector: the
/// number of distinct ways to choose its reactant multiset,
/// `∏_s C(count_s, r_s)·r_s!` (i.e. the falling factorial), with unit rate
/// constant.
///
/// The reactant list of a [`CompiledReaction`] preserves the sparse
/// reactant-map iteration order, and the factors are multiplied in the same
/// order as [`crate::scheduler::propensity`], so the two functions agree
/// bit-for-bit — which is what lets the dense Gillespie kernel replay the
/// sparse oracle seed-for-seed.
#[must_use]
pub fn propensity_dense(reaction: &CompiledReaction, counts: &[u64]) -> f64 {
    let mut a = 1.0f64;
    for &(s, r) in reaction.reactants() {
        let count = counts[s];
        if count < r {
            return 0.0;
        }
        for k in 0..r {
            a *= (count - k) as f64;
        }
    }
    a
}

/// A per-reaction propensity table kept current across firings via the
/// compiled dependency graph.
#[derive(Debug, Clone, Default)]
pub struct PropensityTable {
    values: Vec<f64>,
}

impl PropensityTable {
    /// An empty table; call [`rebuild`](Self::rebuild) before use.
    #[must_use]
    pub fn new() -> Self {
        PropensityTable::default()
    }

    /// Recomputes every entry from scratch (run start, or after an arbitrary
    /// state change).
    pub fn rebuild(&mut self, crn: &CompiledCrn, counts: &[u64]) {
        self.values.clear();
        self.values
            .extend(crn.reactions().iter().map(|r| propensity_dense(r, counts)));
    }

    /// Recomputes only the entries that firing `fired` can have changed.
    pub fn refresh_after(&mut self, crn: &CompiledCrn, counts: &[u64], fired: usize) {
        for &j in crn.dependents(fired) {
            self.values[j] = propensity_dense(&crn.reactions()[j], counts);
        }
    }

    /// The per-reaction propensities, in reaction order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The total propensity, summed in reaction order (the same order and
    /// rounding as a full sparse recompute, for seed-for-seed parity).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }
}

/// The set of applicable reaction indices, kept sorted ascending (the order
/// `Crn::applicable_reactions` produced) and maintained incrementally across
/// firings instead of rescanned.
#[derive(Debug, Clone, Default)]
pub struct ApplicableSet {
    /// Applicable reaction indices, ascending.
    indices: Vec<usize>,
    /// Membership mask, one flag per reaction.
    mask: Vec<bool>,
}

impl ApplicableSet {
    /// An empty set; call [`rebuild`](Self::rebuild) before use.
    #[must_use]
    pub fn new() -> Self {
        ApplicableSet::default()
    }

    /// Recomputes the set from scratch.
    pub fn rebuild(&mut self, crn: &CompiledCrn, counts: &[u64]) {
        self.indices.clear();
        self.mask.clear();
        self.mask.resize(crn.reaction_count(), false);
        for (i, reaction) in crn.reactions().iter().enumerate() {
            if reaction.applicable(counts) {
                self.indices.push(i);
                self.mask[i] = true;
            }
        }
    }

    /// Re-examines only the reactions that firing `fired` can have flipped,
    /// splicing them in or out of the sorted index list.
    pub fn refresh_after(&mut self, crn: &CompiledCrn, counts: &[u64], fired: usize) {
        for &j in crn.dependents(fired) {
            let now = crn.reactions()[j].applicable(counts);
            if now == self.mask[j] {
                continue;
            }
            self.mask[j] = now;
            match self.indices.binary_search(&j) {
                Ok(pos) => {
                    debug_assert!(!now);
                    self.indices.remove(pos);
                }
                Err(pos) => {
                    debug_assert!(now);
                    self.indices.insert(pos, j);
                }
            }
        }
    }

    /// The applicable reaction indices, ascending.
    #[must_use]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Whether no reaction is applicable (the CRN is silent).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_model::{examples, Configuration, DenseState};

    #[test]
    fn dense_propensity_matches_sparse() {
        let min = examples::min_crn();
        let crn = min.crn();
        let compiled = CompiledCrn::compile(crn);
        let x1 = crn.species_named("X1").unwrap();
        let x2 = crn.species_named("X2").unwrap();
        let config = Configuration::from_counts(vec![(x1, 3), (x2, 2)]);
        let state = DenseState::from_configuration(&config, compiled.stride());
        assert_eq!(
            propensity_dense(&compiled.reactions()[0], state.counts()),
            crate::scheduler::propensity(crn, &config, 0)
        );
        let empty = DenseState::zero(compiled.stride());
        assert_eq!(
            propensity_dense(&compiled.reactions()[0], empty.counts()),
            0.0
        );
    }

    #[test]
    fn incremental_table_tracks_firings() {
        let max = examples::max_crn();
        let compiled = CompiledCrn::compile(max.crn());
        let start = max
            .initial_configuration(&crn_numeric::NVec::from(vec![2, 3]))
            .unwrap();
        let mut state = DenseState::from_configuration(&start, compiled.stride());
        let mut table = PropensityTable::new();
        table.rebuild(&compiled, state.counts());
        // Fire X1 -> Z1 + Y and verify against a fresh rebuild.
        state.apply(&compiled.reactions()[0]);
        table.refresh_after(&compiled, state.counts(), 0);
        let mut fresh = PropensityTable::new();
        fresh.rebuild(&compiled, state.counts());
        assert_eq!(table.values(), fresh.values());
    }

    #[test]
    fn applicable_set_tracks_firings_in_ascending_order() {
        let max = examples::max_crn();
        let compiled = CompiledCrn::compile(max.crn());
        let start = max
            .initial_configuration(&crn_numeric::NVec::from(vec![1, 1]))
            .unwrap();
        let mut state = DenseState::from_configuration(&start, compiled.stride());
        let mut set = ApplicableSet::new();
        set.rebuild(&compiled, state.counts());
        assert_eq!(set.indices(), &[0, 1]);
        // Fire both input reactions: Z1 + Z2 -> K and K + Y -> 0 wake up.
        for fired in [0usize, 1] {
            state.apply(&compiled.reactions()[fired]);
            set.refresh_after(&compiled, state.counts(), fired);
        }
        assert_eq!(set.indices(), &[2]);
        state.apply(&compiled.reactions()[2]);
        set.refresh_after(&compiled, state.counts(), 2);
        assert_eq!(set.indices(), &[3]);
    }
}
