//! Stochastic simulation of discrete chemical reaction networks.
//!
//! The paper's model (Section 2.2) is a continuous-time Markov process; its
//! correctness notion ("stable computation") is rate-independent, but the
//! simulator lets us *measure* the constructions: convergence time versus
//! input size (experiment E9), composition overhead (E10), and the behaviour
//! of the Figure 1 examples (E1).  The crate provides:
//!
//! * exact Gillespie stochastic simulation ([`gillespie`]) on the dense
//!   compiled kernel, with mass-action propensities maintained
//!   **incrementally** through the reaction dependency graph of
//!   [`crn_model::CompiledCrn`] (the sparse seed implementation survives as
//!   [`SparseGillespie`], the differential oracle),
//! * the shared dense-kernel pieces ([`kernel`]): the incremental propensity
//!   table and the incrementally-maintained applicable set,
//! * discrete schedulers ([`scheduler`]) — uniform, propensity-weighted and
//!   adversarial priority schedulers — for exploring reachability-style
//!   executions without a notion of real time,
//! * convergence runs ([`convergence`]) that execute until the CRN is silent
//!   or a step bound is hit, with a reusable compiled kernel for batches,
//! * a parallel ensemble runner ([`ensemble`]) fanning independent trials
//!   across scoped threads with decorrelated seed streams and worker-count
//!   independent (bit-identical) results, and
//! * a batch experiment runner ([`runner`]) with summary statistics.
//!
//! ```
//! use crn_model::examples;
//! use crn_numeric::NVec;
//! use crn_sim::convergence::run_to_silence;
//! use crn_sim::scheduler::UniformScheduler;
//!
//! let min = examples::min_crn();
//! let mut scheduler = UniformScheduler::seeded(7);
//! let report = run_to_silence(&min, &NVec::from(vec![30, 40]), &mut scheduler, 100_000).unwrap();
//! assert_eq!(report.output, 30);
//! assert!(report.silent);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod ensemble;
pub mod gillespie;
pub mod kernel;
pub mod runner;
pub mod scheduler;
pub mod stats;

pub use convergence::{run_to_silence, ConvergenceKernel, ConvergenceReport};
pub use ensemble::{Ensemble, SeedStream, TrialAccumulator};
pub use gillespie::{Gillespie, GillespieOutcome, SparseGillespie};
pub use kernel::{ApplicableSet, PropensityTable};
pub use runner::{
    convergence_series, measure_convergence, measure_convergence_with_workers, ConvergencePoint,
    TrialSummary,
};
pub use scheduler::{PriorityScheduler, PropensityScheduler, Scheduler, UniformScheduler};
pub use stats::{Summary, SummaryAccumulator};
