//! Discrete reaction schedulers.
//!
//! A scheduler repeatedly picks an applicable reaction to fire.  The stable
//! computation semantics quantifies over *all* schedules, so besides the
//! "natural" stochastic schedulers we provide an adversarial priority
//! scheduler used in the composition experiments (E10) to starve a downstream
//! module, mirroring the adversarial executions discussed in Section 1.2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crn_model::{Configuration, Crn};

/// Chooses which applicable reaction fires next.
pub trait Scheduler {
    /// Picks one of `applicable` (indices into `crn.reactions()`), or `None`
    /// to halt even though reactions remain applicable.
    fn select(&mut self, crn: &Crn, config: &Configuration, applicable: &[usize]) -> Option<usize>;
}

/// Picks an applicable reaction uniformly at random.
///
/// Uniform choice over applicable reactions is a *fair* scheduler in the sense
/// of footnote 2 of the paper: every configuration that stays reachable is
/// eventually reached with probability 1, so runs driven by this scheduler
/// converge to the stably-computed output.
#[derive(Debug, Clone)]
pub struct UniformScheduler {
    rng: StdRng,
}

impl UniformScheduler {
    /// A scheduler with the given RNG seed (deterministic runs).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        UniformScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for UniformScheduler {
    fn select(
        &mut self,
        _crn: &Crn,
        _config: &Configuration,
        applicable: &[usize],
    ) -> Option<usize> {
        if applicable.is_empty() {
            return None;
        }
        Some(applicable[self.rng.gen_range(0..applicable.len())])
    }
}

/// Picks an applicable reaction with probability proportional to its
/// mass-action propensity (the jump chain of the Gillespie process).
#[derive(Debug, Clone)]
pub struct PropensityScheduler {
    rng: StdRng,
}

impl PropensityScheduler {
    /// A scheduler with the given RNG seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        PropensityScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

/// The mass-action propensity of reaction `index` in `config`: the number of
/// distinct ways to choose its reactant multiset, `∏_s C(count_s, r_s)·r_s!`
/// (i.e. the falling factorial), with unit rate constant.
#[must_use]
pub fn propensity(crn: &Crn, config: &Configuration, index: usize) -> f64 {
    let reaction = &crn.reactions()[index];
    let mut a = 1.0f64;
    for (&s, &r) in reaction.reactants() {
        let count = config.count(s);
        if count < r {
            return 0.0;
        }
        for k in 0..r {
            a *= (count - k) as f64;
        }
    }
    a
}

impl Scheduler for PropensityScheduler {
    fn select(&mut self, crn: &Crn, config: &Configuration, applicable: &[usize]) -> Option<usize> {
        if applicable.is_empty() {
            return None;
        }
        let weights: Vec<f64> = applicable
            .iter()
            .map(|&i| propensity(crn, config, i))
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.rng.gen::<f64>() * total;
        for (k, w) in weights.iter().enumerate() {
            if target < *w {
                return Some(applicable[k]);
            }
            target -= w;
        }
        Some(*applicable.last().expect("nonempty"))
    }
}

/// Always fires the applicable reaction that appears earliest in a fixed
/// priority order.
///
/// With the priority order chosen adversarially this scheduler exhibits the
/// worst-case executions discussed in Section 1.2 (e.g. exhausting the inputs
/// of the max CRN before its clean-up reactions run, or starving a downstream
/// module of the shared species).  It is *not* fair, so it may converge to a
/// non-stable configuration; experiments use it to demonstrate overshoot.
#[derive(Debug, Clone)]
pub struct PriorityScheduler {
    priority: Vec<usize>,
}

impl PriorityScheduler {
    /// A scheduler firing reactions in the given preference order (indices
    /// into `crn.reactions()`; reactions not listed are never chosen unless
    /// nothing listed is applicable, in which case the lowest index wins).
    #[must_use]
    pub fn new(priority: Vec<usize>) -> Self {
        PriorityScheduler { priority }
    }

    /// The scheduler that always fires the lowest-indexed applicable reaction.
    #[must_use]
    pub fn in_order(reaction_count: usize) -> Self {
        PriorityScheduler {
            priority: (0..reaction_count).collect(),
        }
    }
}

impl Scheduler for PriorityScheduler {
    fn select(
        &mut self,
        _crn: &Crn,
        _config: &Configuration,
        applicable: &[usize],
    ) -> Option<usize> {
        if applicable.is_empty() {
            return None;
        }
        for &p in &self.priority {
            if applicable.contains(&p) {
                return Some(p);
            }
        }
        applicable.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_model::examples;

    #[test]
    fn propensity_counts_ordered_tuples() {
        let min = examples::min_crn();
        let crn = min.crn();
        let x1 = crn.species_named("X1").unwrap();
        let x2 = crn.species_named("X2").unwrap();
        let config = Configuration::from_counts(vec![(x1, 3), (x2, 2)]);
        // X1 + X2 -> Y has propensity 3 * 2 = 6.
        assert_eq!(propensity(crn, &config, 0), 6.0);
        let empty = Configuration::new();
        assert_eq!(propensity(crn, &empty, 0), 0.0);
    }

    #[test]
    fn propensity_uses_falling_factorials_for_homodimers() {
        let mut crn = crn_model::Crn::new();
        crn.parse_reaction("2Z -> Y").unwrap();
        let z = crn.species_named("Z").unwrap();
        let config = Configuration::from_counts(vec![(z, 4)]);
        // 4 * 3 = 12 ordered pairs.
        assert_eq!(propensity(&crn, &config, 0), 12.0);
    }

    #[test]
    fn uniform_scheduler_is_deterministic_given_seed() {
        let max = examples::max_crn();
        let crn = max.crn();
        let x1 = crn.species_named("X1").unwrap();
        let x2 = crn.species_named("X2").unwrap();
        let config = Configuration::from_counts(vec![(x1, 2), (x2, 2)]);
        let applicable = crn.applicable_reactions(&config);
        let pick = |seed| {
            let mut s = UniformScheduler::seeded(seed);
            (0..10)
                .map(|_| s.select(crn, &config, &applicable).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(pick(1), pick(1));
    }

    #[test]
    fn schedulers_return_none_when_nothing_applicable() {
        let min = examples::min_crn();
        let empty = Configuration::new();
        assert_eq!(
            UniformScheduler::seeded(0).select(min.crn(), &empty, &[]),
            None
        );
        assert_eq!(
            PropensityScheduler::seeded(0).select(min.crn(), &empty, &[]),
            None
        );
        assert_eq!(
            PriorityScheduler::in_order(1).select(min.crn(), &empty, &[]),
            None
        );
    }

    #[test]
    fn priority_scheduler_prefers_listed_reactions() {
        let max = examples::max_crn();
        let crn = max.crn();
        let x1 = crn.species_named("X1").unwrap();
        let x2 = crn.species_named("X2").unwrap();
        let config = Configuration::from_counts(vec![(x1, 1), (x2, 1)]);
        let applicable = crn.applicable_reactions(&config);
        // Prefer reaction 1 (X2 -> Z2 + Y) over reaction 0.
        let mut sched = PriorityScheduler::new(vec![1, 0]);
        assert_eq!(sched.select(crn, &config, &applicable), Some(1));
    }
}
