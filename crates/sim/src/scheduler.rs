//! Discrete reaction schedulers.
//!
//! A scheduler repeatedly picks an applicable reaction to fire.  The stable
//! computation semantics quantifies over *all* schedules, so besides the
//! "natural" stochastic schedulers we provide an adversarial priority
//! scheduler used in the composition experiments (E10) to starve a downstream
//! module, mirroring the adversarial executions discussed in Section 1.2.
//!
//! Schedulers operate on the dense kernel: they see the [`CompiledCrn`], the
//! current [`DenseState`] and the incrementally-maintained applicable set
//! (ascending reaction indices, exactly the order the sparse
//! `Crn::applicable_reactions` scan used to produce, so seeded runs replay
//! identically).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crn_model::{CompiledCrn, Configuration, Crn, DenseState};

use crate::kernel::propensity_dense;

/// Chooses which applicable reaction fires next.
pub trait Scheduler {
    /// Picks one of `applicable` (ascending indices into `crn.reactions()`),
    /// or `None` to halt even though reactions remain applicable.
    fn select(
        &mut self,
        crn: &CompiledCrn,
        state: &DenseState,
        applicable: &[usize],
    ) -> Option<usize>;
}

/// Picks an applicable reaction uniformly at random.
///
/// Uniform choice over applicable reactions is a *fair* scheduler in the sense
/// of footnote 2 of the paper: every configuration that stays reachable is
/// eventually reached with probability 1, so runs driven by this scheduler
/// converge to the stably-computed output.
#[derive(Debug, Clone)]
pub struct UniformScheduler {
    rng: StdRng,
}

impl UniformScheduler {
    /// A scheduler with the given RNG seed (deterministic runs).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        UniformScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for UniformScheduler {
    fn select(
        &mut self,
        _crn: &CompiledCrn,
        _state: &DenseState,
        applicable: &[usize],
    ) -> Option<usize> {
        if applicable.is_empty() {
            return None;
        }
        Some(applicable[self.rng.gen_range(0..applicable.len())])
    }
}

/// Picks an applicable reaction with probability proportional to its
/// mass-action propensity (the jump chain of the Gillespie process).
#[derive(Debug, Clone)]
pub struct PropensityScheduler {
    rng: StdRng,
    /// Per-call weight buffer, reused so selection never allocates.
    weights: Vec<f64>,
}

impl PropensityScheduler {
    /// A scheduler with the given RNG seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        PropensityScheduler {
            rng: StdRng::seed_from_u64(seed),
            weights: Vec::new(),
        }
    }
}

/// The mass-action propensity of reaction `index` in a sparse `config`: the
/// number of distinct ways to choose its reactant multiset,
/// `∏_s C(count_s, r_s)·r_s!` (i.e. the falling factorial), with unit rate
/// constant.
///
/// This is the sparse reference implementation, retained for the differential
/// oracle and for tests; the hot path uses
/// [`propensity_dense`], which agrees with
/// it bit-for-bit.
#[must_use]
pub fn propensity(crn: &Crn, config: &Configuration, index: usize) -> f64 {
    let reaction = &crn.reactions()[index];
    let mut a = 1.0f64;
    for (&s, &r) in reaction.reactants() {
        let count = config.count(s);
        if count < r {
            return 0.0;
        }
        for k in 0..r {
            a *= (count - k) as f64;
        }
    }
    a
}

impl Scheduler for PropensityScheduler {
    fn select(
        &mut self,
        crn: &CompiledCrn,
        state: &DenseState,
        applicable: &[usize],
    ) -> Option<usize> {
        if applicable.is_empty() {
            return None;
        }
        self.weights.clear();
        self.weights.extend(
            applicable
                .iter()
                .map(|&i| propensity_dense(&crn.reactions()[i], state.counts())),
        );
        let total: f64 = self.weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.rng.gen::<f64>() * total;
        for (k, w) in self.weights.iter().enumerate() {
            if target < *w {
                return Some(applicable[k]);
            }
            target -= w;
        }
        Some(*applicable.last().expect("nonempty"))
    }
}

/// Always fires the applicable reaction that appears earliest in a fixed
/// priority order.
///
/// With the priority order chosen adversarially this scheduler exhibits the
/// worst-case executions discussed in Section 1.2 (e.g. exhausting the inputs
/// of the max CRN before its clean-up reactions run, or starving a downstream
/// module of the shared species).  It is *not* fair, so it may converge to a
/// non-stable configuration; experiments use it to demonstrate overshoot.
///
/// Selection uses a precomputed rank table (reaction index → position in the
/// priority list), so each pick is one O(applicable) scan instead of the
/// O(priority · applicable) `contains` scans of the naive formulation.  The
/// table covers only indices that actually occur in an applicable set (i.e.
/// real reaction indices, grown lazily), so priority entries pointing at
/// nonexistent reactions stay harmless never-matching entries instead of
/// sizing an allocation.
#[derive(Debug, Clone)]
pub struct PriorityScheduler {
    /// The preference order as given.
    priority: Vec<usize>,
    /// `rank[r]` is the position of reaction `r` in the priority list (first
    /// occurrence wins); unlisted reactions rank `usize::MAX`.  Grown on
    /// demand to cover the applicable indices seen, never past them.
    rank: Vec<usize>,
}

impl PriorityScheduler {
    /// A scheduler firing reactions in the given preference order (indices
    /// into `crn.reactions()`; reactions not listed are never chosen unless
    /// nothing listed is applicable, in which case the lowest index wins).
    #[must_use]
    pub fn new(priority: Vec<usize>) -> Self {
        PriorityScheduler {
            priority,
            rank: Vec::new(),
        }
    }

    /// The scheduler that always fires the lowest-indexed applicable reaction.
    #[must_use]
    pub fn in_order(reaction_count: usize) -> Self {
        PriorityScheduler::new((0..reaction_count).collect())
    }

    /// Grows the rank table to cover indices `< needed` (one pass over the
    /// priority list per growth, so the total build cost stays O(priority)
    /// amortized over a run).
    fn ensure_table(&mut self, needed: usize) {
        if self.rank.len() >= needed {
            return;
        }
        let old = self.rank.len();
        self.rank.resize(needed, usize::MAX);
        for (position, &p) in self.priority.iter().enumerate() {
            if (old..needed).contains(&p) && self.rank[p] == usize::MAX {
                self.rank[p] = position;
            }
        }
    }
}

impl Scheduler for PriorityScheduler {
    fn select(
        &mut self,
        _crn: &CompiledCrn,
        _state: &DenseState,
        applicable: &[usize],
    ) -> Option<usize> {
        // `applicable` is ascending, so its last entry bounds the table.
        if let Some(&max_index) = applicable.last() {
            self.ensure_table(max_index + 1);
        }
        // One pass over the applicable set: the first reaction attaining the
        // minimal rank wins, so listed reactions beat unlisted ones and
        // all-unlisted falls back to the lowest applicable index.
        let mut best: Option<(usize, usize)> = None;
        for &r in applicable {
            let rank = self.rank[r];
            let better = match best {
                None => true,
                Some((best_rank, _)) => rank < best_rank,
            };
            if better {
                best = Some((rank, r));
            }
        }
        best.map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_model::examples;

    /// Compiles a `FunctionCrn`'s CRN and lowers a configuration, the setup
    /// every scheduler test needs.
    fn dense(
        crn: &Crn,
        counts: Vec<(crn_model::Species, u64)>,
    ) -> (CompiledCrn, DenseState, Vec<usize>) {
        let compiled = CompiledCrn::compile(crn);
        let config = Configuration::from_counts(counts);
        let state = DenseState::from_configuration(&config, compiled.stride());
        let applicable: Vec<usize> = compiled
            .reactions()
            .iter()
            .enumerate()
            .filter(|(_, r)| r.applicable(state.counts()))
            .map(|(i, _)| i)
            .collect();
        (compiled, state, applicable)
    }

    #[test]
    fn propensity_counts_ordered_tuples() {
        let min = examples::min_crn();
        let crn = min.crn();
        let x1 = crn.species_named("X1").unwrap();
        let x2 = crn.species_named("X2").unwrap();
        let config = Configuration::from_counts(vec![(x1, 3), (x2, 2)]);
        // X1 + X2 -> Y has propensity 3 * 2 = 6.
        assert_eq!(propensity(crn, &config, 0), 6.0);
        let empty = Configuration::new();
        assert_eq!(propensity(crn, &empty, 0), 0.0);
    }

    #[test]
    fn propensity_uses_falling_factorials_for_homodimers() {
        let mut crn = crn_model::Crn::new();
        crn.parse_reaction("2Z -> Y").unwrap();
        let z = crn.species_named("Z").unwrap();
        let config = Configuration::from_counts(vec![(z, 4)]);
        // 4 * 3 = 12 ordered pairs.
        assert_eq!(propensity(&crn, &config, 0), 12.0);
        let compiled = CompiledCrn::compile(&crn);
        let state = DenseState::from_configuration(&config, compiled.stride());
        assert_eq!(
            propensity_dense(&compiled.reactions()[0], state.counts()),
            12.0
        );
    }

    #[test]
    fn uniform_scheduler_is_deterministic_given_seed() {
        let max = examples::max_crn();
        let crn = max.crn();
        let x1 = crn.species_named("X1").unwrap();
        let x2 = crn.species_named("X2").unwrap();
        let (compiled, state, applicable) = dense(crn, vec![(x1, 2), (x2, 2)]);
        let pick = |seed| {
            let mut s = UniformScheduler::seeded(seed);
            (0..10)
                .map(|_| s.select(&compiled, &state, &applicable).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(pick(1), pick(1));
    }

    #[test]
    fn schedulers_return_none_when_nothing_applicable() {
        let min = examples::min_crn();
        let (compiled, state, _) = dense(min.crn(), vec![]);
        assert_eq!(
            UniformScheduler::seeded(0).select(&compiled, &state, &[]),
            None
        );
        assert_eq!(
            PropensityScheduler::seeded(0).select(&compiled, &state, &[]),
            None
        );
        assert_eq!(
            PriorityScheduler::in_order(1).select(&compiled, &state, &[]),
            None
        );
    }

    #[test]
    fn priority_scheduler_prefers_listed_reactions() {
        let max = examples::max_crn();
        let crn = max.crn();
        let x1 = crn.species_named("X1").unwrap();
        let x2 = crn.species_named("X2").unwrap();
        let (compiled, state, applicable) = dense(crn, vec![(x1, 1), (x2, 1)]);
        // Prefer reaction 1 (X2 -> Z2 + Y) over reaction 0.
        let mut sched = PriorityScheduler::new(vec![1, 0]);
        assert_eq!(sched.select(&compiled, &state, &applicable), Some(1));
    }

    #[test]
    fn priority_scheduler_tolerates_huge_priority_indices() {
        // The seed scanned the priority list, so entries pointing at
        // nonexistent reactions were harmless; the rank table must keep that
        // property instead of sizing an allocation by the largest index.
        let max = examples::max_crn();
        let crn = max.crn();
        let x1 = crn.species_named("X1").unwrap();
        let x2 = crn.species_named("X2").unwrap();
        let (compiled, state, applicable) = dense(crn, vec![(x1, 1), (x2, 1)]);
        let mut sched = PriorityScheduler::new(vec![usize::MAX, 1_000_000_000_000, 1]);
        assert_eq!(sched.select(&compiled, &state, &applicable), Some(1));
    }

    #[test]
    fn priority_scheduler_falls_back_to_lowest_unlisted() {
        let max = examples::max_crn();
        let crn = max.crn();
        let x1 = crn.species_named("X1").unwrap();
        let x2 = crn.species_named("X2").unwrap();
        let (compiled, state, applicable) = dense(crn, vec![(x1, 1), (x2, 1)]);
        assert_eq!(applicable, vec![0, 1]);
        // Only reaction 3 is listed and it is inapplicable: the rank table
        // must fall back to the lowest applicable index, like the seed's
        // `applicable.first()` did.
        let mut sched = PriorityScheduler::new(vec![3]);
        assert_eq!(sched.select(&compiled, &state, &applicable), Some(0));
        // Duplicate priorities keep first-occurrence semantics.
        let mut sched = PriorityScheduler::new(vec![1, 1, 0]);
        assert_eq!(sched.select(&compiled, &state, &applicable), Some(1));
    }
}
