//! Differential property tests for the dense simulation kernel.
//!
//! The dense Gillespie kernel must be a *drop-in* replacement for the sparse
//! seed implementation: identical seed, identical trajectory.  These tests
//! check that seed-for-seed on random CRNs, and check the incremental
//! propensity-table / applicable-set maintenance against full recomputation
//! after random firing sequences.

use proptest::prelude::*;

use crn_model::{
    conservation_basis, CompiledCrn, Configuration, Crn, DenseState, Reaction, Species,
    Stoichiometry,
};
use crn_sim::gillespie::{Gillespie, SparseGillespie};
use crn_sim::kernel::{propensity_dense, ApplicableSet, PropensityTable};
use crn_sim::scheduler::propensity;

/// Builds a small arbitrary CRN over species `{X, Y, Z}` from sampled
/// stoichiometries (each row: three reactant counts, three product counts).
fn random_crn(stoich: &[Vec<u64>]) -> Crn {
    let mut crn = Crn::new();
    let x = crn.add_species("X");
    let y = crn.add_species("Y");
    let z = crn.add_species("Z");
    let species = [x, y, z];
    for row in stoich {
        let reactants: Vec<(Species, u64)> = species
            .iter()
            .zip(&row[0..3])
            .map(|(&s, &c)| (s, c))
            .collect();
        let products: Vec<(Species, u64)> = species
            .iter()
            .zip(&row[3..6])
            .map(|(&s, &c)| (s, c))
            .collect();
        crn.add_reaction(Reaction::new(reactants, products));
    }
    crn
}

/// The start configuration `{x X, y Y, z Z}` for a CRN from [`random_crn`].
fn start_config(crn: &Crn, counts: (u64, u64, u64)) -> Configuration {
    Configuration::from_counts(vec![
        (crn.species_named("X").unwrap(), counts.0),
        (crn.species_named("Y").unwrap(), counts.1),
        (crn.species_named("Z").unwrap(), counts.2),
    ])
}

/// A proptest strategy for small stoichiometry matrices: 1–4 reactions over
/// 3 species with coefficients in `0..3`.
fn stoich_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(proptest::collection::vec(0u64..3, 6), 1..5)
}

proptest! {
    /// Tentpole differential check: the dense Gillespie kernel and the sparse
    /// seed oracle produce **identical** trajectories for the same seed —
    /// same step count, same final configuration, same silence flag (and, as
    /// the propensity arithmetic matches bit-for-bit, the same clock).
    #[test]
    fn dense_gillespie_matches_sparse_oracle_seed_for_seed(
        stoich in stoich_strategy(),
        cx in 0u64..8,
        cy in 0u64..8,
        cz in 0u64..8,
        seed in 0u64..64,
    ) {
        let crn = random_crn(&stoich);
        let start = start_config(&crn, (cx, cy, cz));
        let dense = Gillespie::new(crn.clone(), seed).run(&start, 300);
        let sparse = SparseGillespie::new(crn, seed).run(&start, 300);
        prop_assert_eq!(&dense.final_configuration, &sparse.final_configuration);
        prop_assert_eq!(dense.steps, sparse.steps);
        prop_assert_eq!(dense.silent, sparse.silent);
        prop_assert_eq!(dense.time.to_bits(), sparse.time.to_bits());
    }

    /// The incrementally-maintained propensity table is bit-identical to a
    /// full recompute after any firing sequence, and each entry matches the
    /// sparse propensity of the corresponding sparse configuration.
    #[test]
    fn incremental_propensities_match_full_recompute(
        stoich in stoich_strategy(),
        cx in 0u64..8,
        cy in 0u64..8,
        cz in 0u64..8,
        picks in proptest::collection::vec(0usize..16, 0..40),
    ) {
        let crn = random_crn(&stoich);
        let compiled = CompiledCrn::compile(&crn);
        let start = start_config(&crn, (cx, cy, cz));
        let mut state = DenseState::from_configuration(&start, compiled.stride());
        let mut table = PropensityTable::new();
        table.rebuild(&compiled, state.counts());
        for pick in picks {
            let applicable: Vec<usize> = (0..compiled.reaction_count())
                .filter(|&i| compiled.reactions()[i].applicable(state.counts()))
                .collect();
            if applicable.is_empty() {
                break;
            }
            let fired = applicable[pick % applicable.len()];
            state.apply(&compiled.reactions()[fired]);
            table.refresh_after(&compiled, state.counts(), fired);

            let mut fresh = PropensityTable::new();
            fresh.rebuild(&compiled, state.counts());
            prop_assert_eq!(table.values(), fresh.values());
            // And both agree with the sparse reference on the sparse view.
            let sparse_view = state.to_configuration();
            for i in 0..compiled.reaction_count() {
                prop_assert_eq!(
                    table.values()[i].to_bits(),
                    propensity(&crn, &sparse_view, i).to_bits(),
                    "reaction {}", i
                );
            }
        }
    }

    /// The incrementally-maintained applicable set equals an ascending
    /// rescan after any firing sequence.
    #[test]
    fn incremental_applicable_set_matches_rescan(
        stoich in stoich_strategy(),
        cx in 0u64..8,
        cy in 0u64..8,
        cz in 0u64..8,
        picks in proptest::collection::vec(0usize..16, 0..40),
    ) {
        let crn = random_crn(&stoich);
        let compiled = CompiledCrn::compile(&crn);
        let start = start_config(&crn, (cx, cy, cz));
        let mut state = DenseState::from_configuration(&start, compiled.stride());
        let mut set = ApplicableSet::new();
        set.rebuild(&compiled, state.counts());
        for pick in picks {
            if set.is_empty() {
                break;
            }
            let fired = set.indices()[pick % set.indices().len()];
            state.apply(&compiled.reactions()[fired]);
            set.refresh_after(&compiled, state.counts(), fired);

            let rescan: Vec<usize> = (0..compiled.reaction_count())
                .filter(|&i| compiled.reactions()[i].applicable(state.counts()))
                .collect();
            prop_assert_eq!(set.indices(), rescan.as_slice());
            // The rescan order is the sparse `applicable_reactions` order.
            prop_assert_eq!(rescan, crn.applicable_reactions(&state.to_configuration()));
        }
    }

    /// Every conservation law of the stoichiometry matrix is *exactly*
    /// preserved along stochastic trajectories: the dot product of each law
    /// with the state is constant across a 10⁴-step Gillespie run, checked
    /// at every prefix depth (reseeding replays the identical trajectory, so
    /// shorter runs are intermediate states of the longest one).
    #[test]
    fn conservation_laws_hold_along_gillespie_trajectories(
        stoich in stoich_strategy(),
        cx in 0u64..20,
        cy in 0u64..20,
        cz in 0u64..20,
        seed in 0u64..64,
    ) {
        let crn = random_crn(&stoich);
        let compiled = CompiledCrn::compile(&crn);
        let laws = conservation_basis(&Stoichiometry::of(&compiled));
        let start = start_config(&crn, (cx, cy, cz));
        let dense_start = DenseState::from_configuration(&start, compiled.stride());
        let initial: Vec<i128> = laws.iter().map(|law| law.weigh(dense_start.counts())).collect();
        let mut sim = Gillespie::new(crn, seed);
        for depth in [1u64, 10, 100, 1_000, 10_000] {
            sim.reseed(seed);
            let out = sim.run(&start, depth);
            let state = DenseState::from_configuration(&out.final_configuration, compiled.stride());
            for (law, &expected) in laws.iter().zip(&initial) {
                prop_assert_eq!(
                    law.weigh(state.counts()),
                    expected,
                    "law {:?} drifted after {} steps",
                    law.weights(),
                    out.steps
                );
            }
            if out.silent {
                break;
            }
        }
    }

    /// Dense propensities agree bit-for-bit with the sparse reference on
    /// arbitrary configurations (not just along trajectories).
    #[test]
    fn dense_propensity_matches_sparse_everywhere(
        stoich in stoich_strategy(),
        cx in 0u64..12,
        cy in 0u64..12,
        cz in 0u64..12,
    ) {
        let crn = random_crn(&stoich);
        let compiled = CompiledCrn::compile(&crn);
        let config = start_config(&crn, (cx, cy, cz));
        let state = DenseState::from_configuration(&config, compiled.stride());
        for i in 0..compiled.reaction_count() {
            prop_assert_eq!(
                propensity_dense(&compiled.reactions()[i], state.counts()).to_bits(),
                propensity(&crn, &config, i).to_bits(),
                "reaction {}", i
            );
        }
    }
}
