//! Atomics-hygiene lint (satellite of E21): every crate in the workspace
//! must reach atomics and threads through the `crn_sync` facade, never
//! through `std`/`core` directly — otherwise the model checker silently
//! loses sight of those operations and its exhaustive guarantees are void.
//!
//! This test walks the workspace's Rust sources (all `crates/*`, the
//! umbrella `src/`, plus root `tests/` and `examples/`), strips comments,
//! and fails listing `path:line` for every occurrence of a denied pattern
//! outside the allowlist.  It runs in *normal* builds, so plain
//! `cargo test` enforces the facade boundary; no nightly or external
//! tooling involved.
//!
//! Allowlist: `crates/sync` itself (the facade's one legitimate home) and
//! the vendored `vendor/` tree (third-party code, not ours to lint).

use std::fs;
use std::path::{Path, PathBuf};

/// Substrings that must not appear in (comment-stripped) source outside the
/// facade.  `use std::sync::{Arc, Mutex}` style imports are fine — only the
/// atomics submodule and the thread module are facade-owned, because those
/// are the operations the model checker must interpose on.
const DENIED: &[&str] = &["std::sync::atomic", "core::sync::atomic", "std::thread"];

/// Path prefixes (relative to the workspace root, `/`-separated) exempt
/// from the lint.
const ALLOWED_PREFIXES: &[&str] = &["crates/sync/", "vendor/", "target/"];

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/sync
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/sync sits two levels below the workspace root")
        .to_path_buf()
}

/// Strips `/* ... */` block comments (non-nested, as in Rust without
/// doc-block nesting games) and `// ...` line tails.  Deliberately naive
/// about `//` inside string literals: that can only *hide* text after a
/// literal containing `//`, and none of the denied patterns belongs in a
/// string literal anyway.  Newlines are preserved so reported line numbers
/// match the original file.
fn strip_comments(source: &str) -> String {
    let mut out = String::with_capacity(source.len());
    let mut rest = source;
    while let Some(open) = rest.find("/*") {
        out.push_str(&rest[..open]);
        match rest[open + 2..].find("*/") {
            Some(close) => {
                // Keep the comment's newlines for stable line numbers.
                let body = &rest[open..open + 2 + close + 2];
                out.extend(body.chars().filter(|&c| c == '\n'));
                rest = &rest[open + 2 + close + 2..];
            }
            None => {
                out.extend(rest[open..].chars().filter(|&c| c == '\n'));
                rest = "";
            }
        }
    }
    out.push_str(rest);
    out.lines()
        .map(|line| line.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

fn scan_file(root: &Path, path: &Path, violations: &mut Vec<String>) {
    let source =
        fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    for (idx, line) in strip_comments(&source).lines().enumerate() {
        for pattern in DENIED {
            if line.contains(pattern) {
                violations.push(format!("{rel}:{}: `{pattern}`", idx + 1));
            }
        }
    }
}

fn scan_dir(root: &Path, dir: &Path, violations: &mut Vec<String>) {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return, // optional dir (tests/, examples/) absent
    };
    for entry in entries {
        let entry = entry.expect("directory entry");
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if ALLOWED_PREFIXES
            .iter()
            .any(|prefix| rel.starts_with(prefix))
        {
            continue;
        }
        if path.is_dir() {
            scan_dir(root, &path, violations);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            scan_file(root, &path, violations);
        }
    }
}

#[test]
fn no_direct_atomics_or_threads_outside_the_facade() {
    let root = workspace_root();
    let mut violations = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        scan_dir(&root, &root.join(top), &mut violations);
    }
    violations.sort();
    assert!(
        violations.is_empty(),
        "direct std/core concurrency use outside crn-sync — route it \
         through the facade so the model checker can see it (or extend the \
         allowlist in crates/sync/tests/hygiene.rs with justification):\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn the_lint_itself_sees_through_comments() {
    // Self-test of the comment stripper so a refactor can't silently turn
    // the lint into a no-op.
    let source = "/* std::thread */\nuse x; // std::sync::atomic\nuse std::thread;\n";
    let stripped = strip_comments(source);
    let hits: Vec<usize> = stripped
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("std::thread"))
        .map(|(i, _)| i + 1)
        .collect();
    assert_eq!(
        hits,
        vec![3],
        "comments ignored, code flagged, lines stable"
    );
}
