//! The workspace's concurrency invariant suites, verified by exhaustive
//! interleaving exploration (E21).
//!
//! Run with `RUSTFLAGS='--cfg crn_model_check' cargo test -p crn-sync --test
//! model`; under a normal build this file compiles to nothing.  Each test
//! drives a 2–3 thread miniature of a load-bearing protocol — the
//! `parallel.rs` cursor + `first_bad` reduction, the memo `SharedLog`
//! publish path, the `crn_obs` registry (the *real* `Registry`, via the
//! dev-dependency) — through every schedule within the stated preemption
//! bound, plus litmus tests pinning the memory model and negative tests
//! proving a seeded ordering bug is caught with a replayable trace.
//!
//! Tests print their explored-execution counts (`cargo test ... --
//! --nocapture`); EXPERIMENTS.md E21 records the reference numbers.

#![cfg(crn_model_check)]

use crn_sync::atomic::{AtomicU64, Ordering};
use crn_sync::model::{Checker, Strategy};
use crn_sync::{lock_recover, thread, Mutex};
use std::cell::RefCell;
use std::collections::BTreeSet;

/// The `parallel.rs` sharded-scan miniature: 2 workers draw indices 0..4
/// from a shared cursor, indices 1 and 3 are "bad", each worker records its
/// first bad draw locally and lowers the shared `first_bad` pruning bound;
/// the winner is the minimum of the local records, merged after join.
fn first_bad_scan(cursor: Ordering, load: Ordering, reduce: Ordering) -> Option<u64> {
    const TOTAL: u64 = 4;
    let bad = |i: u64| i == 1 || i == 3;
    let next = AtomicU64::new(0);
    let first_bad = AtomicU64::new(u64::MAX);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let next = &next;
                let first_bad = &first_bad;
                scope.spawn(move || {
                    let mut best: Option<u64> = None;
                    loop {
                        let i = next.fetch_add(1, cursor);
                        if i >= TOTAL || i > first_bad.load(load) {
                            break;
                        }
                        if bad(i) {
                            best = Some(i);
                            first_bad.fetch_min(i, reduce);
                            break;
                        }
                    }
                    best
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("worker does not panic"))
            .min()
    })
}

/// The headline invariant of `parallel.rs`: the lexicographically-first bad
/// point is never lost or reordered by the `fetch_min` reduction, under
/// every schedule (including stale `first_bad` reads, which only widen the
/// scanned prefix).  Cross-referenced from the ordering audit at
/// `crates/model/src/reachability/parallel.rs`.
#[test]
fn first_bad_reduction_never_loses_lex_first() {
    let report = Checker::new().preemption_bound(3).check(
        "first_bad_reduction_never_loses_lex_first",
        || {
            let winner = first_bad_scan(Ordering::Relaxed, Ordering::Acquire, Ordering::AcqRel);
            assert_eq!(winner, Some(1), "lex-first bad point must win the merge");
        },
    );
    assert!(!report.truncated, "exploration must be exhaustive");
    eprintln!(
        "E21 first_bad (Relaxed/Acquire/AcqRel, bound 3): {} executions",
        report.executions
    );
}

/// The audit claim that the `Acquire`/`AcqRel` pair in `parallel.rs` is
/// protocol documentation rather than a correctness requirement: the
/// all-Relaxed downgrade of the same protocol also passes exhaustively,
/// because a stale bound read only makes a worker evaluate a point it could
/// have skipped.
#[test]
fn first_bad_reduction_tolerates_relaxed() {
    let report =
        Checker::new()
            .preemption_bound(3)
            .check("first_bad_reduction_tolerates_relaxed", || {
                let winner =
                    first_bad_scan(Ordering::Relaxed, Ordering::Relaxed, Ordering::Relaxed);
                assert_eq!(winner, Some(1), "the protocol is ordering-independent");
            });
    assert!(!report.truncated);
    eprintln!(
        "E21 first_bad (all-Relaxed, bound 3): {} executions",
        report.executions
    );
}

/// The memo `SharedLog` soundness invariant (`memo.rs`): a worker that
/// truncates its exploration discards its pending summaries — under no
/// interleaving can other workers observe them, while a completed worker's
/// batch is always published exactly once.
#[test]
fn memo_truncation_never_publishes() {
    let report = Checker::new().check("memo_truncation_never_publishes", || {
        // (code, summary-value) pairs; the log is append-only like SharedLog.
        let log: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
        thread::scope(|scope| {
            // Complete worker: finishes its component, publishes.
            scope.spawn(|| {
                let pending = vec![(7u64, 42u64)];
                let truncated = false;
                if !truncated {
                    lock_recover(&log).extend(pending);
                }
            });
            // Truncated worker: blows the exploration budget mid-component
            // and must drop, not publish, its pending batch.
            scope.spawn(|| {
                let mut pending = vec![(9u64, 13u64)];
                let budget = 1usize;
                let explored = 2usize;
                let truncated = explored > budget;
                if truncated {
                    pending.clear();
                }
                if !truncated {
                    lock_recover(&log).extend(pending);
                }
            });
        });
        let entries = lock_recover(&log);
        assert_eq!(
            entries.as_slice(),
            &[(7, 42)],
            "only the completed component is ever published"
        );
    });
    assert!(!report.truncated);
    eprintln!(
        "E21 memo publish suppression (bound 2): {} executions",
        report.executions
    );
}

/// The memo publish path's ordering contract in miniature: a summary slot
/// written `Relaxed` is published by a `Release` flag store, and an
/// `Acquire` reader that sees the flag must see the summary.  Passes
/// exhaustively; `relaxed_publish_downgrade_is_caught` below proves the
/// same test fails when the pairing is downgraded.
#[test]
fn memo_publish_release_acquire_protocol() {
    let report = Checker::new().check("memo_publish_release_acquire_protocol", || {
        let slot = AtomicU64::new(0);
        let ready = AtomicU64::new(0);
        thread::scope(|scope| {
            scope.spawn(|| {
                slot.store(42, Ordering::Relaxed);
                ready.store(1, Ordering::Release);
            });
            scope.spawn(|| {
                if ready.load(Ordering::Acquire) == 1 {
                    assert_eq!(
                        slot.load(Ordering::Relaxed),
                        42,
                        "acquire on the flag must publish the slot"
                    );
                }
            });
        });
    });
    assert!(!report.truncated);
    eprintln!(
        "E21 memo publish MP litmus (bound 2): {} executions",
        report.executions
    );
}

/// The deliberately-seeded ordering bug of the acceptance criteria:
/// downgrading the publish pairing to `Relaxed` breaks message passing, the
/// checker catches it, and the reported schedule replays to the same
/// violation.
#[test]
fn relaxed_publish_downgrade_is_caught() {
    let broken = || {
        let slot = AtomicU64::new(0);
        let ready = AtomicU64::new(0);
        thread::scope(|scope| {
            scope.spawn(|| {
                slot.store(42, Ordering::Relaxed);
                ready.store(1, Ordering::Relaxed); // seeded bug: was Release
            });
            scope.spawn(|| {
                if ready.load(Ordering::Relaxed) == 1 {
                    // seeded bug: was Acquire
                    assert_eq!(slot.load(Ordering::Relaxed), 42);
                }
            });
        });
    };
    let violation = Checker::new().check_violation("relaxed_publish_downgrade_is_caught", broken);
    assert!(
        violation.message.contains("assert"),
        "the violation is the publish assertion: {}",
        violation.message
    );
    assert!(
        !violation.trace.is_empty(),
        "the report carries the interleaving trace"
    );
    // The schedule string replays to the same violation.
    let replayed = Checker::replay(&violation.schedule, broken)
        .expect("the recorded schedule reproduces the violation");
    assert_eq!(replayed.message, violation.message);
    eprintln!(
        "E21 seeded downgrade caught after {} executions; schedule `{}` replays",
        violation.executions, violation.schedule
    );
}

/// The same seeded bug is also found by the seeded random-walk strategy —
/// the mode meant for miniatures whose bounded-DFS space is too large.
#[test]
fn random_walk_finds_publish_downgrade() {
    let violation = Checker::new()
        .strategy(Strategy::Random {
            seed: 0xC0FF_EE00,
            executions: 5_000,
        })
        .check_violation("random_walk_finds_publish_downgrade", || {
            let slot = AtomicU64::new(0);
            let ready = AtomicU64::new(0);
            thread::scope(|scope| {
                scope.spawn(|| {
                    slot.store(42, Ordering::Relaxed);
                    ready.store(1, Ordering::Relaxed);
                });
                scope.spawn(|| {
                    if ready.load(Ordering::Relaxed) == 1 {
                        assert_eq!(slot.load(Ordering::Relaxed), 42);
                    }
                });
            });
        });
    eprintln!(
        "E21 random walk caught the downgrade after {} executions",
        violation.executions
    );
}

/// Registry invariant (satellite of the detached-handle caveat): worker
/// flushes through the real `crn_obs::Registry` — one coarse `add` per
/// worker, exactly like `parallel.rs` — are never dropped: after the scope
/// join, the snapshot total is exact under every interleaving of the map
/// locks and the `Relaxed` counter RMWs.  Cross-referenced from the
/// ordering audit in `crates/obs/src/registry.rs`.
#[test]
fn registry_flush_never_drops_increments() {
    let report = Checker::new().check("registry_flush_never_drops_increments", || {
        let reg = crn_obs::Registry::new();
        thread::scope(|scope| {
            for flush in [2u64, 3u64] {
                let reg = &reg;
                scope.spawn(move || {
                    reg.add("model.box.points", flush);
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("model.box.points".to_string(), 5)],
            "joined snapshot must hold the exact total"
        );
    });
    assert!(!report.truncated);
    eprintln!(
        "E21 registry flush (bound 2): {} executions",
        report.executions
    );
}

/// `Registry::reset()` racing a live counter *handle* (the detached-handle
/// caveat PR 9 documented): the handle keeps its cell, so its total is
/// exactly the sum of its adds under every interleaving — reset can detach
/// the cell from snapshots but can never corrupt or tear the total.
#[test]
fn registry_reset_vs_flush_keeps_totals_uncorrupted() {
    let report = Checker::new().check("registry_reset_vs_flush_keeps_totals_uncorrupted", || {
        let reg = crn_obs::Registry::new();
        let handle = reg.counter("c");
        thread::scope(|scope| {
            scope.spawn(|| {
                handle.add(2);
                handle.add(3);
            });
            scope.spawn(|| reg.reset());
        });
        assert_eq!(handle.get(), 5, "the handle's cell is never corrupted");
        assert!(
            reg.snapshot().counters.is_empty(),
            "the reset always detaches the name from snapshots"
        );
    });
    assert!(!report.truncated);
    eprintln!(
        "E21 registry reset-vs-handle (bound 2): {} executions",
        report.executions
    );
}

/// `Registry::reset()` racing map-path adds (`reg.add`, which re-creates
/// the counter after a reset): the final snapshot is always one of the
/// three linearizations — reset first (5), reset between the adds (3), or
/// reset last (absent) — and bounded DFS observes *all three*, proving the
/// exploration actually reaches the distinct interleavings.
#[test]
fn registry_reset_vs_readd_explores_every_linearization() {
    let outcomes: RefCell<BTreeSet<Option<u64>>> = RefCell::new(BTreeSet::new());
    let report = Checker::new().check(
        "registry_reset_vs_readd_explores_every_linearization",
        || {
            let reg = crn_obs::Registry::new();
            thread::scope(|scope| {
                scope.spawn(|| {
                    reg.add("c", 2);
                    reg.add("c", 3);
                });
                scope.spawn(|| reg.reset());
            });
            let value = reg
                .snapshot()
                .counters
                .iter()
                .find(|(name, _)| name == "c")
                .map(|&(_, v)| v);
            assert!(
                matches!(value, Some(5) | Some(3) | None),
                "only clean linearizations are observable, got {value:?}"
            );
            outcomes.borrow_mut().insert(value);
        },
    );
    assert!(!report.truncated);
    let outcomes = outcomes.into_inner();
    assert_eq!(
        outcomes.into_iter().collect::<Vec<_>>(),
        vec![None, Some(3), Some(5)],
        "bounded DFS must reach all three linearizations"
    );
    eprintln!(
        "E21 registry reset-vs-readd (bound 2): {} executions",
        report.executions
    );
}

/// Store-buffering litmus: with `Relaxed` everywhere, both threads may read
/// the *initial* values (`(0, 0)`) — an outcome no interleaving of
/// sequentially-consistent steps can produce.  Pins that the shim models
/// relaxed visibility with per-location store histories rather than just
/// reordering steps.
#[test]
fn litmus_store_buffering_relaxed_reorders() {
    let outcomes: RefCell<BTreeSet<(u64, u64)>> = RefCell::new(BTreeSet::new());
    let report = Checker::new().check("litmus_store_buffering_relaxed_reorders", || {
        let x = AtomicU64::new(0);
        let y = AtomicU64::new(0);
        let (r1, r2) = thread::scope(|scope| {
            let t1 = scope.spawn(|| {
                x.store(1, Ordering::Relaxed);
                y.load(Ordering::Relaxed)
            });
            let t2 = scope.spawn(|| {
                y.store(1, Ordering::Relaxed);
                x.load(Ordering::Relaxed)
            });
            (t1.join().expect("t1"), t2.join().expect("t2"))
        });
        outcomes.borrow_mut().insert((r1, r2));
    });
    assert!(!report.truncated);
    let outcomes = outcomes.into_inner();
    assert!(
        outcomes.contains(&(0, 0)),
        "relaxed store buffering must expose (0,0); saw {outcomes:?}"
    );
    assert!(outcomes.contains(&(1, 1)), "the interleaved outcome exists");
    eprintln!(
        "E21 SB litmus (bound 2): {} executions, outcomes {outcomes:?}",
        report.executions
    );
}

/// Mutual exclusion under the shim mutex: two increments of a plain counter
/// never race, under every schedule.
#[test]
fn mutex_mutual_exclusion() {
    let report = Checker::new().check("mutex_mutual_exclusion", || {
        let m = Mutex::new(0u64);
        thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let mut guard = lock_recover(&m);
                    let read = *guard;
                    *guard = read + 1;
                });
            }
        });
        assert_eq!(*lock_recover(&m), 2);
    });
    assert!(!report.truncated);
    eprintln!(
        "E21 mutex exclusion (bound 2): {} executions",
        report.executions
    );
}

/// The join edge is a synchronization edge: a `Relaxed` write made by a
/// child is exactly visible to the parent after `join()`, with no stronger
/// ordering anywhere — this is what lets `parallel.rs` merge per-worker
/// results and the registry snapshot exact totals after a scope.
#[test]
fn join_edge_publishes_relaxed_writes() {
    let report = Checker::new().check("join_edge_publishes_relaxed_writes", || {
        let flag = AtomicU64::new(0);
        thread::scope(|scope| {
            let child = scope.spawn(|| {
                flag.fetch_add(7, Ordering::Relaxed);
            });
            child.join().expect("child");
            assert_eq!(
                flag.load(Ordering::Relaxed),
                7,
                "join must publish the child's relaxed write"
            );
        });
    });
    assert!(!report.truncated);
    eprintln!("E21 join edge (bound 2): {} executions", report.executions);
}

/// Lock-order inversion is reported as a deadlock violation rather than
/// hanging the test binary.
#[test]
fn deadlock_is_reported() {
    let violation = Checker::new().check_violation("deadlock_is_reported", || {
        let a = Mutex::new(());
        let b = Mutex::new(());
        thread::scope(|scope| {
            scope.spawn(|| {
                let _a = lock_recover(&a);
                let _b = lock_recover(&b);
            });
            scope.spawn(|| {
                let _b = lock_recover(&b);
                let _a = lock_recover(&a);
            });
        });
    });
    assert!(
        violation.message.contains("deadlock"),
        "expected a deadlock report, got: {}",
        violation.message
    );
    eprintln!(
        "E21 deadlock detection: reported after {} executions",
        violation.executions
    );
}
