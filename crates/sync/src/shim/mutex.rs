//! Scheduler-backed `Mutex`/`MutexGuard` shims.
//!
//! Inside a checker run, acquiring the lock is a scheduled step: if the
//! model lock is held, the thread parks as `Blocked(Mutex(key))` and is
//! rescheduled only after an unlock wakes it, so lock contention is part of
//! the explored interleaving space and lock-order deadlocks are detected as
//! violations.  The model synchronization edge — the next locker joins the
//! last unlocker's view — mirrors the release/acquire pairing a real mutex
//! provides.
//!
//! The shim wraps a real `std::sync::Mutex` for the data itself; inside a
//! run the real lock is uncontended by construction (the model admits one
//! holder at a time), and outside a run the shim degrades to exactly the
//! std behavior.  The guard releases the *real* lock before taking the
//! model unlock step, so an aborting execution can never strand the real
//! lock behind a parked model thread.
//!
//! Poisoning: the model tracks its own poison bit (set when a guard is
//! dropped during a non-abort panic, observed via `std::thread::panicking`)
//! and surfaces it through [`Mutex::lock`]'s `LockResult` exactly like std,
//! so `lock_recover` exercises the same policy under the checker.

use super::exec::{ctx, Block, Ctx, Run};
use std::sync::{LockResult, PoisonError};

/// Scheduler-backed shim for `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    real: std::sync::Mutex<T>,
}

/// Guard returned by the shim [`Mutex`]: wraps the real guard and replays
/// the unlock as a model step on drop.
pub struct MutexGuard<'a, T> {
    /// `Some` until dropped; released *before* the model unlock step.
    real: Option<std::sync::MutexGuard<'a, T>>,
    /// `Some` when the lock was taken inside a checker run.
    model: Option<(Ctx, usize)>,
}

impl<T> Mutex<T> {
    #[must_use]
    pub const fn new(data: T) -> Self {
        Self {
            real: std::sync::Mutex::new(data),
        }
    }

    fn key(&self) -> usize {
        self as *const Self as usize
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let Some(c) = ctx() else {
            // Outside a checker run: plain std behavior.
            return match self.real.lock() {
                Ok(real) => Ok(MutexGuard {
                    real: Some(real),
                    model: None,
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    real: Some(poisoned.into_inner()),
                    model: None,
                })),
            };
        };
        let Ctx { exec, id } = &c;
        let key = self.key();
        // Acquire the model lock: retry as scheduled steps, parking while
        // held.  Each retry only runs after an unlock woke us, so the loop
        // is bounded by other threads' progress.
        let poisoned = loop {
            let acquired = exec.step(*id, |st| {
                let mx = st.mutex(key);
                if st.mx(mx).holder.is_none() {
                    st.mx_mut(mx).holder = Some(*id);
                    // The synchronization edge: joining the last unlocker's
                    // view is what makes data written before an unlock
                    // visible after the next lock.
                    if let Some(view) = st.mx(mx).unlock_view.clone() {
                        st.threads[*id].view.join(&view);
                    }
                    let name = st.mx(mx).name.clone();
                    st.trace_op(*id, &format!("lock {name}"));
                    Some(st.mx(mx).poisoned)
                } else {
                    st.threads[*id].run = Run::Blocked(Block::Mutex(key));
                    None
                }
            });
            if let Some(poisoned) = acquired {
                break poisoned;
            }
        };
        // The real lock is uncontended here: the model admits one holder at
        // a time, and every model holder drops the real guard before the
        // model unlock.  Recover the real poison bit — the *model* poison
        // bit is authoritative under the checker.
        let real = self.real.lock().unwrap_or_else(PoisonError::into_inner);
        let guard = MutexGuard {
            real: Some(real),
            model: Some((c, key)),
        };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    pub fn is_poisoned(&self) -> bool {
        match ctx() {
            Some(Ctx { exec, id }) => {
                let key = self.key();
                exec.step(id, |st| {
                    let mx = st.mutex(key);
                    st.mx(mx).poisoned
                })
            }
            None => self.real.is_poisoned(),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.real.into_inner()
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.real.get_mut()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.real.as_ref().expect("guard not yet dropped")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.real.as_mut().expect("guard not yet dropped")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first so an aborted model step can never
        // leave it held.
        self.real = None;
        if let Some((Ctx { exec, id }, key)) = self.model.take() {
            let panicking = std::thread::panicking();
            // `step_opt`, not `step`: unlocking during an abort unwind must
            // not panic again (panic-in-panic aborts the process).
            let _ = exec.step_opt(id, |st| {
                let mx = st.mutex(key);
                st.mx_mut(mx).holder = None;
                st.mx_mut(mx).unlock_view = Some(st.threads[id].view.clone());
                if panicking {
                    st.mx_mut(mx).poisoned = true;
                }
                let name = st.mx(mx).name.clone();
                let suffix = if panicking { " (poisoned)" } else { "" };
                st.trace_op(id, &format!("unlock {name}{suffix}"));
                st.wake(Block::Mutex(key));
            });
        }
    }
}
