//! Scheduler-backed `thread::scope` shim.
//!
//! Model threads are real scoped OS threads, but their execution order is
//! owned by the scheduler: spawning registers the child in the execution
//! (it inherits the parent's view — the spawn synchronization edge), the
//! child's closure runs between baton handoffs, and joining blocks the
//! joiner as a model step and then joins the child's final view (the join
//! edge).  Handles that are never joined explicitly are model-joined when
//! the scope closure returns, *before* `std::thread::scope`'s implicit real
//! join — otherwise the real join would wait on a child that is parked
//! waiting for the baton only the scope caller can relinquish.
//!
//! A panic anywhere becomes a violation: child panics are caught by the
//! spawn wrapper and reported with the schedule trace; a panic in the scope
//! closure itself is reported before unwinding into `std::thread::scope`,
//! which puts the execution into abort mode so parked children drain
//! instead of deadlocking the implicit join.

use super::exec::{
    ctx, is_abort_payload, payload_message, set_ctx, Block, Ctx, Execution, Run, ThreadId,
    ABORT_PAYLOAD,
};
use std::cell::{Cell, RefCell};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;

/// Model-side bookkeeping of one scope: the execution the spawns belong to
/// and which children still need a model join at scope end.
struct ScopeModel {
    ctx: Ctx,
    children: RefCell<Vec<(ThreadId, Rc<Cell<bool>>)>>,
}

/// Scheduler-backed shim for `std::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    real: &'scope std::thread::Scope<'scope, 'env>,
    model: Option<ScopeModel>,
}

/// Scheduler-backed shim for `std::thread::ScopedJoinHandle`.  The wrapped
/// real handle yields `Option<T>`: `None` means the child's closure did not
/// complete (the execution aborted), in which case the joiner unwinds with
/// the abort sentinel instead of observing a value.
pub struct ScopedJoinHandle<'scope, T> {
    real: std::thread::ScopedJoinHandle<'scope, Option<T>>,
    model: Option<(Ctx, ThreadId, Rc<Cell<bool>>)>,
}

/// Shim for `std::thread::scope`.  The extra `'a` rank (compared to std's
/// `&'scope Scope<'scope, _>`) exists because the shim `Scope` is a local
/// wrapper around std's; closure call sites infer it identically.
pub fn scope<'env, T, F>(f: F) -> T
where
    F: for<'scope, 'a> FnOnce(&'a Scope<'scope, 'env>) -> T,
{
    match ctx() {
        None => std::thread::scope(|real| f(&Scope { real, model: None })),
        Some(c) => std::thread::scope(|real| {
            let shim = Scope {
                real,
                model: Some(ScopeModel {
                    ctx: c.clone(),
                    children: RefCell::new(Vec::new()),
                }),
            };
            match catch_unwind(AssertUnwindSafe(|| f(&shim))) {
                Ok(value) => {
                    shim.join_remaining();
                    value
                }
                Err(payload) => {
                    // Put the execution into abort mode before std's
                    // implicit join, so parked children drain.
                    if !is_abort_payload(&*payload) {
                        c.exec.report_panic(c.id, payload_message(&*payload));
                    }
                    resume_unwind(payload)
                }
            }
        }),
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let Some(model) = &self.model else {
            return ScopedJoinHandle {
                real: self.real.spawn(move || Some(f())),
                model: None,
            };
        };
        let Ctx { exec, id } = &model.ctx;
        let tid = exec.step(*id, |st| {
            let tid = Execution::register_thread(st, *id);
            st.trace_op(*id, &format!("spawn t{tid}"));
            tid
        });
        let joined = Rc::new(Cell::new(false));
        model.children.borrow_mut().push((tid, joined.clone()));
        let child_exec = exec.clone();
        let real = self.real.spawn(move || {
            set_ctx(Some(Ctx {
                exec: child_exec.clone(),
                id: tid,
            }));
            let result = catch_unwind(AssertUnwindSafe(f));
            set_ctx(None);
            match result {
                Ok(value) => {
                    child_exec.exit(tid);
                    Some(value)
                }
                Err(payload) => {
                    if is_abort_payload(&*payload) {
                        child_exec.finish_quiet(tid);
                    } else {
                        child_exec.report_panic(tid, payload_message(&*payload));
                    }
                    None
                }
            }
        });
        ScopedJoinHandle {
            real,
            model: Some((model.ctx.clone(), tid, joined)),
        }
    }

    /// Model-joins every child that was not joined through its handle, so
    /// the scope-end implicit real join cannot park on the baton.
    fn join_remaining(&self) {
        let Some(model) = &self.model else {
            return;
        };
        let children: Vec<(ThreadId, Rc<Cell<bool>>)> = model.children.borrow().clone();
        for (tid, joined) in children {
            if !joined.replace(true) {
                model_join(&model.ctx, tid);
            }
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.model {
            None => self
                .real
                .join()
                .map(|value| value.expect("non-model spawn wrapper always yields a value")),
            Some((c, tid, joined)) => {
                joined.set(true);
                model_join(&c, tid);
                match self.real.join() {
                    Ok(Some(value)) => Ok(value),
                    // The child did not complete: the execution aborted
                    // (its violation is already recorded) — unwind quietly.
                    _ => panic!("{ABORT_PAYLOAD}"),
                }
            }
        }
    }
}

/// Blocks thread `c.id` until `target` finishes, then joins its final view
/// (the join synchronization edge: everything the child did happens-before
/// the join's return).
fn model_join(c: &Ctx, target: ThreadId) {
    let Ctx { exec, id } = c;
    loop {
        let done = exec.step(*id, |st| {
            if st.threads[target].run == Run::Finished {
                let view = st.threads[target].view.clone();
                st.threads[*id].view.join(&view);
                st.trace_op(*id, &format!("join t{target}"));
                true
            } else {
                st.threads[*id].run = Run::Blocked(Block::Join(target));
                false
            }
        });
        if done {
            return;
        }
    }
}

/// Shim for `std::thread::available_parallelism`.  Under the checker this
/// still reports the host's parallelism — miniatures pass explicit worker
/// counts, and scheduling is baton-serialized regardless.
pub fn available_parallelism() -> std::io::Result<NonZeroUsize> {
    std::thread::available_parallelism()
}
