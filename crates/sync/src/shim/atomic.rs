//! Scheduler-backed atomic shims.
//!
//! Each shim wraps the real std atomic (so `const fn new` works and code
//! running outside a checker falls back to genuine atomics) and gives it a
//! model identity keyed by its address.  Inside a checker run every access
//! is a scheduler step against the location's store history:
//!
//! * **load** — the readable stores are those at or after the thread's view
//!   floor for the location; which one is read is a recorded
//!   nondeterministic choice (alternative 0 = the newest store, so DFS
//!   explores stale reads as deviations).  `Acquire` loads additionally join
//!   the release view carried by the store they read.
//! * **store** — appends to the modification order; `Release` stores attach
//!   the writer's current view for future `Acquire` readers.
//! * **RMW** (`fetch_add`, `fetch_min`, `compare_exchange`, `swap`, …) —
//!   always reads the *newest* store (atomicity: an RMW can never act on a
//!   stale value) and continues the release sequence by inheriting the
//!   replaced store's release view, exactly as C11 release sequences let an
//!   `AcqRel` RMW chain extend a `Release` store.
//!
//! The wrapped std atomic is kept mirrored with the newest model store so a
//! late fallback access (after the checker run ends) still sees a sane
//! value.
//!
//! **Address-identity caveat:** the model keys a location by the shim's
//! address.  Miniatures must keep their atomics at stable addresses for the
//! whole run — stack slots, `Arc` allocations, or fixed arrays; do not grow
//! a `Vec` of shim atomics mid-run.

use super::exec::{acquires, ctx, releases, Ctx};
use std::sync::atomic::Ordering;

/// Panics mirroring std's own aborts for malformed ordering arguments, so
/// the shim rejects exactly what std rejects.
fn check_load_order(order: Ordering) {
    assert!(
        !matches!(order, Ordering::Release | Ordering::AcqRel),
        "there is no such thing as a release load"
    );
}

fn check_store_order(order: Ordering) {
    assert!(
        !matches!(order, Ordering::Acquire | Ordering::AcqRel),
        "there is no such thing as an acquire store"
    );
}

/// The shared model core: every shim type delegates to these free functions
/// with its value already widened to `u64`.
fn model_load(c: &Ctx, key: usize, initial: u64, order: Ordering, what: &str) -> u64 {
    check_load_order(order);
    let Ctx { exec, id } = c;
    exec.step(*id, |st| {
        let loc = st.location(key, initial);
        let floor = st.threads[*id].view.floor(loc);
        let len = st.loc(loc).stores.len();
        // Readable stores: floor..len.  Alternative 0 = newest (index
        // len-1), alternative k = k stores back; newest-first keeps the DFS
        // default on the "expected" value.
        let n = len - floor;
        let back = st.choose(n, true);
        let index = len - 1 - back;
        let store = st.loc(loc).stores[index].clone();
        st.threads[*id].view.raise(loc, index);
        if acquires(order) {
            if let Some(view) = &store.release_view {
                st.threads[*id].view.join(view);
            }
        }
        let name = st.loc(loc).name.clone();
        st.trace_op(
            *id,
            &format!("{what} load {name} -> {} ({order:?})", store.value),
        );
        store.value
    })
}

fn model_store(c: &Ctx, key: usize, initial: u64, value: u64, order: Ordering, what: &str) {
    check_store_order(order);
    let Ctx { exec, id } = c;
    exec.step(*id, |st| {
        let loc = st.location(key, initial);
        let release_view = releases(order).then(|| st.threads[*id].view.clone());
        st.loc_mut(loc).stores.push(super::exec::Store {
            value,
            release_view,
        });
        let index = st.loc(loc).stores.len() - 1;
        st.threads[*id].view.raise(loc, index);
        let name = st.loc(loc).name.clone();
        st.trace_op(*id, &format!("{what} store {name} <- {value} ({order:?})"));
    });
}

fn model_rmw(
    c: &Ctx,
    key: usize,
    initial: u64,
    order: Ordering,
    what: &str,
    f: impl FnOnce(u64) -> Option<u64>,
) -> u64 {
    let Ctx { exec, id } = c;
    exec.step(*id, |st| {
        let loc = st.location(key, initial);
        let index = st.loc(loc).stores.len() - 1;
        let prev = st.loc(loc).stores[index].clone();
        st.threads[*id].view.raise(loc, index);
        if acquires(order) {
            if let Some(view) = &prev.release_view {
                st.threads[*id].view.join(view);
            }
        }
        let written = f(prev.value);
        if let Some(new) = written {
            // Release sequence: an RMW extends the sequence headed by the
            // store it replaces, so its release view is the join of the
            // previous store's view and (if this RMW releases) ours.
            let mut release_view = prev.release_view.clone();
            if releases(order) {
                let mine = st.threads[*id].view.clone();
                match &mut release_view {
                    Some(view) => view.join(&mine),
                    None => release_view = Some(mine),
                }
            }
            st.loc_mut(loc).stores.push(super::exec::Store {
                value: new,
                release_view,
            });
            let new_index = st.loc(loc).stores.len() - 1;
            st.threads[*id].view.raise(loc, new_index);
            let name = st.loc(loc).name.clone();
            st.trace_op(
                *id,
                &format!("{what} rmw {name} {} -> {new} ({order:?})", prev.value),
            );
        } else {
            let name = st.loc(loc).name.clone();
            st.trace_op(
                *id,
                &format!(
                    "{what} rmw {name} read {} (no write, {order:?})",
                    prev.value
                ),
            );
        }
        prev.value
    })
}

/// Declares one shim atomic type wrapping `$real` with value type `$ty`,
/// converting through `u64` for the model core.
macro_rules! shim_atomic {
    ($name:ident, $real:path, $ty:ty, $to:expr, $from:expr, $label:literal) => {
        /// Scheduler-backed shim for the std atomic of the same name.  See
        /// the module docs for the modelled semantics; outside a checker run
        /// every method delegates to the wrapped std atomic.
        #[derive(Debug)]
        pub struct $name {
            real: $real,
        }

        impl $name {
            #[must_use]
            pub const fn new(value: $ty) -> Self {
                Self {
                    real: <$real>::new(value),
                }
            }

            fn key(&self) -> usize {
                self as *const Self as usize
            }

            /// The location's initial store: whatever the wrapped atomic
            /// held when the model first touched it.
            fn initial(&self) -> u64 {
                ($to)(self.real.load(Ordering::Relaxed))
            }

            /// Mirrors the newest model value into the wrapped atomic so
            /// post-run fallback accesses stay coherent.
            fn mirror(&self, value: u64) {
                self.real.store(($from)(value), Ordering::Relaxed);
            }

            pub fn load(&self, order: Ordering) -> $ty {
                match ctx() {
                    Some(c) => ($from)(model_load(&c, self.key(), self.initial(), order, $label)),
                    None => self.real.load(order),
                }
            }

            pub fn store(&self, value: $ty, order: Ordering) {
                match ctx() {
                    Some(c) => {
                        model_store(&c, self.key(), self.initial(), ($to)(value), order, $label);
                        self.mirror(($to)(value));
                    }
                    None => self.real.store(value, order),
                }
            }

            fn rmw(&self, order: Ordering, f: impl FnOnce(u64) -> Option<u64>) -> $ty {
                let c = ctx().expect("rmw caller checked for a context");
                let mut mirrored = None;
                let prev = model_rmw(&c, self.key(), self.initial(), order, $label, |value| {
                    let written = f(value);
                    mirrored = written;
                    written
                });
                if let Some(new) = mirrored {
                    self.mirror(new);
                }
                ($from)(prev)
            }

            pub fn fetch_add(&self, delta: $ty, order: Ordering) -> $ty {
                match ctx() {
                    Some(_) => self.rmw(order, |value| {
                        Some(($to)(($from)(value).wrapping_add(delta)))
                    }),
                    None => self.real.fetch_add(delta, order),
                }
            }

            pub fn fetch_min(&self, other: $ty, order: Ordering) -> $ty {
                match ctx() {
                    Some(_) => self.rmw(order, |value| {
                        let prev = ($from)(value);
                        Some(($to)(if other < prev { other } else { prev }))
                    }),
                    None => self.real.fetch_min(other, order),
                }
            }

            pub fn fetch_max(&self, other: $ty, order: Ordering) -> $ty {
                match ctx() {
                    Some(_) => self.rmw(order, |value| {
                        let prev = ($from)(value);
                        Some(($to)(if other > prev { other } else { prev }))
                    }),
                    None => self.real.fetch_max(other, order),
                }
            }

            pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                match ctx() {
                    Some(_) => self.rmw(order, |_| Some(($to)(value))),
                    None => self.real.swap(value, order),
                }
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                check_load_order(failure);
                match ctx() {
                    Some(_) => {
                        // Failure uses the success ordering's step here; a
                        // failed CAS still reads the newest store (it is an
                        // RMW that writes nothing), which is stronger than
                        // `failure` allows but sound (more synchronization,
                        // never less visibility than the code relies on).
                        let prev = self.rmw(success, |value| {
                            (($from)(value) == current).then(|| ($to)(new))
                        });
                        if prev == current {
                            Ok(prev)
                        } else {
                            Err(prev)
                        }
                    }
                    None => self.real.compare_exchange(current, new, success, failure),
                }
            }

            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                // The model never fails spuriously; weak == strong here.
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(<$ty>::default())
            }
        }
    };
}

shim_atomic!(
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64,
    |v: u64| v,
    |v: u64| v,
    "u64"
);

shim_atomic!(
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize,
    |v: usize| v as u64,
    |v: u64| usize::try_from(v).expect("model value fits usize"),
    "usize"
);

/// Scheduler-backed shim for `std::sync::atomic::AtomicBool`.  Bools only
/// need load/store/swap in this workspace.
#[derive(Debug)]
pub struct AtomicBool {
    real: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    #[must_use]
    pub const fn new(value: bool) -> Self {
        Self {
            real: std::sync::atomic::AtomicBool::new(value),
        }
    }

    fn key(&self) -> usize {
        self as *const Self as usize
    }

    fn initial(&self) -> u64 {
        u64::from(self.real.load(Ordering::Relaxed))
    }

    pub fn load(&self, order: Ordering) -> bool {
        match ctx() {
            Some(c) => model_load(&c, self.key(), self.initial(), order, "bool") != 0,
            None => self.real.load(order),
        }
    }

    pub fn store(&self, value: bool, order: Ordering) {
        match ctx() {
            Some(c) => {
                model_store(
                    &c,
                    self.key(),
                    self.initial(),
                    u64::from(value),
                    order,
                    "bool",
                );
                self.real.store(value, Ordering::Relaxed);
            }
            None => self.real.store(value, order),
        }
    }

    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        match ctx() {
            Some(c) => {
                let prev = model_rmw(&c, self.key(), self.initial(), order, "bool", |_| {
                    Some(u64::from(value))
                });
                self.real.store(value, Ordering::Relaxed);
                prev != 0
            }
            None => self.real.swap(value, order),
        }
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}
