//! The model-checking shim layer (only built under `--cfg crn_model_check`).
//!
//! * [`exec`] — one execution's scheduler state: thread table, per-location
//!   store histories, choice log, trace, and the cooperative baton protocol.
//! * [`checker`] — the driver: DFS over schedule prefixes with a preemption
//!   bound, seeded random walk, violation reporting and schedule replay.
//! * [`atomic`] / [`mutex`] / [`thread`] — the shim types the facade exports
//!   in place of `std::sync` / `std::thread`.
//!
//! Shim operations executed *outside* a checker run (no thread-local
//! execution context) fall back to the underlying std primitive, so code
//! compiled with the cfg still behaves normally when it is not being model
//! checked.

pub(crate) mod atomic;
pub(crate) mod checker;
pub(crate) mod exec;
pub(crate) mod mutex;
pub(crate) mod thread;
