//! One model-checked execution: scheduler state and the baton protocol.
//!
//! Model threads are real OS threads, but exactly one runs at a time: every
//! visible operation (atomic access, mutex acquire/release, spawn, join,
//! thread exit) is a [`Execution::step_opt`] that waits for the baton,
//! applies its effect to the shared [`ExecState`] under one lock, asks the
//! chooser which thread runs next, and passes the baton on.  All
//! nondeterminism — which runnable thread steps next, and which store a
//! relaxed load reads — flows through [`ExecState::choose`], so a recorded
//! choice sequence replays an execution exactly.
//!
//! # Memory model
//!
//! Each atomic location keeps its full modification order (the list of
//! stores, in execution order), and each thread carries a *view*: for every
//! location, the index of the newest store known to happen-before the
//! thread's next operation.  A load may read any store at or after its
//! view's floor (a nondeterministic choice); reading a `Release` store with
//! an `Acquire` load joins the writer's released view into the reader's,
//! which is exactly the edge that makes `Acquire` stronger than `Relaxed`
//! here.  Read-modify-writes always read the newest store (atomicity) and
//! continue release sequences by inheriting the released view of the store
//! they replace.  `SeqCst` is approximated as `AcqRel` plus reading only the
//! newest store — sound for this workspace, which uses no `SeqCst`
//! (documented in DESIGN.md).  Spawn, join, and mutex hand-over edges join
//! views in the same way, matching their std synchronization guarantees.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex, PoisonError};

/// Index of a model thread in the execution's thread table.
pub(crate) type ThreadId = usize;

/// Identity of an atomic location or mutex: the shim object's address.
pub(crate) type LocKey = usize;

/// The panic payload used to unwind model threads when an execution aborts
/// (violation found or deadlock); the spawn wrappers and the checker swallow
/// it rather than reporting it as a test panic.
pub(crate) const ABORT_PAYLOAD: &str = "crn-sync: execution aborted";

/// Whether a caught panic payload is the abort sentinel.
pub(crate) fn is_abort_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload
        .downcast_ref::<&str>()
        .is_some_and(|s| *s == ABORT_PAYLOAD)
}

/// Renders a panic payload for the violation report.
pub(crate) fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Whether `order` has acquire semantics on a load / RMW.
pub(crate) fn acquires(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// Whether `order` has release semantics on a store / RMW.
pub(crate) fn releases(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// A thread's knowledge of the store histories: for each location, the index
/// of the newest store known to happen-before the thread's next op.  Loads
/// may not read anything older.
#[derive(Debug, Clone, Default)]
pub(crate) struct View {
    floors: HashMap<LocKey, usize>,
}

impl View {
    pub(crate) fn floor(&self, loc: LocKey) -> usize {
        self.floors.get(&loc).copied().unwrap_or(0)
    }

    pub(crate) fn raise(&mut self, loc: LocKey, index: usize) {
        let slot = self.floors.entry(loc).or_insert(0);
        if *slot < index {
            *slot = index;
        }
    }

    /// Pointwise max — the happens-before join.
    pub(crate) fn join(&mut self, other: &View) {
        for (&loc, &index) in &other.floors {
            self.raise(loc, index);
        }
    }
}

/// One store in a location's modification order.
#[derive(Debug, Clone)]
pub(crate) struct Store {
    pub(crate) value: u64,
    /// The view an `Acquire` reader of this store joins: `Some` for release
    /// stores, and carried forward through RMWs (release sequences).  `None`
    /// for plain relaxed stores — reading one synchronizes nothing.
    pub(crate) release_view: Option<View>,
}

/// One atomic location: its modification order and display name.
#[derive(Debug)]
pub(crate) struct Location {
    pub(crate) name: String,
    pub(crate) stores: Vec<Store>,
}

/// One shim mutex: the model-side holder/waiter bookkeeping.  The released
/// view of the last unlock is joined by the next locker — critical sections
/// are totally ordered, so this models the full acquire/release pairing.
#[derive(Debug, Default)]
pub(crate) struct MutexState {
    pub(crate) name: String,
    pub(crate) holder: Option<ThreadId>,
    pub(crate) poisoned: bool,
    pub(crate) unlock_view: Option<View>,
}

/// Why a thread cannot currently be scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Block {
    /// Waiting for the mutex with this key to be released.
    Mutex(LocKey),
    /// Waiting for this thread to finish.
    Join(ThreadId),
}

/// A model thread's scheduler state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Run {
    Runnable,
    Blocked(Block),
    Finished,
}

#[derive(Debug)]
pub(crate) struct ThreadInfo {
    pub(crate) run: Run,
    pub(crate) view: View,
}

/// One recorded nondeterministic decision.
#[derive(Debug, Clone)]
pub(crate) struct Choice {
    /// Number of alternatives that were available.
    pub(crate) alternatives: usize,
    /// The alternative taken (0 is always the default: continue the current
    /// thread for schedule choices, the newest store for load choices).
    pub(crate) taken: usize,
    /// `true` when alternative 0 is not "continue the current thread" — the
    /// current thread blocked or finished (forced switch), or this is a
    /// load-value choice.  Non-zero alternatives of such choices cost no
    /// preemption.
    pub(crate) forced: bool,
    /// Preemptions accumulated strictly before this choice, so the DFS
    /// driver can tell whether flipping it stays within the bound.
    pub(crate) preemptions_before: usize,
}

/// How the chooser resolves decisions past the forced prefix.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Mode {
    /// Take alternative 0 (the DFS driver supplies ever-longer prefixes).
    Dfs,
    /// Seeded uniform choice (random-walk strategy).
    Random(u64),
}

/// The shared state of one execution.
pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadInfo>,
    /// The thread holding the baton (`usize::MAX` once all have finished).
    pub(crate) active: ThreadId,
    pub(crate) abort: bool,
    pub(crate) violation: Option<Violation>,
    locations: Vec<Location>,
    location_index: HashMap<LocKey, usize>,
    mutexes: Vec<MutexState>,
    mutex_index: HashMap<LocKey, usize>,
    pub(crate) choices: Vec<Choice>,
    /// Forced decisions (a DFS prefix or a replayed schedule).
    prefix: Vec<usize>,
    mode: Mode,
    pub(crate) preemptions: usize,
    pub(crate) steps: u64,
    pub(crate) trace: Vec<String>,
}

/// A property failure found during an execution.
#[derive(Debug, Clone)]
pub(crate) struct Violation {
    pub(crate) thread: ThreadId,
    pub(crate) message: String,
}

/// Hard per-execution step budget: a miniature that exceeds this is looping,
/// not exploring.
const STEP_BUDGET: u64 = 1_000_000;

impl ExecState {
    fn new(prefix: Vec<usize>, mode: Mode) -> Self {
        ExecState {
            threads: vec![ThreadInfo {
                run: Run::Runnable,
                view: View::default(),
            }],
            active: 0,
            abort: false,
            violation: None,
            locations: Vec::new(),
            location_index: HashMap::new(),
            mutexes: Vec::new(),
            mutex_index: HashMap::new(),
            choices: Vec::new(),
            prefix,
            mode,
            preemptions: 0,
            steps: 0,
            trace: Vec::new(),
        }
    }

    /// The location for `key`, registered on first touch with `initial` as
    /// its initial store (visible to every thread).
    pub(crate) fn location(&mut self, key: LocKey, initial: u64) -> usize {
        if let Some(&index) = self.location_index.get(&key) {
            return index;
        }
        let index = self.locations.len();
        self.locations.push(Location {
            name: format!("a{index}"),
            stores: vec![Store {
                value: initial,
                release_view: None,
            }],
        });
        self.location_index.insert(key, index);
        index
    }

    pub(crate) fn loc(&self, index: usize) -> &Location {
        &self.locations[index]
    }

    pub(crate) fn loc_mut(&mut self, index: usize) -> &mut Location {
        &mut self.locations[index]
    }

    /// The mutex state for `key`, registered on first touch.
    pub(crate) fn mutex(&mut self, key: LocKey) -> usize {
        if let Some(&index) = self.mutex_index.get(&key) {
            return index;
        }
        let index = self.mutexes.len();
        self.mutexes.push(MutexState {
            name: format!("m{index}"),
            ..MutexState::default()
        });
        self.mutex_index.insert(key, index);
        index
    }

    pub(crate) fn mx(&self, index: usize) -> &MutexState {
        &self.mutexes[index]
    }

    pub(crate) fn mx_mut(&mut self, index: usize) -> &mut MutexState {
        &mut self.mutexes[index]
    }

    /// Appends one trace line for thread `t`.
    pub(crate) fn trace_op(&mut self, t: ThreadId, desc: &str) {
        self.trace.push(format!("t{t}  {desc}"));
    }

    /// Resolves one nondeterministic decision with `n` alternatives.
    /// Decisions with a single alternative are not recorded (there is
    /// nothing to explore), which keeps prefixes aligned across runs.
    pub(crate) fn choose(&mut self, n: usize, forced: bool) -> usize {
        if n <= 1 {
            return 0;
        }
        let depth = self.choices.len();
        let taken = if depth < self.prefix.len() {
            let forced_choice = self.prefix[depth];
            assert!(
                forced_choice < n,
                "schedule prefix does not replay: choice {depth} wants alternative \
                 {forced_choice} of {n} — the checked closure must be deterministic"
            );
            forced_choice
        } else {
            match &mut self.mode {
                Mode::Dfs => 0,
                Mode::Random(state) => {
                    // SplitMix64 step; uniform-enough for schedule sampling.
                    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = *state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    usize::try_from((z ^ (z >> 31)) % n as u64).expect("n fits usize")
                }
            }
        };
        self.choices.push(Choice {
            alternatives: n,
            taken,
            forced,
            preemptions_before: self.preemptions,
        });
        taken
    }

    /// Records a violation and puts the execution into abort mode (idempotent
    /// for the message: the first violation wins).
    pub(crate) fn record_violation(&mut self, thread: ThreadId, message: String) {
        if self.violation.is_none() {
            self.violation = Some(Violation { thread, message });
        }
        self.abort = true;
    }

    /// Marks every thread blocked on `block` runnable again.
    pub(crate) fn wake(&mut self, block: Block) {
        for info in &mut self.threads {
            if info.run == Run::Blocked(block) {
                info.run = Run::Runnable;
            }
        }
    }
}

/// One execution's shared state plus the baton condvar.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    baton: Condvar,
}

impl Execution {
    pub(crate) fn new(prefix: Vec<usize>, mode: Mode) -> Self {
        Execution {
            state: Mutex::new(ExecState::new(prefix, mode)),
            baton: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs `op` as one visible step of thread `me`: waits for the baton,
    /// applies `op` under the state lock, schedules the next thread, and
    /// passes the baton.  Returns `None` when the execution aborted (the
    /// caller unwinds with the abort sentinel, or ignores it in drops).
    pub(crate) fn step_opt<R>(
        &self,
        me: ThreadId,
        op: impl FnOnce(&mut ExecState) -> R,
    ) -> Option<R> {
        let mut st = self.lock();
        while !st.abort && st.active != me {
            st = self.baton.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.abort {
            drop(st);
            self.baton.notify_all();
            return None;
        }
        st.steps += 1;
        if st.steps > STEP_BUDGET {
            st.record_violation(
                me,
                format!("step budget ({STEP_BUDGET}) exceeded — non-terminating schedule?"),
            );
            drop(st);
            self.baton.notify_all();
            return None;
        }
        let result = op(&mut st);
        self.schedule_next(&mut st, me);
        let aborted = st.abort;
        drop(st);
        self.baton.notify_all();
        if aborted {
            None
        } else {
            Some(result)
        }
    }

    /// Like [`Execution::step_opt`] but panics with the abort sentinel when
    /// the execution is over — the default for operations in normal control
    /// flow (drop-path operations use `step_opt` and swallow the `None`).
    pub(crate) fn step<R>(&self, me: ThreadId, op: impl FnOnce(&mut ExecState) -> R) -> R {
        match self.step_opt(me, op) {
            Some(result) => result,
            None => panic!("{ABORT_PAYLOAD}"),
        }
    }

    /// Picks the next thread to hold the baton.  The alternatives are
    /// ordered "continue current thread first, then runnable threads by
    /// ascending id", so alternative 0 never costs a preemption.
    fn schedule_next(&self, st: &mut ExecState, me: ThreadId) {
        if st.abort {
            return;
        }
        let me_runnable = st.threads[me].run == Run::Runnable;
        let mut order: Vec<ThreadId> = Vec::with_capacity(st.threads.len());
        if me_runnable {
            order.push(me);
        }
        for (t, info) in st.threads.iter().enumerate() {
            if info.run == Run::Runnable && t != me {
                order.push(t);
            }
        }
        if order.is_empty() {
            if st.threads.iter().any(|t| matches!(t.run, Run::Blocked(_))) {
                let blocked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(t, info)| match info.run {
                        Run::Blocked(b) => Some(format!("t{t} on {b:?}")),
                        _ => None,
                    })
                    .collect();
                st.record_violation(me, format!("deadlock: {}", blocked.join(", ")));
            } else {
                // Everything finished; nobody waits on the baton.
                st.active = usize::MAX;
            }
            return;
        }
        let index = st.choose(order.len(), !me_runnable);
        let chosen = order[index];
        if me_runnable && chosen != me {
            st.preemptions += 1;
        }
        st.active = chosen;
    }

    /// Marks `me` finished as a scheduled step (the thread's exit event),
    /// waking its joiners.  Joiners synchronize with the exiting thread's
    /// final view when their join completes.
    pub(crate) fn exit(&self, me: ThreadId) {
        let _ = self.step_opt(me, |st| {
            st.threads[me].run = Run::Finished;
            st.wake(Block::Join(me));
            st.trace_op(me, "exit");
        });
    }

    /// Marks `me` finished without scheduling — the abort path, where the
    /// baton protocol is already torn down.
    pub(crate) fn finish_quiet(&self, me: ThreadId) {
        let mut st = self.lock();
        st.threads[me].run = Run::Finished;
        drop(st);
        self.baton.notify_all();
    }

    /// Records a violation raised by thread `me` (a caught user panic) and
    /// aborts the execution.
    pub(crate) fn report_panic(&self, me: ThreadId, message: String) {
        let mut st = self.lock();
        st.trace_op(me, &format!("panic: {message}"));
        st.record_violation(me, message);
        st.threads[me].run = Run::Finished;
        drop(st);
        self.baton.notify_all();
    }

    /// Registers a new model thread whose view starts from `parent`'s (the
    /// spawn edge synchronizes), returning its id.  Must be called as part
    /// of a step by `parent`.
    pub(crate) fn register_thread(st: &mut ExecState, parent: ThreadId) -> ThreadId {
        let tid = st.threads.len();
        let view = st.threads[parent].view.clone();
        st.threads.push(ThreadInfo {
            run: Run::Runnable,
            view,
        });
        tid
    }

    /// Drains the execution's outcome after the closure returned or
    /// unwound: `(choices, violation, trace, preemptions)`.
    pub(crate) fn take_outcome(&self) -> (Vec<Choice>, Option<Violation>, Vec<String>, usize) {
        let mut st = self.lock();
        (
            std::mem::take(&mut st.choices),
            st.violation.take(),
            std::mem::take(&mut st.trace),
            st.preemptions,
        )
    }
}

// ---------------------------------------------------------------------------
// Thread-local execution context.
// ---------------------------------------------------------------------------

use std::cell::RefCell;
use std::sync::Arc;

/// A thread's binding to the execution it participates in.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) id: ThreadId,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The calling thread's execution context, if it is part of a model check.
pub(crate) fn ctx() -> Option<Ctx> {
    CTX.with(|slot| slot.borrow().clone())
}

/// Whether the calling thread is inside a model-checked execution.  Safe to
/// call from a panic hook: uses `try_with` so a thread whose TLS is already
/// torn down reads as "not in a model check".
pub(crate) fn has_ctx() -> bool {
    CTX.try_with(|slot| slot.borrow().is_some())
        .unwrap_or(false)
}

/// Binds (or clears) the calling thread's execution context.
pub(crate) fn set_ctx(new: Option<Ctx>) {
    CTX.with(|slot| *slot.borrow_mut() = new);
}
