//! The model-check driver: schedule exploration, violation reporting,
//! replay.
//!
//! A [`Checker`] re-runs a test closure once per schedule.  Each run is one
//! [`Execution`](super::exec::Execution): every nondeterministic decision
//! (which thread steps next, which store a load reads) is recorded as a
//! choice, and the DFS driver enumerates schedules by backtracking over the
//! recorded choice log — flip the deepest choice that still has untried
//! alternatives within the preemption bound, keep everything before it as a
//! forced prefix, rerun.  The seeded random-walk strategy instead samples
//! schedules uniformly at each choice point, for miniatures whose bounded
//! DFS space is too large.
//!
//! A violation (assertion failure, deadlock, step-budget blowout) aborts
//! the execution and is reported with the interleaving trace plus the
//! choice sequence as a comma-joined schedule string; exporting it as
//! `CRN_SYNC_SCHEDULE` makes the next `check` run exactly that schedule,
//! and [`Checker::replay`] does the same in-process.  DESIGN.md §
//! "Concurrency model" walks through the workflow.

use super::exec::{
    ctx, has_ctx, is_abort_payload, payload_message, set_ctx, Choice, Ctx, Execution, Mode,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Silences the default panic hook for panics that the checker itself
/// catches and reports: the abort sentinel (threads being unwound after a
/// violation elsewhere) and any panic raised on a thread inside a
/// model-checked execution (its message reaches the user through the
/// rendered [`ViolationReport`] instead).  Installed once per process, on
/// first exploration; panics outside model checks still print normally.
fn install_panic_silencer() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if is_abort_payload(info.payload()) || has_ctx() {
                return;
            }
            previous(info);
        }));
    });
}

/// How [`Checker::check`] explores the schedule space.
#[derive(Debug, Clone, Copy)]
pub enum Strategy {
    /// Exhaustive DFS over schedule prefixes, bounded by the preemption
    /// budget — complete for the bound: if no violation is reported, no
    /// schedule with that many preemptions can produce one.
    Dfs,
    /// `executions` runs with seeded pseudo-random choices — a sampler for
    /// spaces too large to exhaust; never reports completeness.
    Random { seed: u64, executions: usize },
}

/// Summary of a completed (violation-free) exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Schedules actually executed.
    pub executions: usize,
    /// `true` when exploration stopped at `max_executions` rather than
    /// exhausting the bounded space — the result is then a sample, not a
    /// proof.
    pub truncated: bool,
}

/// A found violation, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct ViolationReport {
    /// The failing assertion / deadlock description.
    pub message: String,
    /// Comma-joined choice sequence; feed to [`Checker::replay`] or export
    /// as `CRN_SYNC_SCHEDULE` to re-run exactly this interleaving.
    pub schedule: String,
    /// Human-readable interleaving: one line per visible operation.
    pub trace: Vec<String>,
    /// Schedules executed before this one failed.
    pub executions: usize,
}

impl ViolationReport {
    /// The report as `check` renders it when panicking.
    #[must_use]
    pub fn render(&self, name: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("crn-sync model check failed: {name}\n"));
        out.push_str(&format!("violation: {}\n", self.message));
        out.push_str(&format!(
            "schedule:  {}   (export CRN_SYNC_SCHEDULE to replay)\n",
            if self.schedule.is_empty() {
                "<empty — fails on the default schedule>"
            } else {
                &self.schedule
            }
        ));
        out.push_str(&format!(
            "explored {} execution(s) before failing\ntrace:\n",
            self.executions
        ));
        for line in &self.trace {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Drives a test closure through many schedules.  See the crate docs for
/// the overall workflow and `tests/model.rs` for the workspace's invariant
/// suites.
#[derive(Debug, Clone, Copy)]
pub struct Checker {
    preemption_bound: usize,
    max_executions: usize,
    strategy: Strategy,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            // Two preemptions expose the overwhelming majority of real
            // concurrency bugs (the CHESS observation) while keeping 2–3
            // thread miniatures in the thousands of schedules.
            preemption_bound: 2,
            max_executions: 100_000,
            strategy: Strategy::Dfs,
        }
    }
}

impl Checker {
    #[must_use]
    pub fn new() -> Self {
        Checker::default()
    }

    /// Maximum context switches away from the default schedule per
    /// execution (forced switches — blocking, exits — are free).
    #[must_use]
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Hard cap on executed schedules; hitting it marks the report
    /// truncated instead of running forever.
    #[must_use]
    pub fn max_executions(mut self, max: usize) -> Self {
        self.max_executions = max;
        self
    }

    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Explores `f` under the configured strategy; panics with a rendered
    /// [`ViolationReport`] on the first violating schedule.  When the
    /// `CRN_SYNC_SCHEDULE` environment variable is set, runs exactly that
    /// schedule instead (the replay workflow).
    pub fn check(&self, name: &str, f: impl Fn()) -> Report {
        match self.explore(&f) {
            Ok(report) => report,
            Err(violation) => panic!("{}", violation.render(name)),
        }
    }

    /// Explores `f` expecting a violation — the harness for negative tests
    /// that prove the checker catches a seeded bug.  Panics if the bounded
    /// exploration completes without one.
    pub fn check_violation(&self, name: &str, f: impl Fn()) -> ViolationReport {
        match self.explore(&f) {
            Ok(report) => panic!(
                "{name}: expected a violation, but {} execution(s) passed (truncated: {})",
                report.executions, report.truncated
            ),
            Err(violation) => violation,
        }
    }

    /// Runs exactly one schedule (a [`ViolationReport::schedule`] string),
    /// returning the violation it reproduces, if any.
    pub fn replay(schedule: &str, f: impl Fn()) -> Option<ViolationReport> {
        let prefix = parse_schedule(schedule);
        let outcome = run_once(prefix, Mode::Dfs, &f);
        outcome.into_violation(1)
    }

    fn explore(&self, f: &impl Fn()) -> Result<Report, ViolationReport> {
        assert!(
            ctx().is_none(),
            "Checker::check cannot run inside another model-checked execution"
        );
        install_panic_silencer();
        if let Ok(schedule) = std::env::var("CRN_SYNC_SCHEDULE") {
            let outcome = run_once(parse_schedule(&schedule), Mode::Dfs, f);
            return match outcome.into_violation(1) {
                Some(violation) => Err(violation),
                None => Ok(Report {
                    executions: 1,
                    truncated: true,
                }),
            };
        }
        match self.strategy {
            Strategy::Dfs => self.explore_dfs(f),
            Strategy::Random { seed, executions } => self.explore_random(f, seed, executions),
        }
    }

    fn explore_dfs(&self, f: &impl Fn()) -> Result<Report, ViolationReport> {
        let mut prefix: Vec<usize> = Vec::new();
        let mut executions = 0usize;
        loop {
            let outcome = run_once(prefix.clone(), Mode::Dfs, f);
            executions += 1;
            if let Some(violation) = outcome.violation_report(executions) {
                return Err(violation);
            }
            if executions >= self.max_executions {
                return Ok(Report {
                    executions,
                    truncated: true,
                });
            }
            match next_prefix(&outcome.choices, self.preemption_bound) {
                Some(next) => prefix = next,
                None => {
                    return Ok(Report {
                        executions,
                        truncated: false,
                    })
                }
            }
        }
    }

    fn explore_random(
        &self,
        f: &impl Fn(),
        seed: u64,
        executions: usize,
    ) -> Result<Report, ViolationReport> {
        for i in 0..executions {
            let run_seed = seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let outcome = run_once(Vec::new(), Mode::Random(run_seed), f);
            if let Some(violation) = outcome.into_violation(i + 1) {
                return Err(violation);
            }
        }
        Ok(Report {
            executions,
            truncated: true,
        })
    }
}

/// What one execution produced.
struct Outcome {
    choices: Vec<Choice>,
    violation: Option<super::exec::Violation>,
    trace: Vec<String>,
}

impl Outcome {
    fn into_violation(self, executions: usize) -> Option<ViolationReport> {
        let violation = self.violation?;
        Some(ViolationReport {
            message: format!("(thread t{}) {}", violation.thread, violation.message),
            schedule: render_schedule(&self.choices),
            trace: self.trace,
            executions,
        })
    }

    fn violation_report(&self, executions: usize) -> Option<ViolationReport> {
        let violation = self.violation.as_ref()?;
        Some(ViolationReport {
            message: format!("(thread t{}) {}", violation.thread, violation.message),
            schedule: render_schedule(&self.choices),
            trace: self.trace.clone(),
            executions,
        })
    }
}

/// Runs `f` once as thread 0 of a fresh execution with the given forced
/// choice prefix.
fn run_once(prefix: Vec<usize>, mode: Mode, f: &impl Fn()) -> Outcome {
    let exec = Arc::new(Execution::new(prefix, mode));
    set_ctx(Some(Ctx {
        exec: exec.clone(),
        id: 0,
    }));
    let result = catch_unwind(AssertUnwindSafe(f));
    set_ctx(None);
    match result {
        Ok(()) => exec.exit(0),
        Err(payload) => {
            if is_abort_payload(&*payload) {
                exec.finish_quiet(0);
            } else {
                exec.report_panic(0, payload_message(&*payload));
            }
        }
    }
    let (choices, violation, trace, _preemptions) = exec.take_outcome();
    Outcome {
        choices,
        violation,
        trace,
    }
}

/// The DFS backtracking step: keep the longest prefix whose deepest choice
/// still has an untried alternative affordable within the preemption bound.
/// Alternative 0 is the free default; flipping an unforced choice to a
/// non-zero alternative costs one preemption on top of those already spent
/// before it.
fn next_prefix(choices: &[Choice], preemption_bound: usize) -> Option<Vec<usize>> {
    for depth in (0..choices.len()).rev() {
        let choice = &choices[depth];
        let flip_cost = usize::from(!choice.forced);
        let next = choice.taken + 1;
        if next < choice.alternatives && choice.preemptions_before + flip_cost <= preemption_bound {
            let mut prefix: Vec<usize> = choices[..depth].iter().map(|c| c.taken).collect();
            prefix.push(next);
            return Some(prefix);
        }
    }
    None
}

fn render_schedule(choices: &[Choice]) -> String {
    choices
        .iter()
        .map(|c| c.taken.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_schedule(schedule: &str) -> Vec<usize> {
    schedule
        .split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .expect("CRN_SYNC_SCHEDULE entries must be non-negative integers")
        })
        .collect()
}
