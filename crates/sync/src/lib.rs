//! `crn_sync` — the workspace's single concurrency facade.
//!
//! Every crate that spawns threads or touches atomics imports them from here
//! instead of `std` (enforced by the atomics-hygiene lint in
//! `tests/hygiene.rs`).  The facade has two personalities:
//!
//! * **Normal builds** re-export `std::sync` and `std::thread` verbatim —
//!   [`Arc`], [`Mutex`], [`atomic::AtomicU64`], [`thread::scope`] *are* the
//!   std types, so the facade is zero-cost by construction (the E20/E21
//!   harness additionally asserts byte-identical `--profile` output).
//!
//! * Under `RUSTFLAGS='--cfg crn_model_check'` the atomics, `Mutex` and
//!   `thread::scope` swap for shim types backed by a deterministic
//!   cooperative scheduler (the `model` module, which only exists under
//!   that cfg): a `model::Checker` re-runs a test
//!   closure once per schedule, exploring thread interleavings exhaustively
//!   up to a preemption bound (or by seeded random walk), modelling
//!   `Relaxed`/`Acquire`/`Release`/`AcqRel` effects with per-location store
//!   histories, and reporting any assertion failure together with a
//!   replayable schedule trace.  This is the harness every lock-free
//!   structure in the workspace must pass before merging; the invariant
//!   suites live in `tests/model.rs` and run in CI as
//!   `RUSTFLAGS='--cfg crn_model_check' cargo test -p crn-sync`.
//!
//! # Mutex poisoning policy
//!
//! The workspace-wide recovery policy for poisoned mutexes is
//! [`lock_recover`]: take the guard out of the [`PoisonError`] and continue.
//! Every `Mutex` behind the facade guards *monotone* state (append-only
//! logs, metric maps) whose invariants hold after any prefix of a critical
//! section, so observing a poisoned lock can at worst lose the panicking
//! thread's last update — it can never corrupt what a reader sees.  Code
//! that cannot make that argument must call [`Mutex::lock`] and handle the
//! `Err` explicitly instead.
//!
//! ```
//! use crn_sync::{lock_recover, Mutex};
//!
//! let m = Mutex::new(vec![1u64, 2]);
//! lock_recover(&m).push(3);
//! assert_eq!(lock_recover(&m).as_slice(), &[1, 2, 3]);
//! ```

#![forbid(unsafe_code)]

#[cfg(crn_model_check)]
mod shim;

#[cfg(crn_model_check)]
pub mod model {
    //! The deterministic model-checking scheduler (only built under
    //! `--cfg crn_model_check`).
    pub use crate::shim::checker::{Checker, Report, Strategy, ViolationReport};
}

// ---------------------------------------------------------------------------
// Normal builds: transparent std re-exports.
// ---------------------------------------------------------------------------

#[cfg(not(crn_model_check))]
pub use std::sync::{Arc, Condvar, LockResult, Mutex, MutexGuard, OnceLock, PoisonError};

#[cfg(not(crn_model_check))]
pub mod atomic {
    //! Atomic types (std re-exports in normal builds).
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(not(crn_model_check))]
pub mod thread {
    //! Thread primitives (std re-exports in normal builds).
    pub use std::thread::{available_parallelism, scope, Scope, ScopedJoinHandle};
}

// ---------------------------------------------------------------------------
// Model-check builds: scheduler-backed shims.  `Arc` and `OnceLock` stay the
// std types — the checker models the synchronization primitives the
// workspace's invariants rest on (atomics, mutexes, spawn/join edges), not
// reference counting or one-time initialization.
// ---------------------------------------------------------------------------

#[cfg(crn_model_check)]
pub use std::sync::{Arc, Condvar, LockResult, OnceLock, PoisonError};

#[cfg(crn_model_check)]
pub use shim::mutex::{Mutex, MutexGuard};

#[cfg(crn_model_check)]
pub mod atomic {
    //! Atomic types (scheduler-backed shims under `--cfg crn_model_check`).
    pub use crate::shim::atomic::{AtomicBool, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}

#[cfg(crn_model_check)]
pub mod thread {
    //! Thread primitives (scheduler-backed shims under
    //! `--cfg crn_model_check`).
    pub use crate::shim::thread::{available_parallelism, scope, Scope, ScopedJoinHandle};
}

/// Locks `mutex`, recovering the guard if a panicking thread poisoned it.
///
/// This is the facade's documented poisoning policy (see the crate docs):
/// metrics and memo logs must never turn one panic into a second one, and
/// every facade-guarded structure tolerates a torn critical section.  Under
/// `--cfg crn_model_check` the same recovery runs against the shim mutex, so
/// model-checked protocols exercise the identical policy.
pub fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(all(test, not(crn_model_check)))]
mod tests {
    use super::*;

    #[test]
    fn lock_recover_passes_through_unpoisoned() {
        let m = Mutex::new(1u32);
        *lock_recover(&m) += 1;
        assert_eq!(*lock_recover(&m), 2);
    }

    #[test]
    fn lock_recover_recovers_a_poisoned_mutex() {
        let m = Mutex::new(vec![1u64]);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(caught.is_err());
        assert!(m.is_poisoned());
        // The policy: recover the guard, keep the data.
        lock_recover(&m).push(2);
        assert_eq!(lock_recover(&m).as_slice(), &[1, 2]);
    }

    #[test]
    fn facade_types_are_std_types() {
        // The normal-build facade is a pure re-export: taking a std mutex by
        // reference through the facade type proves they are the same type.
        let m: std::sync::Mutex<u8> = std::sync::Mutex::new(7);
        let via_facade: &Mutex<u8> = &m;
        assert_eq!(*lock_recover(via_facade), 7);
        let a: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(3);
        let via_facade: &atomic::AtomicU64 = &a;
        assert_eq!(via_facade.load(atomic::Ordering::Relaxed), 3);
    }

    #[test]
    fn facade_scope_spawns_and_joins() {
        let total = atomic::AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| total.fetch_add(1, atomic::Ordering::Relaxed));
            }
        });
        assert_eq!(total.load(atomic::Ordering::Relaxed), 4);
        assert!(thread::available_parallelism().is_ok());
    }
}
