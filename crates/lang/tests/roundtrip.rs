//! Property test: random printable documents round-trip through
//! `print` → `parse` with an identical AST, and printing is idempotent.
//!
//! The vendored proptest stub drives deterministic cases; each case seeds a
//! SplitMix64 generator that assembles a random — but grammatically
//! well-formed — document out of `crn`, `fn`, `spec` and `pipeline` items.

use crn_lang::ast::{
    CrnItem, Document, FnCase, FnItem, Guard, GuardAtom, Item, LinExpr, Piece, PipelineItem,
    ReactionAst, Rel, SpecBody, SpecItem, StageAst, When, WhenBody,
};
use crn_lang::span::Span;
use crn_lang::{parse, print};
use crn_numeric::Rational;
use proptest::prelude::*;

const SPECIES_POOL: &[&str] = &[
    "A",
    "B",
    "C",
    "K",
    "L",
    "W0",
    "X1",
    "X2",
    "Y",
    "Z1",
    "Z2",
    "f0.X1",
    "f1.L_0_1",
    "X_ignored",
];

struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
        }
    }

    fn next(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    fn rational(&mut self) -> Rational {
        let numer = self.below(9) as i128 - 4;
        let denom = self.below(3) as i128 + 1;
        Rational::new(numer, denom)
    }

    fn nonneg_rational(&mut self) -> Rational {
        let numer = self.below(5) as i128;
        let denom = self.below(3) as i128 + 1;
        Rational::new(numer, denom)
    }

    fn distinct_species(&mut self, count: usize) -> Vec<String> {
        let mut pool: Vec<&str> = SPECIES_POOL.to_vec();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let index = self.below(pool.len() as u64) as usize;
            out.push(pool.remove(index).to_owned());
        }
        out
    }

    fn expr(&mut self, dim: usize) -> LinExpr {
        let mut expr = LinExpr::zero(dim);
        for coef in &mut expr.coeffs {
            if self.chance(60) {
                *coef = self.rational();
            }
        }
        if self.chance(70) {
            expr.constant = self.rational();
        }
        expr
    }

    fn reaction(&mut self, species: &[String]) -> ReactionAst {
        let side = |gen: &mut Gen| {
            let terms = gen.below(4);
            (0..terms)
                .map(|_| {
                    let count = gen.below(3) + 1;
                    let name = species[gen.below(species.len() as u64) as usize].clone();
                    (count, name)
                })
                .collect::<Vec<_>>()
        };
        ReactionAst {
            reactants: side(self),
            products: side(self),
            span: Span::default(),
        }
    }

    fn crn_item(&mut self, name: String) -> CrnItem {
        let n_inputs = self.below(3) as usize + 1;
        let names = self.distinct_species(n_inputs + 2);
        let (inputs, rest) = names.split_at(n_inputs);
        let output = rest[0].clone();
        let leader = self.chance(40).then(|| rest[1].clone());
        let computes = self.chance(40).then(|| "linked".to_owned());
        let init = if self.chance(50) {
            inputs
                .iter()
                .map(|input| (input.clone(), self.below(6)))
                .collect()
        } else {
            Vec::new()
        };
        let all_species: Vec<String> = SPECIES_POOL.iter().map(|&s| s.to_owned()).collect();
        let reactions = (0..self.below(4) + 1)
            .map(|_| self.reaction(&all_species))
            .collect();
        CrnItem {
            name,
            inputs: inputs.to_vec(),
            output,
            output_span: Span::default(),
            leader,
            computes,
            init,
            reactions,
            span: Span::default(),
        }
    }

    fn guard_atom(&mut self, dim: usize) -> GuardAtom {
        if self.chance(30) {
            let mut expr = LinExpr::zero(dim);
            for coef in &mut expr.coeffs {
                if self.chance(60) {
                    *coef = Rational::from(self.below(5) as i64 - 2);
                }
            }
            let modulus = self.below(4) + 1;
            GuardAtom::Mod {
                expr,
                modulus,
                residue: self.below(modulus),
            }
        } else {
            let rel = match self.below(5) {
                0 => Rel::Lt,
                1 => Rel::Le,
                2 => Rel::Gt,
                3 => Rel::Ge,
                _ => Rel::Eq,
            };
            GuardAtom::Cmp {
                lhs: self.expr(dim),
                rel,
                rhs: self.expr(dim),
            }
        }
    }

    fn fn_item(&mut self, name: String) -> FnItem {
        let dim = self.below(3) as usize + 1;
        let params: Vec<String> = (1..=dim).map(|i| format!("x{i}")).collect();
        let n_cases = self.below(3) as usize + 1;
        let mut cases: Vec<FnCase> = (0..n_cases)
            .map(|_| {
                let atoms = (0..self.below(2) + 1)
                    .map(|_| self.guard_atom(dim))
                    .collect();
                FnCase {
                    guard: Guard::Conj(atoms),
                    value: self.expr(dim),
                }
            })
            .collect();
        if self.chance(50) {
            cases.push(FnCase {
                guard: Guard::Otherwise,
                value: self.expr(dim),
            });
        }
        FnItem {
            name,
            params,
            cases,
            span: Span::default(),
        }
    }

    fn piece(&mut self, dim: usize) -> Piece {
        match self.below(3) {
            0 => Piece::Affine(self.expr(dim)),
            1 => Piece::Floor(self.expr(dim)),
            _ => {
                let period = self.below(2) + 2;
                let gradient = (0..dim).map(|_| self.nonneg_rational()).collect();
                // A random, sorted, duplicate-free subset of the residue keys
                // (full coverage is a lowering concern, not a syntax one).
                let mut offsets = Vec::new();
                let mut key = vec![0u64; dim];
                loop {
                    if self.chance(70) {
                        offsets.push((key.clone(), self.rational()));
                    }
                    // Odometer step through [0, period)^dim.
                    let mut carry = true;
                    for digit in key.iter_mut().rev() {
                        if carry {
                            *digit += 1;
                            if *digit == period {
                                *digit = 0;
                            } else {
                                carry = false;
                            }
                        }
                    }
                    if carry {
                        break;
                    }
                }
                Piece::Quilt {
                    gradient,
                    period,
                    offsets,
                }
            }
        }
    }

    fn spec_body(&mut self, dim: usize, depth: usize) -> SpecBody {
        if dim == 0 {
            return SpecBody {
                threshold: Vec::new(),
                pieces: vec![Piece::Affine(LinExpr::constant(
                    0,
                    Rational::from(self.below(9) as i64),
                ))],
                whens: Vec::new(),
            };
        }
        let threshold: Vec<u64> = (0..dim).map(|_| self.below(3)).collect();
        let pieces = (0..self.below(2) + 1).map(|_| self.piece(dim)).collect();
        let mut whens = Vec::new();
        for (param, &bound) in threshold.iter().enumerate() {
            for value in 0..bound {
                if depth > 1 || self.chance(70) {
                    continue;
                }
                let body = if dim == 1 {
                    WhenBody::Constant(self.below(7))
                } else {
                    WhenBody::Block(self.spec_body(dim - 1, depth + 1))
                };
                whens.push(When { param, value, body });
            }
        }
        SpecBody {
            threshold,
            pieces,
            whens,
        }
    }

    fn spec_item(&mut self, name: String) -> SpecItem {
        let dim = self.below(4) as usize; // 0 is a valid (constant) spec
        SpecItem {
            name,
            params: (1..=dim).map(|i| format!("x{i}")).collect(),
            body: self.spec_body(dim, 0),
            span: Span::default(),
        }
    }

    fn pipeline_item(&mut self, name: String) -> PipelineItem {
        let n_inputs = self.below(3) as usize;
        let inputs: Vec<String> = (0..n_inputs).map(|i| format!("in{i}")).collect();
        let n_stages = self.below(3) as usize + 1;
        let mut stages: Vec<StageAst> = Vec::with_capacity(n_stages);
        for s in 0..n_stages {
            // Wire each stage to a random mix of inputs and earlier stages.
            let scope: Vec<String> = inputs
                .iter()
                .cloned()
                .chain(stages.iter().map(|stage: &StageAst| stage.name.clone()))
                .collect();
            let args = if scope.is_empty() {
                Vec::new()
            } else {
                (0..self.below(3))
                    .map(|_| scope[self.below(scope.len() as u64) as usize].clone())
                    .collect()
            };
            stages.push(StageAst {
                name: format!("s{s}"),
                module: format!("module{}", self.below(3)),
                args,
                span: Span::default(),
            });
        }
        let output = stages[self.below(stages.len() as u64) as usize]
            .name
            .clone();
        PipelineItem {
            name,
            inputs,
            stages,
            output,
            computes: self.chance(40).then(|| "linked".to_owned()),
            span: Span::default(),
        }
    }

    fn document(&mut self) -> Document {
        let items = (0..self.below(3) + 1)
            .map(|i| {
                let name = format!("item{i}");
                match self.below(4) {
                    0 => Item::Crn(self.crn_item(name)),
                    1 => Item::Fn(self.fn_item(name)),
                    2 => Item::Pipeline(self.pipeline_item(name)),
                    _ => Item::Spec(self.spec_item(name)),
                }
            })
            .collect();
        Document { items }
    }
}

proptest! {
    #[test]
    fn random_documents_round_trip(seed in 0u64..4096) {
        let document = Gen::new(seed).document();
        let text = print(&document);
        let reparsed = parse(&text).unwrap_or_else(|e| {
            panic!("printed document failed to parse (seed {seed}): {e}\n{text}")
        });
        prop_assert_eq!(&reparsed, &document);
        prop_assert_eq!(print(&reparsed), text);
    }
}
