//! Source positions and diagnostics.
//!
//! Every token carries a [`Span`] (byte offsets into the source text), and
//! every parse or lowering failure is reported as a [`Diagnostic`] anchored to
//! a span.  [`Diagnostic::render`] produces the familiar compiler-style
//! `file:line:col` report with the offending source line and a caret.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// The span covering `[start, end)`.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A parse or validation error anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What went wrong, phrased as an actionable message.
    pub message: String,
    /// Where in the source it went wrong.
    pub span: Span,
    /// An optional hint on how to fix it.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A diagnostic with no help line.
    #[must_use]
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            message: message.into(),
            span,
            help: None,
        }
    }

    /// Attaches a `help:` line.
    #[must_use]
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// The 1-based `(line, column)` of the span start in `source`.
    #[must_use]
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let upto = &source[..self.span.start.min(source.len())];
        let line = upto.matches('\n').count() + 1;
        let col = upto.chars().rev().take_while(|&c| c != '\n').count() + 1;
        (line, col)
    }

    /// Renders the diagnostic in compiler style:
    ///
    /// ```text
    /// error: expected `->` in reaction
    ///   --> corpus/max.crn:5:9
    ///    |
    ///  5 | X1 + Y;
    ///    |        ^
    ///    = help: write the reaction as `reactants -> products;`
    /// ```
    #[must_use]
    pub fn render(&self, source: &str, filename: &str) -> String {
        self.render_with_level(source, filename, "error")
    }

    /// [`render`](Diagnostic::render) with an explicit level prefix, e.g.
    /// `"warning"` for non-fatal lint findings.
    #[must_use]
    pub fn render_with_level(&self, source: &str, filename: &str, level: &str) -> String {
        let (line, col) = self.line_col(source);
        let source_line = source.lines().nth(line - 1).unwrap_or("");
        let gutter = line.to_string().len();
        let mut out = String::new();
        out.push_str(&format!("{level}: {}\n", self.message));
        out.push_str(&format!(
            "{:gutter$}--> {filename}:{line}:{col}\n",
            "",
            gutter = gutter + 1
        ));
        out.push_str(&format!("{:gutter$} |\n", "", gutter = gutter));
        out.push_str(&format!("{line} | {source_line}\n"));
        let width = {
            // Caret width: the span's extent on this line, at least 1.
            let line_start = self.span.start - (col - 1);
            let span_on_line = self
                .span
                .end
                .min(line_start + source_line.len())
                .saturating_sub(self.span.start);
            span_on_line.max(1)
        };
        out.push_str(&format!(
            "{:gutter$} | {:col$}{carets}\n",
            "",
            "",
            gutter = gutter,
            col = col - 1,
            carets = "^".repeat(width)
        ));
        if let Some(help) = &self.help {
            out.push_str(&format!("{:gutter$} = help: {help}\n", "", gutter = gutter));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(3, 5);
        let b = Span::new(8, 10);
        assert_eq!(a.to(b), Span::new(3, 10));
        assert_eq!(b.to(a), Span::new(3, 10));
    }

    #[test]
    fn line_col_counts_from_one() {
        let src = "abc\ndef\nghi\n";
        let d = Diagnostic::new("boom", Span::new(5, 6));
        assert_eq!(d.line_col(src), (2, 2));
        let d0 = Diagnostic::new("boom", Span::new(0, 1));
        assert_eq!(d0.line_col(src), (1, 1));
    }

    #[test]
    fn render_points_at_the_span() {
        let src = "crn max {\n  X1 + Y;\n}\n";
        let d = Diagnostic::new("expected `->` in reaction", Span::new(18, 19))
            .with_help("write the reaction as `reactants -> products;`");
        let rendered = d.render(src, "max.crn");
        assert!(rendered.contains("error: expected `->` in reaction"));
        assert!(rendered.contains("--> max.crn:2:9"));
        assert!(rendered.contains("2 |   X1 + Y;"));
        assert!(rendered.contains("^"));
        assert!(rendered.contains("help: write the reaction"));
    }
}
