//! The abstract syntax of a `.crn` document.
//!
//! A document is a sequence of named items: raw CRNs (`crn`), semilinear
//! function presentations (`fn`) and oblivious specifications (`spec`).
//! Linear expressions are normalized at parse time into coefficient vectors
//! over the parameter scope ([`LinExpr`]), so two texts denoting the same
//! expression parse to equal ASTs and the pretty-printer's output is
//! canonical.

use crn_numeric::Rational;

use crate::span::Span;

/// A parsed `.crn` document: an ordered list of items.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Document {
    /// The items, in source order.
    pub items: Vec<Item>,
}

impl Document {
    /// Finds an item by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&Item> {
        self.items.iter().find(|item| item.name() == name)
    }
}

/// One top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A raw CRN with role declarations (`crn name { … }`).
    Crn(CrnItem),
    /// A semilinear function presentation (`fn name(params) { … }`).
    Fn(FnItem),
    /// An oblivious specification (`spec name(params) { … }`).
    Spec(SpecItem),
    /// A composition of `crn`/`pipeline` items (`pipeline name { … }`).
    Pipeline(PipelineItem),
}

impl Item {
    /// The item's declared name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Item::Crn(item) => &item.name,
            Item::Fn(item) => &item.name,
            Item::Spec(item) => &item.name,
            Item::Pipeline(item) => &item.name,
        }
    }

    /// The item's source span.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Item::Crn(item) => item.span,
            Item::Fn(item) => item.span,
            Item::Spec(item) => item.span,
            Item::Pipeline(item) => item.span,
        }
    }

    /// Whether the item denotes a CRN (a `crn` or `pipeline` item).  These
    /// share one namespace, distinct from the `fn`/`spec` namespace, so a
    /// pipeline and the function it computes may carry the same name.
    #[must_use]
    pub fn is_crn_like(&self) -> bool {
        matches!(self, Item::Crn(_) | Item::Pipeline(_))
    }
}

/// The parameter scope of a `when` restriction: `params` with the parameter
/// at `fixed` removed.  Shared by the parser, printer and lowering so nested
/// restriction scopes can never disagree.
#[must_use]
pub fn remaining_params(params: &[String], fixed: usize) -> Vec<String> {
    params
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != fixed)
        .map(|(_, p)| p.clone())
        .collect()
}

/// One reaction `reactants -> products`, each side a list of
/// `(coefficient, species)` terms in source order.
///
/// Equality ignores the [`span`](ReactionAst::span): two reactions are equal
/// when they denote the same rewrite, wherever they were written.
#[derive(Debug, Clone)]
pub struct ReactionAst {
    /// The left-hand side (consumed species).
    pub reactants: Vec<(u64, String)>,
    /// The right-hand side (produced species).
    pub products: Vec<(u64, String)>,
    /// The span of the reaction (through the terminating `;`), for lint
    /// diagnostics anchored at the offending reaction.
    pub span: Span,
}

impl PartialEq for ReactionAst {
    fn eq(&self, other: &Self) -> bool {
        self.reactants == other.reactants && self.products == other.products
    }
}

/// A `crn` item: role declarations, an optional link to the function it
/// computes, an optional initial input, and the reaction list.
///
/// Equality ignores the [`span`](CrnItem::span): two items are equal when
/// they denote the same CRN, wherever they were written.
#[derive(Debug, Clone)]
pub struct CrnItem {
    /// The item name.
    pub name: String,
    /// The ordered input species `X_1, …, X_d`.
    pub inputs: Vec<String>,
    /// The output species.
    pub output: String,
    /// The span of the `output` declaration's species name, for lints
    /// anchored at the output role rather than any one reaction.
    pub output_span: Span,
    /// The leader species, if declared.
    pub leader: Option<String>,
    /// The name of a `fn` or `spec` item this CRN claims to compute.
    pub computes: Option<String>,
    /// Initial counts for input species (`init X1 = 3, X2 = 5;`).
    pub init: Vec<(String, u64)>,
    /// The reactions, in source order.
    pub reactions: Vec<ReactionAst>,
    /// The span of the whole item.
    pub span: Span,
}

impl PartialEq for CrnItem {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.inputs == other.inputs
            && self.output == other.output
            && self.leader == other.leader
            && self.computes == other.computes
            && self.init == other.init
            && self.reactions == other.reactions
    }
}

/// One `stage name = module(arg, …);` declaration of a pipeline.
///
/// Equality ignores the [`span`](StageAst::span).
#[derive(Debug, Clone)]
pub struct StageAst {
    /// The stage's name (referenced by later stages and `output`).
    pub name: String,
    /// The `crn` or `pipeline` item providing the stage's module.
    pub module: String,
    /// The wiring: each argument names a pipeline input or an earlier stage.
    pub args: Vec<String>,
    /// The span of the declaration (for wiring diagnostics).
    pub span: Span,
}

impl PartialEq for StageAst {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.module == other.module && self.args == other.args
    }
}

/// A `pipeline` item: named stages over `crn`/`pipeline` modules wired into a
/// DAG, composed by the capture-proof engine of `crn_model::compose`.
///
/// Equality ignores the [`span`](PipelineItem::span).
#[derive(Debug, Clone)]
pub struct PipelineItem {
    /// The item name (shares the `crn` namespace).
    pub name: String,
    /// The ordered global inputs.
    pub inputs: Vec<String>,
    /// The stages, in wiring (topological) order.
    pub stages: Vec<StageAst>,
    /// The stage whose output is the pipeline's output.
    pub output: String,
    /// The name of a `fn` or `spec` item this pipeline claims to compute.
    pub computes: Option<String>,
    /// The span of the whole item.
    pub span: Span,
}

impl PartialEq for PipelineItem {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.inputs == other.inputs
            && self.stages == other.stages
            && self.output == other.output
            && self.computes == other.computes
    }
}

/// A linear expression over the parameters in scope, normalized to one
/// rational coefficient per parameter plus a rational constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinExpr {
    /// Coefficient of each parameter, indexed by scope position.
    pub coeffs: Vec<Rational>,
    /// The constant term.
    pub constant: Rational,
}

impl LinExpr {
    /// The zero expression over `dim` parameters.
    #[must_use]
    pub fn zero(dim: usize) -> Self {
        LinExpr {
            coeffs: vec![Rational::ZERO; dim],
            constant: Rational::ZERO,
        }
    }

    /// The constant expression `value`.
    #[must_use]
    pub fn constant(dim: usize, value: Rational) -> Self {
        LinExpr {
            coeffs: vec![Rational::ZERO; dim],
            constant: value,
        }
    }

    /// Whether every coefficient is zero (the expression is constant).
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(Rational::is_zero)
    }

    /// The difference `self − other` (used to normalize comparisons).
    #[must_use]
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(&a, &b)| a - b)
                .collect(),
            constant: self.constant - other.constant,
        }
    }
}

/// A comparison operator in a `fn` case guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
}

/// One atomic guard condition.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardAtom {
    /// A linear comparison `lhs REL rhs`.
    Cmp {
        /// Left-hand side.
        lhs: LinExpr,
        /// The comparison operator.
        rel: Rel,
        /// Right-hand side.
        rhs: LinExpr,
    },
    /// A congruence `expr % modulus == residue`.
    Mod {
        /// The linear expression being reduced.
        expr: LinExpr,
        /// The modulus (must be ≥ 1).
        modulus: u64,
        /// The expected residue.
        residue: u64,
    },
}

/// A case guard: a conjunction of atoms, or `otherwise` (the complement of
/// every earlier case's domain).
#[derive(Debug, Clone, PartialEq)]
pub enum Guard {
    /// `case atom and atom and …`
    Conj(Vec<GuardAtom>),
    /// `otherwise`
    Otherwise,
}

/// One `case guard: value;` arm of a `fn` item.
#[derive(Debug, Clone, PartialEq)]
pub struct FnCase {
    /// The domain guard.
    pub guard: Guard,
    /// The affine value on that domain.
    pub value: LinExpr,
}

/// A `fn` item: a semilinear function presented as guarded affine cases.
///
/// Equality ignores the [`span`](FnItem::span).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The item name.
    pub name: String,
    /// The parameter names (input dimension order).
    pub params: Vec<String>,
    /// The cases, in source order.
    pub cases: Vec<FnCase>,
    /// The span of the whole item.
    pub span: Span,
}

impl PartialEq for FnItem {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.params == other.params && self.cases == other.cases
    }
}

/// One eventual-min piece of a spec.
#[derive(Debug, Clone, PartialEq)]
pub enum Piece {
    /// An affine expression (quilt-affine with period 1).
    Affine(LinExpr),
    /// `floor(expr)`: the floored linear expression, quilt-affine with the
    /// period clearing the coefficient denominators.
    Floor(LinExpr),
    /// A general quilt-affine function given by its gradient, period and
    /// per-congruence-class offsets.
    Quilt {
        /// The gradient `∇g` (one rational per parameter).
        gradient: Vec<Rational>,
        /// The period `p`.
        period: u64,
        /// Offsets `B(a)` keyed by canonical residue tuple, sorted by key.
        offsets: Vec<(Vec<u64>, Rational)>,
    },
}

/// The body of a restriction in a `when` declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum WhenBody {
    /// A constant (the restriction has dimension 0).
    Constant(u64),
    /// A nested spec body over the remaining parameters.
    Block(SpecBody),
}

/// One `when param = value: …;` restriction declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct When {
    /// Index of the fixed parameter in the enclosing scope.
    pub param: usize,
    /// The fixed value `j` (must be below the threshold component).
    pub value: u64,
    /// The restriction's spec.
    pub body: WhenBody,
}

/// The body of a spec: threshold, eventual-min pieces, and restrictions.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecBody {
    /// The threshold `n` (one entry per parameter; all-zero when omitted).
    pub threshold: Vec<u64>,
    /// The eventual-min pieces `g_1, …, g_m`.
    pub pieces: Vec<Piece>,
    /// The restrictions, in source order.
    pub whens: Vec<When>,
}

/// A `spec` item: an oblivious specification in the shape of Theorem 5.2.
///
/// Equality ignores the [`span`](SpecItem::span).
#[derive(Debug, Clone)]
pub struct SpecItem {
    /// The item name.
    pub name: String,
    /// The parameter names (input dimension order).
    pub params: Vec<String>,
    /// The body.
    pub body: SpecBody,
    /// The span of the whole item.
    pub span: Span,
}

impl PartialEq for SpecItem {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.params == other.params && self.body == other.body
    }
}
