//! `crn-lang`: the textual `.crn` language for the `composable-crn`
//! workspace.
//!
//! A `.crn` document holds three kinds of named items:
//!
//! * **`crn` items** — raw chemical reaction networks: role declarations
//!   (`inputs X1 X2; output Y; leader L;`), an optional `computes` link to a
//!   function item, an optional `init` input encoding, and reactions written
//!   `a + 2b -> c;`;
//! * **`fn` items** — semilinear function presentations as guarded affine
//!   cases (`case x1 <= x2: x1;`), lowered to
//!   [`crn_semilinear::SemilinearFunction`];
//! * **`spec` items** — oblivious specifications in the shape of Theorem 5.2
//!   (`threshold`, eventual `min` pieces, `when` restrictions), lowered to
//!   [`crn_core::ObliviousSpec`];
//! * **`pipeline` items** — DAGs of named stages over `crn`/`pipeline`
//!   modules (`stage m = min_stage(a, b);`), composed into one
//!   [`crn_model::FunctionCrn`] by the capture-proof
//!   `crn_model::compose::Pipeline` engine.
//!
//! The pipeline is: [`parser::parse`] → [`ast::Document`] →
//! [`lower`] (to the workspace's semantic types) and [`printer::print`]
//! (back to canonical text).  Parsing normalizes expressions, so printing is
//! canonical and idempotent; corpus files are stored in printed form and
//! round-trip bit-identically.
//!
//! ```
//! use crn_lang::{parse, print};
//! use crn_lang::ast::Item;
//! use crn_lang::lower::lower_crn;
//!
//! let doc = parse("crn double { inputs X; output Y; X -> 2Y; }").unwrap();
//! let Item::Crn(item) = &doc.items[0] else { unreachable!() };
//! let lowered = lower_crn(item).unwrap();
//! assert!(lowered.crn.is_output_oblivious());
//! assert_eq!(print(&doc), "crn double {\n  inputs X;\n  output Y;\n  X -> 2Y;\n}\n");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod printer;
pub mod span;

pub use ast::{Document, Item};
pub use lower::{
    crn_to_item, lower_crn, lower_document, lower_fn, lower_item, lower_pipeline, lower_spec,
    spec_to_item, LoweredCrn, LoweredDocument, LoweredItem, LoweredPipeline,
};
pub use parser::parse;
pub use printer::print;
pub use span::{Diagnostic, Span};
