//! The canonical pretty-printer.
//!
//! [`print`](fn@print) renders a [`Document`] in the canonical `.crn`
//! layout: two-space
//! indents, one declaration per line, items separated by a blank line,
//! expressions written as sums in parameter order.  The output always
//! re-parses to an equal AST, and printing is idempotent — corpus files are
//! stored in this form, so `print(parse(file)) == file` byte for byte.

use std::fmt::Write as _;

use crn_numeric::Rational;

use crate::ast::{
    CrnItem, Document, FnItem, Guard, GuardAtom, Item, LinExpr, Piece, PipelineItem, Rel, SpecBody,
    SpecItem, When, WhenBody,
};

/// Renders a document in canonical form (ends with a single newline).
#[must_use]
pub fn print(document: &Document) -> String {
    let _span = crn_obs::span("lang.print");
    let mut out = String::new();
    for (i, item) in document.items.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        match item {
            Item::Crn(item) => print_crn(&mut out, item),
            Item::Fn(item) => print_fn(&mut out, item),
            Item::Spec(item) => print_spec(&mut out, item),
            Item::Pipeline(item) => print_pipeline(&mut out, item),
        }
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_crn(out: &mut String, item: &CrnItem) {
    let _ = writeln!(out, "crn {} {{", item.name);
    if item.inputs.is_empty() {
        out.push_str("  inputs;\n");
    } else {
        let _ = writeln!(out, "  inputs {};", item.inputs.join(" "));
    }
    let _ = writeln!(out, "  output {};", item.output);
    if let Some(leader) = &item.leader {
        let _ = writeln!(out, "  leader {leader};");
    }
    if let Some(computes) = &item.computes {
        let _ = writeln!(out, "  computes {computes};");
    }
    if !item.init.is_empty() {
        let entries: Vec<String> = item
            .init
            .iter()
            .map(|(species, count)| format!("{species} = {count}"))
            .collect();
        let _ = writeln!(out, "  init {};", entries.join(", "));
    }
    for reaction in &item.reactions {
        let _ = writeln!(
            out,
            "  {} -> {};",
            side_to_string(&reaction.reactants),
            side_to_string(&reaction.products)
        );
    }
    out.push_str("}\n");
}

fn print_pipeline(out: &mut String, item: &PipelineItem) {
    let _ = writeln!(out, "pipeline {} {{", item.name);
    if item.inputs.is_empty() {
        out.push_str("  inputs;\n");
    } else {
        let _ = writeln!(out, "  inputs {};", item.inputs.join(" "));
    }
    for stage in &item.stages {
        let _ = writeln!(
            out,
            "  stage {} = {}({});",
            stage.name,
            stage.module,
            stage.args.join(", ")
        );
    }
    let _ = writeln!(out, "  output {};", item.output);
    if let Some(computes) = &item.computes {
        let _ = writeln!(out, "  computes {computes};");
    }
    out.push_str("}\n");
}

fn side_to_string(side: &[(u64, String)]) -> String {
    if side.is_empty() {
        return "0".to_owned();
    }
    side.iter()
        .map(|(count, species)| {
            if *count == 1 {
                species.clone()
            } else {
                format!("{count}{species}")
            }
        })
        .collect::<Vec<_>>()
        .join(" + ")
}

/// Renders a normalized linear expression as a sum in parameter order.
#[must_use]
pub fn expr_to_string(expr: &LinExpr, params: &[String]) -> String {
    let mut terms: Vec<(Rational, Option<&str>)> = Vec::new();
    for (i, &coef) in expr.coeffs.iter().enumerate() {
        if !coef.is_zero() {
            terms.push((coef, Some(params[i].as_str())));
        }
    }
    if !expr.constant.is_zero() || terms.is_empty() {
        terms.push((expr.constant, None));
    }
    let mut out = String::new();
    for (i, (coef, var)) in terms.iter().enumerate() {
        let magnitude = coef.abs();
        if i == 0 {
            if coef.is_negative() {
                out.push('-');
            }
        } else if coef.is_negative() {
            out.push_str(" - ");
        } else {
            out.push_str(" + ");
        }
        match var {
            Some(name) => {
                if magnitude == Rational::ONE {
                    out.push_str(name);
                } else {
                    let _ = write!(out, "{magnitude} {name}");
                }
            }
            None => {
                let _ = write!(out, "{magnitude}");
            }
        }
    }
    out
}

fn rel_to_str(rel: Rel) -> &'static str {
    match rel {
        Rel::Lt => "<",
        Rel::Le => "<=",
        Rel::Gt => ">",
        Rel::Ge => ">=",
        Rel::Eq => "==",
    }
}

fn print_fn(out: &mut String, item: &FnItem) {
    let _ = writeln!(out, "fn {}({}) {{", item.name, item.params.join(", "));
    for case in &item.cases {
        match &case.guard {
            Guard::Otherwise => {
                let _ = writeln!(
                    out,
                    "  otherwise: {};",
                    expr_to_string(&case.value, &item.params)
                );
            }
            Guard::Conj(atoms) => {
                let rendered: Vec<String> = atoms
                    .iter()
                    .map(|atom| match atom {
                        GuardAtom::Cmp { lhs, rel, rhs } => format!(
                            "{} {} {}",
                            expr_to_string(lhs, &item.params),
                            rel_to_str(*rel),
                            expr_to_string(rhs, &item.params)
                        ),
                        GuardAtom::Mod {
                            expr,
                            modulus,
                            residue,
                        } => format!(
                            "{} % {modulus} == {residue}",
                            expr_to_string(expr, &item.params)
                        ),
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "  case {}: {};",
                    rendered.join(" and "),
                    expr_to_string(&case.value, &item.params)
                );
            }
        }
    }
    out.push_str("}\n");
}

fn print_spec(out: &mut String, item: &SpecItem) {
    let _ = writeln!(out, "spec {}({}) {{", item.name, item.params.join(", "));
    print_spec_body(out, &item.body, &item.params, 1);
    out.push_str("}\n");
}

fn print_spec_body(out: &mut String, body: &SpecBody, params: &[String], level: usize) {
    if body.threshold.iter().any(|&n| n != 0) {
        indent(out, level);
        let entries: Vec<String> = body.threshold.iter().map(u64::to_string).collect();
        let _ = writeln!(out, "threshold {};", entries.join(" "));
    }
    indent(out, level);
    let pieces: Vec<String> = body
        .pieces
        .iter()
        .map(|piece| piece_to_string(piece, params, level))
        .collect();
    let _ = writeln!(out, "min {};", pieces.join(", "));
    for when in &body.whens {
        print_when(out, when, params, level);
    }
}

fn piece_to_string(piece: &Piece, params: &[String], level: usize) -> String {
    match piece {
        Piece::Affine(expr) => expr_to_string(expr, params),
        Piece::Floor(expr) => format!("floor({})", expr_to_string(expr, params)),
        Piece::Quilt {
            gradient,
            period,
            offsets,
        } => {
            let mut out = String::new();
            out.push_str("quilt {\n");
            indent(&mut out, level + 1);
            let grads: Vec<String> = gradient.iter().map(Rational::to_string).collect();
            let _ = writeln!(out, "gradient {};", grads.join(" "));
            indent(&mut out, level + 1);
            let _ = writeln!(out, "period {period};");
            for (residues, value) in offsets {
                indent(&mut out, level + 1);
                let key: Vec<String> = residues.iter().map(u64::to_string).collect();
                let _ = writeln!(out, "offset ({}) = {value};", key.join(" "));
            }
            indent(&mut out, level);
            out.push('}');
            out
        }
    }
}

fn print_when(out: &mut String, when: &When, params: &[String], level: usize) {
    indent(out, level);
    match &when.body {
        WhenBody::Constant(value) => {
            let _ = writeln!(
                out,
                "when {} = {}: {value};",
                params[when.param], when.value
            );
        }
        WhenBody::Block(body) => {
            let _ = writeln!(out, "when {} = {}: {{", params[when.param], when.value);
            let remaining = crate::ast::remaining_params(params, when.param);
            print_spec_body(out, body, &remaining, level + 1);
            indent(out, level);
            out.push_str("}\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn canonical(source: &str) -> String {
        print(&parse(source).unwrap())
    }

    #[test]
    fn printing_is_idempotent() {
        let sources = [
            "crn max{inputs X1 X2;output Y;computes m;init X1=3,X2=7;X1->Z1+Y;X2->Z2+Y;Z1+Z2->K;K+Y->0;}",
            "fn f(x1,x2){case x1<=x2:x1;otherwise:x2;}",
            "spec s(x){threshold 2;min floor(3/2 x - 2),quilt{gradient 1;period 2;offset(0)=0;offset(1)=1;};when x=0:0;when x=1:0;}",
            "spec m(a,b){threshold 1 0;min a+b;when a=0:{min 2 b;}}",
        ];
        for source in sources {
            let once = canonical(source);
            let twice = canonical(&once);
            assert_eq!(once, twice, "printing not idempotent for {source}");
            assert_eq!(
                parse(source).unwrap(),
                parse(&once).unwrap(),
                "printing changed the AST for {source}"
            );
        }
    }

    #[test]
    fn canonical_crn_layout() {
        let text = canonical("crn d { inputs X; output Y; X -> 2Y; }");
        assert_eq!(text, "crn d {\n  inputs X;\n  output Y;\n  X -> 2Y;\n}\n");
    }

    #[test]
    fn expression_rendering() {
        let doc = parse("fn f(x1, x2) { case x1 >= 0: 3/2 x1 - x2 - 1; otherwise: 0; }").unwrap();
        let text = print(&doc);
        assert!(text.contains("case x1 >= 0: 3/2 x1 - x2 - 1;"));
        assert!(text.contains("otherwise: 0;"));
    }

    #[test]
    fn zero_input_crn_layout() {
        let text = canonical("crn five { inputs; output Y; leader L; L -> 5Y; }");
        assert_eq!(
            text,
            "crn five {\n  inputs;\n  output Y;\n  leader L;\n  L -> 5Y;\n}\n"
        );
        assert_eq!(canonical(&text), text);
    }

    #[test]
    fn zero_threshold_is_omitted() {
        let text = canonical("spec s(x1, x2) { threshold 0 0; min x1, x2; }");
        assert_eq!(text, "spec s(x1, x2) {\n  min x1, x2;\n}\n");
    }

    #[test]
    fn pipeline_layout_and_idempotence() {
        let text = canonical(
            "pipeline two_min{inputs a b;stage m=min_stage(a,b);stage d=doubler(m);output d;computes f;}",
        );
        assert_eq!(
            text,
            "pipeline two_min {\n  inputs a b;\n  stage m = min_stage(a, b);\n  \
             stage d = doubler(m);\n  output d;\n  computes f;\n}\n"
        );
        assert_eq!(canonical(&text), text);
    }

    #[test]
    fn quilt_piece_layout() {
        let text = canonical(
            "spec s(x) { min quilt { gradient 2; period 2; offset (1) = 1; offset (0) = 0; }; }",
        );
        assert_eq!(
            text,
            "spec s(x) {\n  min quilt {\n    gradient 2;\n    period 2;\n    offset (0) = 0;\n    offset (1) = 1;\n  };\n}\n"
        );
    }
}
