//! Lowering between the `.crn` AST and the workspace's semantic types, in
//! both directions:
//!
//! * [`lower_crn`] / [`crn_to_item`] — `crn` items ↔ [`FunctionCrn`];
//! * [`lower_fn`] — `fn` items → [`SemilinearFunction`] presentations;
//! * [`lower_spec`] / [`spec_to_item`] — `spec` items ↔ [`ObliviousSpec`];
//! * [`lower_pipeline`] / [`lower_document`] — `pipeline` items →
//!   composed [`FunctionCrn`]s through the capture-proof
//!   [`crn_model::compose::Pipeline`] engine.
//!
//! Lowering errors are reported as [`Diagnostic`]s anchored to the item's
//! span, so the CLI renders them exactly like parse errors.

use std::collections::BTreeMap;

use crn_core::quilt::QuiltAffine;
use crn_core::spec::{EventuallyMin, ObliviousSpec};
use crn_model::compose::{PipeSource, Pipeline, StageId};
use crn_model::{Crn, FunctionCrn, Reaction};
use crn_numeric::{lcm_u64, CongruenceClass, NVec, QVec, Rational, ZVec};
use crn_semilinear::{AffinePiece, ModSet, SemilinearFunction, SemilinearSet, ThresholdSet};

use crate::ast::{
    CrnItem, Document, FnItem, Guard, GuardAtom, Item, LinExpr, Piece, PipelineItem, ReactionAst,
    Rel, SpecBody, SpecItem, When, WhenBody,
};
use crate::parser::RESERVED;
use crate::span::{Diagnostic, Span};

/// A lowered `crn` item: the function CRN plus the item's optional extras.
#[derive(Debug, Clone)]
pub struct LoweredCrn {
    /// The CRN with resolved roles.
    pub crn: FunctionCrn,
    /// The initial input vector from the `init` declaration, in input order.
    pub init: Option<NVec>,
    /// The name of the `fn`/`spec` item this CRN claims to compute.
    pub computes: Option<String>,
}

/// Lowers a `crn` item to a [`FunctionCrn`].
///
/// # Errors
///
/// Returns a [`Diagnostic`] when the roles are inconsistent (duplicate
/// inputs, output used as input, …) or the `init` declaration names a
/// non-input species.
pub fn lower_crn(item: &CrnItem) -> Result<LoweredCrn, Diagnostic> {
    let mut crn = Crn::new();
    // Intern the role species first so they exist even when no reaction
    // mentions them (e.g. a constant CRN ignores its input).
    for input in &item.inputs {
        crn.add_species(input);
    }
    crn.add_species(&item.output);
    if let Some(leader) = &item.leader {
        crn.add_species(leader);
    }
    for reaction in &item.reactions {
        let side = |crn: &mut Crn, terms: &[(u64, String)]| {
            terms
                .iter()
                .map(|(count, name)| (crn.add_species(name), *count))
                .collect::<Vec<_>>()
        };
        let reactants = side(&mut crn, &reaction.reactants);
        let products = side(&mut crn, &reaction.products);
        crn.add_reaction(Reaction::new(reactants, products));
    }
    let inputs: Vec<&str> = item.inputs.iter().map(String::as_str).collect();
    let function =
        FunctionCrn::with_named_roles(crn, &inputs, &item.output, item.leader.as_deref()).map_err(
            |e| {
                Diagnostic::new(
                    format!("invalid roles in crn `{}`: {e}", item.name),
                    item.span,
                )
            },
        )?;
    let init = if item.init.is_empty() {
        None
    } else {
        let mut counts = vec![0u64; item.inputs.len()];
        for (species, count) in &item.init {
            let Some(index) = item.inputs.iter().position(|i| i == species) else {
                return Err(Diagnostic::new(
                    format!(
                        "`init` sets `{species}`, which is not an input of crn `{}`",
                        item.name
                    ),
                    item.span,
                )
                .with_help("`init` gives the input encoding; only input species can be set"));
            };
            counts[index] = *count;
        }
        Some(NVec::from(counts))
    };
    Ok(LoweredCrn {
        crn: function,
        init,
        computes: item.computes.clone(),
    })
}

/// A lowered item of any kind (see [`lower_item`]).
#[derive(Debug, Clone)]
pub enum LoweredItem {
    /// A lowered `crn` item.
    Crn(LoweredCrn),
    /// A lowered `fn` item.
    SemilinearFn(SemilinearFunction),
    /// A lowered `spec` item.
    Spec(ObliviousSpec),
}

/// Lowers any *self-contained* item by dispatching on its kind — the single
/// place that maps item kinds to lowering functions.
///
/// # Errors
///
/// Propagates the kind-specific lowering diagnostics.  `pipeline` items are
/// rejected here because they reference sibling items; lower whole documents
/// with [`lower_document`], or a single pipeline with [`lower_pipeline`].
pub fn lower_item(item: &Item) -> Result<LoweredItem, Diagnostic> {
    match item {
        Item::Crn(item) => lower_crn(item).map(LoweredItem::Crn),
        Item::Fn(item) => lower_fn(item).map(LoweredItem::SemilinearFn),
        Item::Spec(item) => lower_spec(item).map(LoweredItem::Spec),
        Item::Pipeline(item) => Err(Diagnostic::new(
            format!(
                "pipeline `{}` cannot be lowered in isolation (its stages reference other items)",
                item.name
            ),
            item.span,
        )
        .with_help("use `lower_document`, or `lower_pipeline` with a module lookup")),
    }
}

/// A lowered `pipeline` item: the composed CRN plus composition metadata.
#[derive(Debug, Clone)]
pub struct LoweredPipeline {
    /// The composed function CRN (inputs in `inputs` order, fresh species).
    pub crn: FunctionCrn,
    /// The name of the `fn`/`spec` item this pipeline claims to compute.
    pub computes: Option<String>,
    /// Number of composed stages.
    pub stage_count: usize,
    /// Stage names whose output feeds a later stage although their module is
    /// not output-oblivious — Observation 2.2 does not cover such wirings, so
    /// callers surface these as diagnostics (the CLI's `compose` refuses them
    /// without `--allow-non-oblivious`).
    pub non_oblivious_feeders: Vec<String>,
}

/// Lowers a `pipeline` item by composing its stages with the capture-proof
/// [`Pipeline`] engine.  `module` resolves a stage's module name to a
/// function CRN (typically the document's `crn` items and earlier
/// pipelines).
///
/// # Errors
///
/// Returns a [`Diagnostic`] anchored to the offending stage for unresolved
/// modules, arity mismatches and invalid wiring.
pub fn lower_pipeline<'a>(
    item: &PipelineItem,
    mut module: impl FnMut(&str) -> Option<&'a FunctionCrn>,
) -> Result<LoweredPipeline, Diagnostic> {
    let mut pipeline = Pipeline::new(item.inputs.len());
    let mut stage_ids: Vec<(String, StageId)> = Vec::new();
    for stage in &item.stages {
        let Some(m) = module(&stage.module) else {
            return Err(Diagnostic::new(
                format!(
                    "stage `{}` uses `{}`, but no crn or pipeline item of that name is in scope",
                    stage.name, stage.module
                ),
                stage.span,
            )
            .with_help("stages reference crn items, or pipeline items declared earlier"));
        };
        let mut feeds = Vec::with_capacity(stage.args.len());
        for arg in &stage.args {
            let source = item
                .inputs
                .iter()
                .position(|input| input == arg)
                .map(PipeSource::Global)
                .or_else(|| {
                    stage_ids
                        .iter()
                        .find(|(name, _)| name == arg)
                        .map(|&(_, id)| PipeSource::Stage(id))
                });
            let Some(source) = source else {
                return Err(Diagnostic::new(
                    format!(
                        "stage `{}` is wired to `{arg}`, which is neither a pipeline input \
                         nor an earlier stage",
                        stage.name
                    ),
                    stage.span,
                ));
            };
            feeds.push(source);
        }
        let id = pipeline
            .add_stage(&stage.name, m, &feeds)
            .map_err(|e| Diagnostic::new(format!("stage `{}`: {e}", stage.name), stage.span))?;
        stage_ids.push((stage.name.clone(), id));
    }
    let Some(&(_, output)) = stage_ids.iter().find(|(name, _)| *name == item.output) else {
        return Err(Diagnostic::new(
            format!(
                "pipeline `{}` outputs `{}`, which is not a stage",
                item.name, item.output
            ),
            item.span,
        ));
    };
    let non_oblivious_feeders = pipeline
        .non_oblivious_feeders()
        .into_iter()
        .map(|(_, label)| label)
        .collect();
    let crn = pipeline.build(output).map_err(|e| {
        Diagnostic::new(
            format!("pipeline `{}` does not compose: {e}", item.name),
            item.span,
        )
    })?;
    Ok(LoweredPipeline {
        crn,
        computes: item.computes.clone(),
        stage_count: item.stages.len(),
        non_oblivious_feeders,
    })
}

/// A fully lowered document: every item by kind, with pipelines composed
/// against the document's own `crn` items and earlier pipelines.
#[derive(Debug, Clone, Default)]
pub struct LoweredDocument {
    /// Lowered `crn` items, in source order.
    pub crns: Vec<(String, LoweredCrn)>,
    /// Lowered `fn` items, in source order.
    pub fns: Vec<(String, SemilinearFunction)>,
    /// Lowered `spec` items, in source order.
    pub specs: Vec<(String, ObliviousSpec)>,
    /// Lowered `pipeline` items, in source order.
    pub pipelines: Vec<(String, LoweredPipeline)>,
}

/// Lowers a whole document.  Non-pipeline items are lowered first (a
/// pipeline may reference a `crn` item declared below it); pipelines are
/// then composed in source order, each seeing every `crn` item plus the
/// pipelines lowered before it.
///
/// # Errors
///
/// Propagates the first item's lowering diagnostic.
pub fn lower_document(doc: &Document) -> Result<LoweredDocument, Diagnostic> {
    let _span = crn_obs::span("lang.lower");
    let mut out = LoweredDocument::default();
    for item in &doc.items {
        match item {
            Item::Crn(item) => out.crns.push((item.name.clone(), lower_crn(item)?)),
            Item::Fn(item) => out.fns.push((item.name.clone(), lower_fn(item)?)),
            Item::Spec(item) => out.specs.push((item.name.clone(), lower_spec(item)?)),
            Item::Pipeline(_) => {}
        }
    }
    for item in &doc.items {
        if let Item::Pipeline(item) = item {
            let lowered = lower_pipeline(item, |name| {
                out.crns
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, c)| &c.crn)
                    .or_else(|| {
                        out.pipelines
                            .iter()
                            .find(|(n, _)| n == name)
                            .map(|(_, p)| &p.crn)
                    })
            })?;
            out.pipelines.push((item.name.clone(), lowered));
        }
    }
    Ok(out)
}

/// The least common multiple of the denominators of `expr`'s coefficients and
/// constant (always ≥ 1).
fn denominator_lcm(expr: &LinExpr) -> Result<u64, Diagnostic> {
    let mut lcm = 1u64;
    for value in expr.coeffs.iter().chain(Some(&expr.constant)) {
        let denom = u64::try_from(value.denom())
            .map_err(|_| Diagnostic::new("coefficient denominator overflows", Span::default()))?;
        lcm = lcm_u64(lcm, denom);
    }
    Ok(lcm)
}

/// Scales `expr` by `scale` and returns integer coefficients and constant.
fn scaled_integer(expr: &LinExpr, scale: u64, span: Span) -> Result<(Vec<i64>, i64), Diagnostic> {
    let scale = Rational::from(scale as i64);
    let to_i64 = |value: Rational| -> Result<i64, Diagnostic> {
        (value * scale)
            .to_integer()
            .and_then(|v| i64::try_from(v).ok())
            .ok_or_else(|| {
                Diagnostic::new("coefficient overflows after clearing denominators", span)
            })
    };
    let coeffs = expr
        .coeffs
        .iter()
        .map(|&c| to_i64(c))
        .collect::<Result<Vec<_>, _>>()?;
    let constant = to_i64(expr.constant)?;
    Ok((coeffs, constant))
}

/// Lowers one guard atom to a semilinear set.
fn lower_atom(atom: &GuardAtom, dim: usize, span: Span) -> Result<SemilinearSet, Diagnostic> {
    match atom {
        GuardAtom::Cmp { lhs, rel, rhs } => {
            // Normalize to `diff ≥ bound` form(s): diff = rhs − lhs for ≤,
            // lhs − rhs for ≥, both for ==.  Scaling by a positive integer
            // preserves the comparison; strict inequalities tighten to ≥ 1
            // because all quantities are integers on N^d.
            let sets = |diff: LinExpr, strict: bool| -> Result<SemilinearSet, Diagnostic> {
                let scale = denominator_lcm(&diff)?;
                let (coeffs, constant) = scaled_integer(&diff, scale, span)?;
                let bound = if strict { 1 } else { 0 };
                Ok(SemilinearSet::threshold(ThresholdSet::new(
                    ZVec::from(coeffs),
                    bound - constant,
                )))
            };
            match rel {
                Rel::Le => sets(rhs.sub(lhs), false),
                Rel::Lt => sets(rhs.sub(lhs), true),
                Rel::Ge => sets(lhs.sub(rhs), false),
                Rel::Gt => sets(lhs.sub(rhs), true),
                Rel::Eq => Ok(sets(rhs.sub(lhs), false)?.and(sets(lhs.sub(rhs), false)?)),
            }
        }
        GuardAtom::Mod {
            expr,
            modulus,
            residue,
        } => {
            if denominator_lcm(expr)? != 1 {
                return Err(Diagnostic::new(
                    "congruence guards need integer coefficients".to_owned(),
                    span,
                )
                .with_help("multiply the congruence through by the denominators first"));
            }
            let (coeffs, constant) = scaled_integer(expr, 1, span)?;
            let _ = dim;
            Ok(SemilinearSet::modular(ModSet::new(
                ZVec::from(coeffs),
                *residue as i64 - constant,
                *modulus,
            )))
        }
    }
}

/// Lowers a `fn` item to a [`SemilinearFunction`] presentation.
///
/// Each `case` contributes one `(domain, affine piece)` pair; `otherwise`
/// denotes the complement of the union of every earlier case's domain.
/// Disjointness and totality are *not* decided here (they are undecidable
/// from the syntax alone); use
/// [`SemilinearFunction::validate_on_box`] as `crn check` does.
///
/// # Errors
///
/// Returns a [`Diagnostic`] for guards that cannot be lowered (non-integer
/// congruence coefficients, overflow) or an `otherwise` in the first case
/// position with later cases (ambiguous by construction).
pub fn lower_fn(item: &FnItem) -> Result<SemilinearFunction, Diagnostic> {
    let dim = item.params.len();
    let mut domains: Vec<SemilinearSet> = Vec::new();
    let mut pieces: Vec<(SemilinearSet, AffinePiece)> = Vec::new();
    for (index, case) in item.cases.iter().enumerate() {
        let domain = match &case.guard {
            Guard::Conj(atoms) => {
                let mut set: Option<SemilinearSet> = None;
                for atom in atoms {
                    let lowered = lower_atom(atom, dim, item.span)?;
                    set = Some(match set {
                        None => lowered,
                        Some(acc) => acc.and(lowered),
                    });
                }
                set.expect("the grammar requires at least one atom")
            }
            Guard::Otherwise => {
                if index + 1 != item.cases.len() {
                    return Err(Diagnostic::new(
                        format!("`otherwise` must be the last case of fn `{}`", item.name),
                        item.span,
                    ));
                }
                match domains.iter().cloned().reduce(SemilinearSet::or) {
                    Some(union) => union.not(),
                    None => SemilinearSet::all(dim),
                }
            }
        };
        domains.push(domain.clone());
        let value = AffinePiece::new(QVec::from(case.value.coeffs.clone()), case.value.constant);
        pieces.push((domain, value));
    }
    SemilinearFunction::new(dim, pieces).map_err(|e| {
        Diagnostic::new(
            format!("invalid presentation for fn `{}`: {e}", item.name),
            item.span,
        )
    })
}

/// Builds the quilt-affine function `x ↦ ⌊gradient·x + constant⌋`.
fn floor_quilt(expr: &LinExpr, span: Span) -> Result<QuiltAffine, Diagnostic> {
    let dim = expr.coeffs.len();
    let gradient = QVec::from(expr.coeffs.clone());
    if !gradient.is_nonnegative() {
        return Err(Diagnostic::new(
            "floor pieces need a nonnegative gradient".to_owned(),
            span,
        ));
    }
    let mut period = 1u64;
    for coef in &expr.coeffs {
        let denom = u64::try_from(coef.denom())
            .map_err(|_| Diagnostic::new("gradient denominator overflows", span))?;
        period = lcm_u64(period, denom);
    }
    let mut offsets = BTreeMap::new();
    for class in CongruenceClass::enumerate_all(dim, period) {
        let rep = class.representative();
        let value = gradient.dot_n(&rep) + expr.constant;
        offsets.insert(
            rep.as_slice().to_vec(),
            Rational::from(value.floor()) - gradient.dot_n(&rep),
        );
    }
    QuiltAffine::new(gradient, period, offsets)
        .map_err(|e| Diagnostic::new(format!("invalid floor piece: {e}"), span))
}

/// Lowers one spec piece to a [`QuiltAffine`] function.
fn lower_piece(piece: &Piece, span: Span) -> Result<QuiltAffine, Diagnostic> {
    match piece {
        Piece::Affine(expr) => {
            QuiltAffine::affine(QVec::from(expr.coeffs.clone()), expr.constant)
                .map_err(|e| Diagnostic::new(format!("invalid affine piece: {e}"), span).with_help(
                    "an affine piece must be integer-valued on N^d; use floor(…) or quilt { … } for fractional gradients",
                ))
        }
        Piece::Floor(expr) => floor_quilt(expr, span),
        Piece::Quilt {
            gradient,
            period,
            offsets,
        } => {
            let table: BTreeMap<Vec<u64>, Rational> =
                offsets.iter().cloned().collect();
            QuiltAffine::new(QVec::from(gradient.clone()), *period, table)
                .map_err(|e| Diagnostic::new(format!("invalid quilt piece: {e}"), span))
        }
    }
}

fn lower_spec_body(
    body: &SpecBody,
    params: &[String],
    name: &str,
    span: Span,
) -> Result<ObliviousSpec, Diagnostic> {
    let dim = params.len();
    if dim == 0 {
        // Dimension 0: the body must be a single constant piece.
        if body.whens.is_empty() && body.pieces.len() == 1 {
            if let Piece::Affine(expr) = &body.pieces[0] {
                if let Some(value) = expr
                    .constant
                    .to_integer()
                    .and_then(|v| u64::try_from(v).ok())
                {
                    return Ok(ObliviousSpec::Constant(value));
                }
            }
        }
        return Err(Diagnostic::new(
            format!("spec `{name}` has no parameters, so its body must be a single nonnegative constant"),
            span,
        )
        .with_help("write `min 5;` with no threshold or restrictions"));
    }
    let threshold = NVec::from(body.threshold.clone());
    let pieces = body
        .pieces
        .iter()
        .map(|piece| lower_piece(piece, span))
        .collect::<Result<Vec<_>, _>>()?;
    let eventual = EventuallyMin::new(threshold, pieces)
        .map_err(|e| Diagnostic::new(format!("invalid spec `{name}`: {e}"), span))?;
    let mut restrictions = BTreeMap::new();
    for when in &body.whens {
        let key = (when.param, when.value);
        if restrictions.contains_key(&key) {
            return Err(Diagnostic::new(
                format!(
                    "duplicate restriction `when {} = {}` in spec `{name}`",
                    params[when.param], when.value
                ),
                span,
            ));
        }
        let remaining = crate::ast::remaining_params(params, when.param);
        let sub = match &when.body {
            WhenBody::Constant(value) => ObliviousSpec::Constant(*value),
            WhenBody::Block(inner) => lower_spec_body(inner, &remaining, name, span)?,
        };
        restrictions.insert(key, sub);
    }
    // Pre-check coverage so the error names the parameter, not its index.
    for (i, param) in params.iter().enumerate() {
        for j in 0..body.threshold[i] {
            if !restrictions.contains_key(&(i, j)) {
                return Err(Diagnostic::new(
                    format!("spec `{name}` is missing the restriction `when {param} = {j}`"),
                    span,
                )
                .with_help(format!(
                    "every value below the threshold needs one, e.g. `when {param} = {j}: …;`"
                )));
            }
        }
    }
    ObliviousSpec::compound(eventual, restrictions)
        .map_err(|e| Diagnostic::new(format!("invalid spec `{name}`: {e}"), span))
}

/// Lowers a `spec` item to an [`ObliviousSpec`].
///
/// # Errors
///
/// Returns a [`Diagnostic`] for malformed pieces (non-integer affine values,
/// missing quilt offsets) or missing/duplicate restrictions.
pub fn lower_spec(item: &SpecItem) -> Result<ObliviousSpec, Diagnostic> {
    lower_spec_body(&item.body, &item.params, &item.name, item.span)
}

// ----- the reverse direction (semantic types → AST) -------------------------

/// Makes `name` a valid, non-reserved `.crn` identifier (used when emitting
/// synthesized CRNs, whose composed species names are already valid; this is
/// a safety net for exotic inputs).
fn sanitize(name: &str, taken: &[String]) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || !(out.as_bytes()[0].is_ascii_alphabetic() || out.as_bytes()[0] == b'_') {
        out.insert(0, 's');
    }
    while RESERVED.contains(&out.as_str()) || taken.contains(&out) {
        out.push('_');
    }
    out
}

/// Converts a [`FunctionCrn`] into a `crn` item named `name`.
#[must_use]
pub fn crn_to_item(
    name: &str,
    crn: &FunctionCrn,
    computes: Option<&str>,
    init: Option<&NVec>,
) -> CrnItem {
    let species_set = crn.crn().species();
    let mut names: Vec<String> = Vec::with_capacity(species_set.len());
    for (_, raw) in species_set.iter_named() {
        let sane = sanitize(raw, &names);
        names.push(sane);
    }
    let name_of = |s: crn_model::Species| names[s.index()].clone();
    let side = |terms: &BTreeMap<crn_model::Species, u64>| {
        terms
            .iter()
            .map(|(&species, &count)| (count, name_of(species)))
            .collect::<Vec<_>>()
    };
    let reactions = crn
        .crn()
        .reactions()
        .iter()
        .map(|r| ReactionAst {
            reactants: side(r.reactants()),
            products: side(r.products()),
            span: Span::default(),
        })
        .collect();
    let inputs: Vec<String> = crn.roles().inputs.iter().map(|&s| name_of(s)).collect();
    let init = init
        .map(|x| {
            inputs
                .iter()
                .zip(x.iter())
                .map(|(input, &count)| (input.clone(), count))
                .collect()
        })
        .unwrap_or_default();
    CrnItem {
        name: sanitize(name, &[]),
        inputs,
        output: name_of(crn.output()),
        output_span: Span::default(),
        leader: crn.leader().map(name_of),
        computes: computes.map(str::to_owned),
        init,
        reactions,
        span: Span::default(),
    }
}

/// Default parameter names `x1, …, xd`.
#[must_use]
pub fn default_params(dim: usize) -> Vec<String> {
    (1..=dim).map(|i| format!("x{i}")).collect()
}

fn quilt_to_piece(g: &QuiltAffine) -> Piece {
    if g.period() == 1 {
        let offset = g.offset_of(&NVec::zeros(g.dim())).unwrap_or(Rational::ZERO);
        Piece::Affine(LinExpr {
            coeffs: g.gradient().as_slice().to_vec(),
            constant: offset,
        })
    } else {
        let offsets = CongruenceClass::enumerate_all(g.dim(), g.period())
            .iter()
            .map(|class| {
                let rep = class.representative();
                let key = rep.as_slice().to_vec();
                let value = g.offset_of(&rep).unwrap_or(Rational::ZERO);
                (key, value)
            })
            .collect();
        Piece::Quilt {
            gradient: g.gradient().as_slice().to_vec(),
            period: g.period(),
            offsets,
        }
    }
}

fn spec_to_body(spec: &ObliviousSpec) -> SpecBody {
    match spec {
        ObliviousSpec::Constant(value) => SpecBody {
            threshold: Vec::new(),
            pieces: vec![Piece::Affine(LinExpr::constant(
                0,
                Rational::from(*value as i64),
            ))],
            whens: Vec::new(),
        },
        ObliviousSpec::Compound {
            eventual,
            restrictions,
        } => {
            let threshold = eventual.threshold().as_slice().to_vec();
            let pieces = eventual.pieces().iter().map(quilt_to_piece).collect();
            let whens = restrictions
                .iter()
                .map(|(&(param, value), sub)| {
                    let body = if sub.dim() == 0 {
                        // A dimension-0 restriction is a constant by
                        // construction; evaluate it at the empty input.
                        WhenBody::Constant(sub.eval(&NVec::zeros(0)).expect("constants evaluate"))
                    } else {
                        WhenBody::Block(spec_to_body(sub))
                    };
                    When { param, value, body }
                })
                .collect();
            SpecBody {
                threshold,
                pieces,
                whens,
            }
        }
    }
}

/// Converts an [`ObliviousSpec`] into a `spec` item named `name`, with
/// parameters `x1, …, xd`.
#[must_use]
pub fn spec_to_item(name: &str, spec: &ObliviousSpec) -> SpecItem {
    SpecItem {
        name: sanitize(name, &[]),
        params: default_params(spec.dim()),
        body: spec_to_body(spec),
        span: Span::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Item;
    use crate::parser::parse;
    use crn_numeric::NVec;

    fn fn_item(source: &str) -> FnItem {
        let doc = parse(source).unwrap();
        let Item::Fn(item) = doc.items.into_iter().next().unwrap() else {
            panic!("expected a fn item");
        };
        item
    }

    fn spec_item(source: &str) -> SpecItem {
        let doc = parse(source).unwrap();
        let Item::Spec(item) = doc.items.into_iter().next().unwrap() else {
            panic!("expected a spec item");
        };
        item
    }

    fn crn_item(source: &str) -> CrnItem {
        let doc = parse(source).unwrap();
        let Item::Crn(item) = doc.items.into_iter().next().unwrap() else {
            panic!("expected a crn item");
        };
        item
    }

    #[test]
    fn lower_crn_resolves_roles_and_init() {
        let item = crn_item(
            "crn max { inputs X1 X2; output Y; init X2 = 5; X1 -> Z1 + Y; X2 -> Z2 + Y; Z1 + Z2 -> K; K + Y -> 0; }",
        );
        let lowered = lower_crn(&item).unwrap();
        assert_eq!(lowered.crn.dim(), 2);
        assert!(!lowered.crn.has_leader());
        assert_eq!(lowered.init, Some(NVec::from(vec![0, 5])));
        assert_eq!(lowered.crn.reaction_count(), 4);
    }

    #[test]
    fn lower_crn_rejects_non_input_init() {
        let item = crn_item("crn c { inputs X; output Y; init Y = 1; X -> Y; }");
        let err = lower_crn(&item).unwrap_err();
        assert!(err.message.contains("not an input"));
    }

    #[test]
    fn lowered_fn_matches_closed_form() {
        let item = fn_item("fn max2(x1, x2) { case x1 <= x2: x2; otherwise: x1; }");
        let f = lower_fn(&item).unwrap();
        f.validate_on_box(5).unwrap();
        for x1 in 0..5u64 {
            for x2 in 0..5u64 {
                assert_eq!(f.eval(&NVec::from(vec![x1, x2])).unwrap(), x1.max(x2));
            }
        }
    }

    #[test]
    fn lowered_fn_with_congruences() {
        let item = fn_item(
            "fn stair(x) { case x <= 2: 0; case x >= 3 and x % 2 == 0: 2 x; case x >= 3 and x % 2 == 1: 2 x + 1; }",
        );
        let f = lower_fn(&item).unwrap();
        f.validate_on_box(10).unwrap();
        for x in 0..10u64 {
            let expected = if x < 3 { 0 } else { 2 * x + x % 2 };
            assert_eq!(f.eval(&NVec::from(vec![x])).unwrap(), expected);
        }
    }

    #[test]
    fn lowered_fn_with_rational_guard() {
        // x1/2 <= x2 ⟺ x1 <= 2 x2.
        let item = fn_item("fn f(x1, x2) { case 1/2 x1 <= x2: 1; otherwise: 0; }");
        let f = lower_fn(&item).unwrap();
        assert_eq!(f.eval(&NVec::from(vec![4, 2])).unwrap(), 1);
        assert_eq!(f.eval(&NVec::from(vec![5, 2])).unwrap(), 0);
    }

    #[test]
    fn congruence_with_fractions_rejected() {
        let item = fn_item("fn f(x) { case 1/2 x % 2 == 0: 1; otherwise: 0; }");
        let err = lower_fn(&item).unwrap_err();
        assert!(err.message.contains("integer coefficients"));
    }

    #[test]
    fn lowered_spec_evaluates_like_its_meaning() {
        let item = spec_item("spec minone(x) { threshold 1; min 1; when x = 0: 0; }");
        let spec = lower_spec(&item).unwrap();
        for x in 0..6u64 {
            assert_eq!(spec.eval(&NVec::from(vec![x])).unwrap(), x.min(1));
        }
    }

    #[test]
    fn floor_piece_matches_closed_form() {
        let item = spec_item("spec g(x) { min floor(3/2 x); }");
        let spec = lower_spec(&item).unwrap();
        for x in 0..12u64 {
            assert_eq!(spec.eval(&NVec::from(vec![x])).unwrap(), 3 * x / 2);
        }
    }

    #[test]
    fn missing_restriction_names_the_parameter() {
        let item = spec_item("spec s(x) { threshold 2; min x; when x = 0: 0; }");
        let err = lower_spec(&item).unwrap_err();
        assert!(err.message.contains("when x = 1"), "{}", err.message);
    }

    #[test]
    fn spec_round_trips_through_item() {
        let item = spec_item(
            "spec s(x1, x2) { threshold 1 0; min x1 + x2, floor(1/2 x1 + 1/2 x2 + 3); when x1 = 0: { min 2 x2; } }",
        );
        let spec = lower_spec(&item).unwrap();
        let back = spec_to_item("s", &spec);
        let spec2 = lower_spec(&back).unwrap();
        for x1 in 0..5u64 {
            for x2 in 0..5u64 {
                let x = NVec::from(vec![x1, x2]);
                assert_eq!(spec.eval(&x).unwrap(), spec2.eval(&x).unwrap());
            }
        }
    }

    #[test]
    fn crn_round_trips_through_item() {
        let item = crn_item(
            "crn max { inputs X1 X2; output Y; init X1 = 3, X2 = 7; X1 -> Z1 + Y; X2 -> Z2 + Y; Z1 + Z2 -> K; K + Y -> 0; }",
        );
        let lowered = lower_crn(&item).unwrap();
        let back = crn_to_item("max", &lowered.crn, None, lowered.init.as_ref());
        assert_eq!(back.inputs, item.inputs);
        assert_eq!(back.output, item.output);
        assert_eq!(back.init, item.init);
        let relowered = lower_crn(&back).unwrap();
        assert_eq!(relowered.crn.reaction_count(), lowered.crn.reaction_count());
    }

    #[test]
    fn sanitize_avoids_reserved_and_duplicates() {
        assert_eq!(sanitize("min", &[]), "min_");
        assert_eq!(sanitize("a b", &[]), "a_b");
        assert_eq!(sanitize("1X", &[]), "s1X");
        assert_eq!(sanitize("Y", &["Y".into()]), "Y_");
    }

    const PIPELINE_DOC: &str = "\
        crn min_stage { inputs X1 X2; output Y; X1 + X2 -> Y; }\n\
        crn double_stage { inputs X; output Y; X -> 2Y; }\n\
        pipeline two_min {\n  inputs a b;\n  stage m = min_stage(a, b);\n  \
        stage d = double_stage(m);\n  output d;\n  computes f;\n}\n";

    #[test]
    fn lower_document_composes_pipelines() {
        let doc = parse(PIPELINE_DOC).unwrap();
        let lowered = lower_document(&doc).unwrap();
        assert_eq!(lowered.crns.len(), 2);
        assert_eq!(lowered.pipelines.len(), 1);
        let (name, pipeline) = &lowered.pipelines[0];
        assert_eq!(name, "two_min");
        assert_eq!(pipeline.stage_count, 2);
        assert_eq!(pipeline.computes.as_deref(), Some("f"));
        assert!(pipeline.non_oblivious_feeders.is_empty());
        assert_eq!(pipeline.crn.dim(), 2);
        assert!(pipeline.crn.is_output_oblivious());
        // The composed CRN computes 2·min.
        let v =
            crn_model::check_stable_computation(&pipeline.crn, &NVec::from(vec![2, 3]), 4, 50_000)
                .unwrap();
        assert!(v.is_correct());
    }

    #[test]
    fn pipelines_compose_against_earlier_pipelines() {
        // A second pipeline uses the first as a module: 2·(2·min).
        let source = format!(
            "{PIPELINE_DOC}pipeline four_min {{\n  inputs a b;\n  \
             stage t = two_min(a, b);\n  stage d = double_stage(t);\n  output d;\n}}\n"
        );
        let doc = parse(&source).unwrap();
        let lowered = lower_document(&doc).unwrap();
        assert_eq!(lowered.pipelines.len(), 2);
        let four = &lowered.pipelines[1].1;
        let v = crn_model::check_stable_computation(&four.crn, &NVec::from(vec![2, 3]), 8, 200_000)
            .unwrap();
        assert!(v.is_correct());
    }

    #[test]
    fn adversarial_species_names_do_not_capture_pipeline_wires() {
        // Module species literally named W0, L, Y_out and f0.X1 flow through
        // the parser into composition; the engine's fresh interning must keep
        // them disjoint from its own wires (the PR's headline bug class).
        let source = "\
            crn min_stage { inputs W0 L; output Y_out; W0 + L -> Y_out; }\n\
            crn double_stage { inputs f0.X1; output f0.Y; f0.X1 -> 2f0.Y; }\n\
            pipeline two_min {\n  inputs a b;\n  stage m = min_stage(a, b);\n  \
            stage d = double_stage(m);\n  output d;\n}\n";
        let doc = parse(source).unwrap();
        let lowered = lower_document(&doc).unwrap();
        let pipeline = &lowered.pipelines[0].1;
        for (x1, x2) in [(0u64, 0u64), (1, 2), (3, 1)] {
            let v = crn_model::check_stable_computation(
                &pipeline.crn,
                &NVec::from(vec![x1, x2]),
                2 * x1.min(x2),
                50_000,
            )
            .unwrap();
            assert!(v.is_correct(), "adversarial pipeline failed at ({x1},{x2})");
        }
    }

    #[test]
    fn pipeline_diagnostics_name_the_stage() {
        let doc = parse("pipeline p { inputs a; stage s = nothing(a); output s; }").unwrap();
        let err = lower_document(&doc).unwrap_err();
        assert!(err.message.contains("stage `s`"), "{}", err.message);
        assert!(err.message.contains("`nothing`"), "{}", err.message);

        // Arity mismatch between the wiring and the module.
        let doc = parse(
            "crn id { inputs X; output Y; X -> Y; }\n\
             pipeline p { inputs a b; stage s = id(a, b); output s; }",
        )
        .unwrap();
        let err = lower_document(&doc).unwrap_err();
        assert!(err.message.contains("stage `s`"), "{}", err.message);
        assert!(err.message.contains("1 inputs"), "{}", err.message);
    }

    #[test]
    fn non_oblivious_feeders_are_reported_not_rejected() {
        let doc = parse(
            "crn max_stage { inputs X1 X2; output Y; X1 -> Z1 + Y; X2 -> Z2 + Y; \
             Z1 + Z2 -> K; K + Y -> 0; }\n\
             crn double_stage { inputs X; output Y; X -> 2Y; }\n\
             pipeline bad { inputs a b; stage m = max_stage(a, b); \
             stage d = double_stage(m); output d; }",
        )
        .unwrap();
        let lowered = lower_document(&doc).unwrap();
        assert_eq!(
            lowered.pipelines[0].1.non_oblivious_feeders,
            vec!["m".to_owned()]
        );
    }

    #[test]
    fn lower_item_rejects_pipelines_with_guidance() {
        let doc = parse("pipeline p { inputs a; stage s = m(a); output s; }").unwrap();
        let err = lower_item(&doc.items[0]).unwrap_err();
        assert!(err.message.contains("in isolation"), "{}", err.message);
        assert!(err.help.unwrap().contains("lower_document"));
    }
}
