//! The hand-rolled lexer for the `.crn` format.
//!
//! Whitespace separates tokens and is otherwise insignificant; `#` starts a
//! comment running to the end of the line.  Identifiers start with a letter
//! or `_` and may contain letters, digits, `_` and `.` (composed CRNs use
//! dotted module prefixes such as `f0.X1`), so keywords are not reserved —
//! the parser decides from context.

use crate::span::{Diagnostic, Span};

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`crn`, `inputs`, `X1`, `f0.W2`, …).
    Ident(String),
    /// A nonnegative integer literal.
    Int(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `->`
    Arrow,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input (always the last token).
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in error messages.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("`{name}`"),
            TokenKind::Int(value) => format!("`{value}`"),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Percent => "`%`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Eof => "end of file".into(),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Where in the source it sits.
    pub span: Span,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

/// Tokenizes `source`, ending with an [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`Diagnostic`] on the first unrecognized character or malformed
/// integer literal.
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == '#' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let kind = match c {
            '{' => {
                i += 1;
                TokenKind::LBrace
            }
            '}' => {
                i += 1;
                TokenKind::RBrace
            }
            '(' => {
                i += 1;
                TokenKind::LParen
            }
            ')' => {
                i += 1;
                TokenKind::RParen
            }
            ';' => {
                i += 1;
                TokenKind::Semi
            }
            ':' => {
                i += 1;
                TokenKind::Colon
            }
            ',' => {
                i += 1;
                TokenKind::Comma
            }
            '+' => {
                i += 1;
                TokenKind::Plus
            }
            '*' => {
                i += 1;
                TokenKind::Star
            }
            '/' => {
                i += 1;
                TokenKind::Slash
            }
            '%' => {
                i += 1;
                TokenKind::Percent
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    i += 2;
                    TokenKind::Arrow
                } else {
                    i += 1;
                    TokenKind::Minus
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::EqEq
                } else {
                    i += 1;
                    TokenKind::Eq
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Le
                } else {
                    i += 1;
                    TokenKind::Lt
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Ge
                } else {
                    i += 1;
                    TokenKind::Gt
                }
            }
            _ if c.is_ascii_digit() => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                let value: u64 = text.parse().map_err(|_| {
                    Diagnostic::new(
                        format!("integer literal `{text}` does not fit in 64 bits"),
                        Span::new(start, i),
                    )
                })?;
                TokenKind::Int(value)
            }
            _ if is_ident_start(c) => {
                while i < bytes.len() && is_ident_continue(bytes[i] as char) {
                    i += 1;
                }
                TokenKind::Ident(source[start..i].to_owned())
            }
            _ => {
                return Err(Diagnostic::new(
                    format!("unrecognized character `{c}`"),
                    Span::new(start, start + c.len_utf8()),
                )
                .with_help("the .crn format uses ASCII identifiers and punctuation"));
            }
        };
        tokens.push(Token {
            kind,
            span: Span::new(start, i),
        });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(source.len(), source.len()),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        lex(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_reaction_punctuation() {
        assert_eq!(
            kinds("X1 + 2Y -> 0;"),
            vec![
                TokenKind::Ident("X1".into()),
                TokenKind::Plus,
                TokenKind::Int(2),
                TokenKind::Ident("Y".into()),
                TokenKind::Arrow,
                TokenKind::Int(0),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn distinguishes_comparison_operators() {
        assert_eq!(
            kinds("< <= > >= = == -> -"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::EqEq,
                TokenKind::Arrow,
                TokenKind::Minus,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_dotted_identifiers() {
        assert_eq!(
            kinds("f0.X1 # trailing comment -> ignored\nL_0_1"),
            vec![
                TokenKind::Ident("f0.X1".into()),
                TokenKind::Ident("L_0_1".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn spans_are_byte_ranges() {
        let tokens = lex("ab  12").unwrap();
        assert_eq!(tokens[0].span, Span::new(0, 2));
        assert_eq!(tokens[1].span, Span::new(4, 6));
        assert_eq!(tokens[2].span, Span::new(6, 6));
    }

    #[test]
    fn rejects_unknown_characters_and_huge_integers() {
        assert!(lex("a @ b").is_err());
        assert!(lex("99999999999999999999999999").is_err());
    }
}
