//! Recursive-descent parser for the `.crn` format.
//!
//! The grammar is documented in EBNF in `DESIGN.md` (section "The crn-lang
//! input language").  Parsing normalizes linear expressions into coefficient
//! vectors and sorts quilt offset tables, so the AST is canonical: printing
//! it with [`crate::printer`] and re-parsing yields an equal AST.

use crn_numeric::Rational;

use crate::ast::{
    CrnItem, Document, FnCase, FnItem, Guard, GuardAtom, Item, LinExpr, Piece, PipelineItem,
    ReactionAst, Rel, SpecBody, SpecItem, StageAst, When, WhenBody,
};
use crate::lexer::{lex, Token, TokenKind};
use crate::span::{Diagnostic, Span};

/// Names that cannot be used for parameters or species: each is a keyword in
/// some position, and reserving them in every expression scope keeps the
/// grammar LL(1) without a lookahead dance.  Item names are exempt — they
/// only ever appear right after `crn`/`fn`/`spec`/`computes`, where no
/// keyword is expected.
pub const RESERVED: &[&str] = &[
    "crn",
    "fn",
    "spec",
    "pipeline",
    "inputs",
    "output",
    "leader",
    "computes",
    "init",
    "stage",
    "case",
    "otherwise",
    "and",
    "min",
    "threshold",
    "when",
    "floor",
    "quilt",
];

/// Parses a `.crn` document.
///
/// # Errors
///
/// Returns a [`Diagnostic`] (with a source span) on the first lexical or
/// syntactic error.
pub fn parse(source: &str) -> Result<Document, Diagnostic> {
    let tokens = {
        let _span = crn_obs::span("lang.lex");
        lex(source)?
    };
    let _span = crn_obs::span("lang.parse");
    let mut parser = Parser { tokens, pos: 0 };
    parser.document()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let token = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        token
    }

    fn at_keyword(&self, word: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(name) if name == word)
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.at_keyword(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<Span, Diagnostic> {
        if self.at_keyword(word) {
            Ok(self.bump().span)
        } else {
            Err(self.unexpected(&format!("`{word}`")))
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Span, Diagnostic> {
        if &self.peek().kind == kind {
            Ok(self.bump().span)
        } else {
            Err(self.unexpected(&kind.describe()))
        }
    }

    fn unexpected(&self, wanted: &str) -> Diagnostic {
        let token = self.peek();
        Diagnostic::new(
            format!("expected {wanted}, found {}", token.kind.describe()),
            token.span,
        )
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), Diagnostic> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                let span = self.bump().span;
                Ok((name, span))
            }
            _ => Err(self.unexpected(what)),
        }
    }

    /// An identifier used as a *declared* name (item, species or parameter):
    /// reserved words are rejected with a hint.
    fn declared_ident(&mut self, what: &str) -> Result<(String, Span), Diagnostic> {
        let (name, span) = self.ident(what)?;
        if RESERVED.contains(&name.as_str()) {
            return Err(Diagnostic::new(
                format!("`{name}` is a reserved word and cannot name {what}"),
                span,
            )
            .with_help(format!("rename it, e.g. `{name}_`")));
        }
        Ok((name, span))
    }

    fn int(&mut self) -> Result<(u64, Span), Diagnostic> {
        match self.peek().kind {
            TokenKind::Int(value) => {
                let span = self.bump().span;
                Ok((value, span))
            }
            _ => Err(self.unexpected("an integer")),
        }
    }

    /// A rational literal `[-] INT [/ INT]`.
    fn rational(&mut self) -> Result<Rational, Diagnostic> {
        let negative = matches!(self.peek().kind, TokenKind::Minus) && {
            self.bump();
            true
        };
        let (numer, span) = self.int()?;
        let numer = i128::from(numer) * if negative { -1 } else { 1 };
        if matches!(self.peek().kind, TokenKind::Slash) {
            self.bump();
            let (denom, dspan) = self.int()?;
            if denom == 0 {
                return Err(Diagnostic::new("denominator cannot be zero", dspan));
            }
            Ok(Rational::new(numer, i128::from(denom)))
        } else {
            let _ = span;
            Ok(Rational::from(numer))
        }
    }

    fn document(&mut self) -> Result<Document, Diagnostic> {
        let mut items = Vec::new();
        loop {
            match &self.peek().kind {
                TokenKind::Eof => break,
                TokenKind::Ident(word) => {
                    let item = match word.as_str() {
                        "crn" => Item::Crn(self.crn_item()?),
                        "fn" => Item::Fn(self.fn_item()?),
                        "spec" => Item::Spec(self.spec_item()?),
                        "pipeline" => Item::Pipeline(self.pipeline_item()?),
                        _ => {
                            return Err(self
                                .unexpected("`crn`, `fn`, `spec` or `pipeline`")
                                .with_help("every top-level item starts with its kind keyword"))
                        }
                    };
                    // CRN-denoting items (`crn`/`pipeline`) and function items
                    // (`fn`/`spec`) live in separate namespaces: `computes`
                    // only ever references the latter, so a CRN may share its
                    // function's name.
                    let clashes = items.iter().any(|existing: &Item| {
                        existing.name() == item.name()
                            && existing.is_crn_like() == item.is_crn_like()
                    });
                    if clashes {
                        return Err(Diagnostic::new(
                            format!("duplicate item name `{}`", item.name()),
                            item.span(),
                        )
                        .with_help(
                            "crn/pipeline names must be unique, and fn/spec names must be unique",
                        ));
                    }
                    items.push(item);
                }
                _ => return Err(self.unexpected("`crn`, `fn`, `spec` or `pipeline`")),
            }
        }
        Ok(Document { items })
    }

    // ----- crn items --------------------------------------------------------

    fn crn_item(&mut self) -> Result<CrnItem, Diagnostic> {
        let start = self.expect_keyword("crn")?;
        let (name, _) = self.ident("a name for the CRN")?;
        self.expect(&TokenKind::LBrace)?;
        let mut inputs: Option<Vec<String>> = None;
        let mut output: Option<(String, Span)> = None;
        let mut leader: Option<String> = None;
        let mut computes: Option<String> = None;
        let mut init: Vec<(String, u64)> = Vec::new();
        let mut reactions: Vec<ReactionAst> = Vec::new();
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => break,
                TokenKind::Ident(word) => match word.as_str() {
                    "inputs" => {
                        let span = self.bump().span;
                        self.no_duplicate(inputs.is_some(), "inputs", span)?;
                        // Zero input species is legal (a constant CRN
                        // computes f : N^0 → N and ignores no one).
                        let mut list = Vec::new();
                        while matches!(self.peek().kind, TokenKind::Ident(_)) {
                            list.push(self.declared_ident("an input species")?.0);
                        }
                        self.expect(&TokenKind::Semi)?;
                        inputs = Some(list);
                    }
                    "output" => {
                        let span = self.bump().span;
                        self.no_duplicate(output.is_some(), "output", span)?;
                        output = Some(self.declared_ident("the output species")?);
                        self.expect(&TokenKind::Semi)?;
                    }
                    "leader" => {
                        let span = self.bump().span;
                        self.no_duplicate(leader.is_some(), "leader", span)?;
                        leader = Some(self.declared_ident("the leader species")?.0);
                        self.expect(&TokenKind::Semi)?;
                    }
                    "computes" => {
                        let span = self.bump().span;
                        self.no_duplicate(computes.is_some(), "computes", span)?;
                        computes = Some(self.ident("the computed item's name")?.0);
                        self.expect(&TokenKind::Semi)?;
                    }
                    "init" => {
                        let span = self.bump().span;
                        self.no_duplicate(!init.is_empty(), "init", span)?;
                        loop {
                            let (species, _) = self.declared_ident("a species")?;
                            self.expect(&TokenKind::Eq)?;
                            let (count, _) = self.int()?;
                            init.push((species, count));
                            if !matches!(self.peek().kind, TokenKind::Comma) {
                                break;
                            }
                            self.bump();
                        }
                        self.expect(&TokenKind::Semi)?;
                    }
                    _ => reactions.push(self.reaction()?),
                },
                TokenKind::Int(_) => reactions.push(self.reaction()?),
                _ => {
                    return Err(self
                        .unexpected("a declaration or reaction")
                        .with_help("crn bodies contain `inputs/output/leader/computes/init` declarations and `a + b -> c;` reactions"))
                }
            }
        }
        let end = self.expect(&TokenKind::RBrace)?;
        let inputs = inputs.ok_or_else(|| {
            Diagnostic::new(
                format!("crn `{name}` is missing an `inputs` declaration"),
                end,
            )
            .with_help("declare the ordered input species, e.g. `inputs X1 X2;`")
        })?;
        let (output, output_span) = output.ok_or_else(|| {
            Diagnostic::new(
                format!("crn `{name}` is missing an `output` declaration"),
                end,
            )
            .with_help("declare the output species, e.g. `output Y;`")
        })?;
        Ok(CrnItem {
            name,
            inputs,
            output,
            output_span,
            leader,
            computes,
            init,
            reactions,
            span: start.to(end),
        })
    }

    fn no_duplicate(&self, seen: bool, what: &str, span: Span) -> Result<(), Diagnostic> {
        if seen {
            Err(Diagnostic::new(
                format!("duplicate `{what}` declaration"),
                span,
            ))
        } else {
            Ok(())
        }
    }

    fn reaction(&mut self) -> Result<ReactionAst, Diagnostic> {
        let start = self.peek().span;
        let reactants = self.reaction_side()?;
        self.expect(&TokenKind::Arrow)?;
        let products = self.reaction_side()?;
        let end = self.expect(&TokenKind::Semi)?;
        Ok(ReactionAst {
            reactants,
            products,
            span: start.to(end),
        })
    }

    fn reaction_side(&mut self) -> Result<Vec<(u64, String)>, Diagnostic> {
        if matches!(self.peek().kind, TokenKind::Int(0))
            && !matches!(self.peek2(), TokenKind::Ident(_))
        {
            self.bump();
            return Ok(Vec::new());
        }
        let mut terms = Vec::new();
        loop {
            let count = if let TokenKind::Int(value) = self.peek().kind {
                let span = self.bump().span;
                if value == 0 {
                    return Err(
                        Diagnostic::new("stoichiometric coefficient cannot be 0", span)
                            .with_help("omit the term, or write the empty side as `0`"),
                    );
                }
                value
            } else {
                1
            };
            let (species, _) = self.declared_ident("a species")?;
            terms.push((count, species));
            if !matches!(self.peek().kind, TokenKind::Plus) {
                break;
            }
            self.bump();
        }
        Ok(terms)
    }

    // ----- pipeline items ---------------------------------------------------

    fn pipeline_item(&mut self) -> Result<PipelineItem, Diagnostic> {
        let start = self.expect_keyword("pipeline")?;
        let (name, _) = self.ident("a name for the pipeline")?;
        self.expect(&TokenKind::LBrace)?;
        let mut inputs: Option<Vec<String>> = None;
        let mut stages: Vec<StageAst> = Vec::new();
        let mut output: Option<(String, Span)> = None;
        let mut computes: Option<String> = None;
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => break,
                TokenKind::Ident(word) => match word.as_str() {
                    "inputs" => {
                        let span = self.bump().span;
                        self.no_duplicate(inputs.is_some(), "inputs", span)?;
                        let mut list = Vec::new();
                        while matches!(self.peek().kind, TokenKind::Ident(_)) {
                            let (input, ispan) = self.declared_ident("a pipeline input")?;
                            if list.contains(&input) {
                                return Err(Diagnostic::new(
                                    format!("duplicate pipeline input `{input}`"),
                                    ispan,
                                ));
                            }
                            list.push(input);
                        }
                        self.expect(&TokenKind::Semi)?;
                        inputs = Some(list);
                    }
                    "stage" => {
                        stages.push(self.stage_decl(inputs.as_deref(), &stages)?);
                    }
                    "output" => {
                        let span = self.bump().span;
                        self.no_duplicate(output.is_some(), "output", span)?;
                        let (target, tspan) = self.ident("the output stage")?;
                        if !stages.iter().any(|s| s.name == target) {
                            return Err(Diagnostic::new(
                                format!("`output` names `{target}`, which is not a stage"),
                                tspan,
                            )
                            .with_help("declare the stage first, then `output <stage>;`"));
                        }
                        self.expect(&TokenKind::Semi)?;
                        output = Some((target, tspan));
                    }
                    "computes" => {
                        let span = self.bump().span;
                        self.no_duplicate(computes.is_some(), "computes", span)?;
                        computes = Some(self.ident("the computed item's name")?.0);
                        self.expect(&TokenKind::Semi)?;
                    }
                    _ => {
                        return Err(self
                            .unexpected("`inputs`, `stage`, `output` or `computes`")
                            .with_help(
                                "pipeline bodies contain `inputs`, `stage n = m(a, …);`, \
                                 `output` and `computes` declarations",
                            ))
                    }
                },
                _ => return Err(self.unexpected("`inputs`, `stage`, `output` or `computes`")),
            }
        }
        let end = self.expect(&TokenKind::RBrace)?;
        let inputs = inputs.ok_or_else(|| {
            Diagnostic::new(
                format!("pipeline `{name}` is missing an `inputs` declaration"),
                end,
            )
            .with_help("declare the global inputs, e.g. `inputs a b;`")
        })?;
        // Stage wiring can only have referenced declared inputs or earlier
        // stages (checked in stage_decl), but the inputs declaration itself
        // may come later in the body; re-check now that the scope is final.
        if let Some(stage) = stages.iter().find(|s| inputs.contains(&s.name)) {
            return Err(Diagnostic::new(
                format!(
                    "stage `{}` shadows a pipeline input of the same name",
                    stage.name
                ),
                stage.span,
            ));
        }
        for (si, stage) in stages.iter().enumerate() {
            for arg in &stage.args {
                let is_input = inputs.contains(arg);
                let is_earlier_stage = stages[..si].iter().any(|s| s.name == *arg);
                if !is_input && !is_earlier_stage {
                    return Err(Diagnostic::new(
                        format!(
                            "stage `{}` is wired to `{arg}`, which is neither a pipeline \
                             input nor an earlier stage",
                            stage.name
                        ),
                        stage.span,
                    ));
                }
            }
        }
        let (output, _) = output.ok_or_else(|| {
            Diagnostic::new(
                format!("pipeline `{name}` is missing an `output` declaration"),
                end,
            )
            .with_help("name the stage whose output is the pipeline's, e.g. `output last;`")
        })?;
        Ok(PipelineItem {
            name,
            inputs,
            stages,
            output,
            computes,
            span: start.to(end),
        })
    }

    fn stage_decl(
        &mut self,
        inputs: Option<&[String]>,
        earlier: &[StageAst],
    ) -> Result<StageAst, Diagnostic> {
        let start = self.expect_keyword("stage")?;
        let (name, nspan) = self.declared_ident("a stage")?;
        if earlier.iter().any(|s| s.name == name) {
            return Err(Diagnostic::new(format!("duplicate stage `{name}`"), nspan));
        }
        if inputs.is_some_and(|list| list.contains(&name)) {
            return Err(Diagnostic::new(
                format!("stage `{name}` shadows a pipeline input of the same name"),
                nspan,
            ));
        }
        self.expect(&TokenKind::Eq)?;
        let (module, _) = self.ident("a crn or pipeline item")?;
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if !matches!(self.peek().kind, TokenKind::RParen) {
            loop {
                let (arg, aspan) = self.ident("a pipeline input or stage")?;
                // With the inputs declared up front (the canonical layout) the
                // wiring is checked here, against earlier stages only — a
                // stage cannot read itself or a later stage, so the graph is
                // acyclic by construction.
                if let Some(list) = inputs {
                    let known = list.contains(&arg) || earlier.iter().any(|s| s.name == arg);
                    if !known {
                        return Err(Diagnostic::new(
                            format!("`{arg}` is neither a pipeline input nor an earlier stage"),
                            aspan,
                        )
                        .with_help(format!(
                            "inputs in scope: {}",
                            if list.is_empty() {
                                "(none)".to_owned()
                            } else {
                                list.join(", ")
                            }
                        )));
                    }
                }
                args.push(arg);
                if !matches!(self.peek().kind, TokenKind::Comma) {
                    break;
                }
                self.bump();
            }
        }
        self.expect(&TokenKind::RParen)?;
        let end = self.expect(&TokenKind::Semi)?;
        Ok(StageAst {
            name,
            module,
            args,
            span: start.to(end),
        })
    }

    // ----- fn items ---------------------------------------------------------

    fn params(&mut self) -> Result<Vec<String>, Diagnostic> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek().kind, TokenKind::RParen) {
            loop {
                let (name, span) = self.declared_ident("a parameter")?;
                if params.contains(&name) {
                    return Err(Diagnostic::new(
                        format!("duplicate parameter `{name}`"),
                        span,
                    ));
                }
                params.push(name);
                if !matches!(self.peek().kind, TokenKind::Comma) {
                    break;
                }
                self.bump();
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(params)
    }

    fn fn_item(&mut self) -> Result<FnItem, Diagnostic> {
        let start = self.expect_keyword("fn")?;
        let (name, _) = self.ident("a name for the function")?;
        let params = self.params()?;
        self.expect(&TokenKind::LBrace)?;
        let mut cases = Vec::new();
        while !matches!(self.peek().kind, TokenKind::RBrace) {
            cases.push(self.fn_case(&params)?);
        }
        let end = self.expect(&TokenKind::RBrace)?;
        if cases.is_empty() {
            return Err(
                Diagnostic::new(format!("fn `{name}` has no cases"), start.to(end))
                    .with_help("add at least one `case guard: value;` arm"),
            );
        }
        Ok(FnItem {
            name,
            params,
            cases,
            span: start.to(end),
        })
    }

    fn fn_case(&mut self, params: &[String]) -> Result<FnCase, Diagnostic> {
        let guard = if self.eat_keyword("otherwise") {
            Guard::Otherwise
        } else {
            self.expect_keyword("case")?;
            let mut atoms = vec![self.guard_atom(params)?];
            while self.eat_keyword("and") {
                atoms.push(self.guard_atom(params)?);
            }
            Guard::Conj(atoms)
        };
        self.expect(&TokenKind::Colon)?;
        let value = self.expr(params)?;
        self.expect(&TokenKind::Semi)?;
        Ok(FnCase { guard, value })
    }

    fn guard_atom(&mut self, params: &[String]) -> Result<GuardAtom, Diagnostic> {
        let lhs = self.expr(params)?;
        match self.peek().kind {
            TokenKind::Percent => {
                self.bump();
                let (modulus, span) = self.int()?;
                if modulus == 0 {
                    return Err(Diagnostic::new("modulus cannot be zero", span));
                }
                self.expect(&TokenKind::EqEq)?;
                let (residue, rspan) = self.int()?;
                if residue >= modulus {
                    // An out-of-range residue would make the case silently
                    // empty; reject it like an out-of-range quilt offset key.
                    return Err(Diagnostic::new(
                        format!("residue {residue} is not below the modulus {modulus}"),
                        rspan,
                    )
                    .with_help(format!("did you mean `== {}`?", residue % modulus)));
                }
                Ok(GuardAtom::Mod {
                    expr: lhs,
                    modulus,
                    residue,
                })
            }
            TokenKind::Lt | TokenKind::Le | TokenKind::Gt | TokenKind::Ge | TokenKind::EqEq => {
                let rel = match self.bump().kind {
                    TokenKind::Lt => Rel::Lt,
                    TokenKind::Le => Rel::Le,
                    TokenKind::Gt => Rel::Gt,
                    TokenKind::Ge => Rel::Ge,
                    TokenKind::EqEq => Rel::Eq,
                    _ => unreachable!("matched above"),
                };
                let rhs = self.expr(params)?;
                Ok(GuardAtom::Cmp { lhs, rel, rhs })
            }
            _ => Err(self
                .unexpected("a comparison (`<`, `<=`, `>`, `>=`, `==`) or `% m ==`")
                .with_help("guards are conjunctions of linear comparisons and congruences")),
        }
    }

    // ----- expressions ------------------------------------------------------

    /// `expr := ["-"] term (("+" | "-") term)*` where
    /// `term := rat [["*"] param] | param`.
    fn expr(&mut self, params: &[String]) -> Result<LinExpr, Diagnostic> {
        let mut acc = LinExpr::zero(params.len());
        let mut negate = self.eat_minus();
        loop {
            self.expr_term(params, negate, &mut acc)?;
            match self.peek().kind {
                TokenKind::Plus => {
                    self.bump();
                    negate = false;
                }
                TokenKind::Minus => {
                    self.bump();
                    negate = true;
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn eat_minus(&mut self) -> bool {
        if matches!(self.peek().kind, TokenKind::Minus) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expr_term(
        &mut self,
        params: &[String],
        negate: bool,
        acc: &mut LinExpr,
    ) -> Result<(), Diagnostic> {
        let sign = if negate {
            Rational::from(-1)
        } else {
            Rational::ONE
        };
        match self.peek().kind.clone() {
            TokenKind::Int(_) => {
                let coef = self.rational()? * sign;
                // Optional `*` and an optional parameter make `2 x`, `2*x`
                // and the bare constant `2` all well-formed.  A following
                // identifier counts as the variable only when it is a
                // parameter in scope (or was introduced by `*`), so guard
                // keywords like `and` after a constant are left to the caller.
                let starred = matches!(self.peek().kind, TokenKind::Star) && {
                    self.bump();
                    true
                };
                let next_is_param = matches!(&self.peek().kind, TokenKind::Ident(name)
                    if params.iter().any(|p| p == name));
                if starred || next_is_param {
                    let index = self.param_index(params)?;
                    acc.coeffs[index] += coef;
                } else {
                    acc.constant += coef;
                }
                Ok(())
            }
            TokenKind::Ident(_) => {
                let index = self.param_index(params)?;
                acc.coeffs[index] += sign;
                Ok(())
            }
            _ => Err(self.unexpected("a parameter or a number")),
        }
    }

    fn param_index(&mut self, params: &[String]) -> Result<usize, Diagnostic> {
        let (name, span) = self.ident("a parameter")?;
        params.iter().position(|p| *p == name).ok_or_else(|| {
            Diagnostic::new(format!("unknown parameter `{name}`"), span).with_help(format!(
                "parameters in scope: {}",
                if params.is_empty() {
                    "(none)".to_owned()
                } else {
                    params.join(", ")
                }
            ))
        })
    }

    // ----- spec items -------------------------------------------------------

    fn spec_item(&mut self) -> Result<SpecItem, Diagnostic> {
        let start = self.expect_keyword("spec")?;
        let (name, _) = self.ident("a name for the spec")?;
        let params = self.params()?;
        self.expect(&TokenKind::LBrace)?;
        let body = self.spec_body(&params)?;
        let end = self.expect(&TokenKind::RBrace)?;
        Ok(SpecItem {
            name,
            params,
            body,
            span: start.to(end),
        })
    }

    fn spec_body(&mut self, params: &[String]) -> Result<SpecBody, Diagnostic> {
        let threshold = if self.at_keyword("threshold") {
            let span = self.bump().span;
            let mut entries = Vec::new();
            while matches!(self.peek().kind, TokenKind::Int(_)) {
                entries.push(self.int()?.0);
            }
            self.expect(&TokenKind::Semi)?;
            if entries.len() != params.len() {
                return Err(Diagnostic::new(
                    format!(
                        "threshold has {} entries but the spec has {} parameters",
                        entries.len(),
                        params.len()
                    ),
                    span,
                ));
            }
            entries
        } else {
            vec![0; params.len()]
        };
        self.expect_keyword("min")?;
        let mut pieces = vec![self.piece(params)?];
        while matches!(self.peek().kind, TokenKind::Comma) {
            self.bump();
            pieces.push(self.piece(params)?);
        }
        self.expect(&TokenKind::Semi)?;
        let mut whens = Vec::new();
        while self.at_keyword("when") {
            whens.push(self.when(params, &threshold)?);
        }
        Ok(SpecBody {
            threshold,
            pieces,
            whens,
        })
    }

    fn piece(&mut self, params: &[String]) -> Result<Piece, Diagnostic> {
        if self.at_keyword("floor") && matches!(self.peek2(), TokenKind::LParen) {
            self.bump();
            self.expect(&TokenKind::LParen)?;
            let expr = self.expr(params)?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Piece::Floor(expr));
        }
        if self.at_keyword("quilt") && matches!(self.peek2(), TokenKind::LBrace) {
            return self.quilt(params);
        }
        Ok(Piece::Affine(self.expr(params)?))
    }

    fn quilt(&mut self, params: &[String]) -> Result<Piece, Diagnostic> {
        self.expect_keyword("quilt")?;
        self.expect(&TokenKind::LBrace)?;
        self.expect_keyword("gradient")?;
        let mut gradient = Vec::new();
        while !matches!(self.peek().kind, TokenKind::Semi) {
            gradient.push(self.rational()?);
        }
        let gradient_span = self.expect(&TokenKind::Semi)?;
        if gradient.len() != params.len() {
            return Err(Diagnostic::new(
                format!(
                    "gradient has {} entries but the spec has {} parameters",
                    gradient.len(),
                    params.len()
                ),
                gradient_span,
            ));
        }
        self.expect_keyword("period")?;
        let (period, pspan) = self.int()?;
        if period == 0 {
            return Err(Diagnostic::new("period must be positive", pspan));
        }
        self.expect(&TokenKind::Semi)?;
        let mut offsets: Vec<(Vec<u64>, Rational)> = Vec::new();
        while self.at_keyword("offset") {
            let ospan = self.bump().span;
            self.expect(&TokenKind::LParen)?;
            let mut residues = Vec::new();
            while matches!(self.peek().kind, TokenKind::Int(_)) {
                residues.push(self.int()?.0);
            }
            self.expect(&TokenKind::RParen)?;
            if residues.len() != params.len() || residues.iter().any(|&r| r >= period) {
                return Err(Diagnostic::new(
                    format!(
                        "offset key must be {} residues, each below the period {period}",
                        params.len()
                    ),
                    ospan,
                ));
            }
            if offsets.iter().any(|(key, _)| *key == residues) {
                return Err(Diagnostic::new(
                    format!("duplicate offset for congruence class ({residues:?})"),
                    ospan,
                ));
            }
            self.expect(&TokenKind::Eq)?;
            let value = self.rational()?;
            self.expect(&TokenKind::Semi)?;
            offsets.push((residues, value));
        }
        self.expect(&TokenKind::RBrace)?;
        // Canonical order: sorted by residue tuple, matching the printer.
        offsets.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Piece::Quilt {
            gradient,
            period,
            offsets,
        })
    }

    fn when(&mut self, params: &[String], threshold: &[u64]) -> Result<When, Diagnostic> {
        self.expect_keyword("when")?;
        let (param, span) = {
            let (name, span) = self.ident("a parameter")?;
            let index = params.iter().position(|p| *p == name).ok_or_else(|| {
                Diagnostic::new(format!("unknown parameter `{name}`"), span)
                    .with_help(format!("parameters in scope: {}", params.join(", ")))
            })?;
            (index, span)
        };
        self.expect(&TokenKind::Eq)?;
        let (value, vspan) = self.int()?;
        if value >= threshold[param] {
            return Err(Diagnostic::new(
                format!(
                    "restriction fixes `{}` to {value}, but the threshold component is {}",
                    params[param], threshold[param]
                ),
                span.to(vspan),
            )
            .with_help("only values strictly below the threshold need a restriction"));
        }
        self.expect(&TokenKind::Colon)?;
        let body = if matches!(self.peek().kind, TokenKind::LBrace) {
            if params.len() == 1 {
                return Err(Diagnostic::new(
                    "this restriction has dimension 0; write it as a bare constant".to_owned(),
                    self.peek().span,
                )
                .with_help(format!("e.g. `when {} = {value}: 0;`", params[param])));
            }
            self.bump();
            let remaining = crate::ast::remaining_params(params, param);
            let body = self.spec_body(&remaining)?;
            self.expect(&TokenKind::RBrace)?;
            WhenBody::Block(body)
        } else {
            let (constant, cspan) = self.int()?;
            if params.len() != 1 {
                return Err(Diagnostic::new(
                    "a bare constant restriction is only allowed when exactly one parameter remains"
                        .to_owned(),
                    cspan,
                )
                .with_help("write a nested block `{ min …; }` for higher-dimensional restrictions"));
            }
            self.expect(&TokenKind::Semi)?;
            WhenBody::Constant(constant)
        };
        Ok(When { param, value, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_crn_item() {
        let doc = parse(
            "crn max {\n  inputs X1 X2;\n  output Y;\n  computes max2;\n  init X1 = 3, X2 = 7;\n  X1 -> Z1 + Y;\n  X2 -> Z2 + Y;\n  Z1 + Z2 -> K;\n  K + Y -> 0;\n}\n",
        )
        .unwrap();
        let Item::Crn(crn) = &doc.items[0] else {
            panic!("expected a crn item");
        };
        assert_eq!(crn.name, "max");
        assert_eq!(crn.inputs, vec!["X1", "X2"]);
        assert_eq!(crn.output, "Y");
        assert_eq!(crn.leader, None);
        assert_eq!(crn.computes.as_deref(), Some("max2"));
        assert_eq!(crn.init, vec![("X1".into(), 3), ("X2".into(), 7)]);
        assert_eq!(crn.reactions.len(), 4);
        assert!(crn.reactions[3].products.is_empty());
    }

    #[test]
    fn parses_fn_with_guards_and_otherwise() {
        let doc = parse(
            "fn staircase(x) {\n  case x <= 2: 0;\n  case x >= 3 and x % 2 == 0: 2 x;\n  otherwise: 2 x + 1;\n}\n",
        )
        .unwrap();
        let Item::Fn(f) = &doc.items[0] else {
            panic!("expected a fn item");
        };
        assert_eq!(f.params, vec!["x"]);
        assert_eq!(f.cases.len(), 3);
        let Guard::Conj(atoms) = &f.cases[1].guard else {
            panic!("expected a conjunction");
        };
        assert_eq!(atoms.len(), 2);
        assert!(matches!(f.cases[2].guard, Guard::Otherwise));
        assert_eq!(f.cases[1].value.coeffs[0], Rational::from(2));
    }

    #[test]
    fn parses_spec_with_threshold_pieces_and_whens() {
        let doc = parse(
            "spec fancy(x1, x2) {\n  threshold 1 1;\n  min x1 + 1, x2 + 1;\n  when x1 = 0: { min 0; }\n  when x2 = 0: { min 0; }\n}\n",
        )
        .unwrap();
        let Item::Spec(s) = &doc.items[0] else {
            panic!("expected a spec item");
        };
        assert_eq!(s.body.threshold, vec![1, 1]);
        assert_eq!(s.body.pieces.len(), 2);
        assert_eq!(s.body.whens.len(), 2);
        let WhenBody::Block(inner) = &s.body.whens[0].body else {
            panic!("expected a nested block");
        };
        assert_eq!(inner.pieces.len(), 1);
    }

    #[test]
    fn expression_normalization_merges_terms() {
        let a = parse("spec f(x) { min x + x + 1 - 2; }").unwrap();
        let b = parse("spec f(x) { min 2 x - 1; }").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn floor_and_quilt_pieces() {
        let doc = parse(
            "spec g(x) {\n  min floor(3/2 x), quilt {\n    gradient 2;\n    period 2;\n    offset (1) = 1;\n    offset (0) = 0;\n  };\n}\n",
        )
        .unwrap();
        let Item::Spec(s) = &doc.items[0] else {
            panic!("expected a spec item");
        };
        assert!(matches!(s.body.pieces[0], Piece::Floor(_)));
        let Piece::Quilt { offsets, .. } = &s.body.pieces[1] else {
            panic!("expected a quilt piece");
        };
        // Offsets are sorted into canonical order regardless of source order.
        assert_eq!(offsets[0].0, vec![0]);
        assert_eq!(offsets[1].0, vec![1]);
    }

    #[test]
    fn diagnostics_carry_spans_and_help() {
        let source = "crn bad {\n  inputs X;\n  output Y;\n  X + Y;\n}\n";
        let err = parse(source).unwrap_err();
        assert!(err.message.contains("expected `->`"));
        let (line, _) = err.line_col(source);
        assert_eq!(line, 4);

        let err = parse("fn f(x) { case y > 0: 1; }").unwrap_err();
        assert!(err.message.contains("unknown parameter `y`"));
        assert!(err.help.unwrap().contains("x"));
    }

    #[test]
    fn reserved_words_rejected_for_species_and_params() {
        // Item names may shadow keywords (`crn min` is natural); species and
        // parameter names may not.
        assert!(parse("crn min { inputs X; output Y; X -> Y; }").is_ok());
        let err = parse("crn c { inputs min; output Y; min -> Y; }").unwrap_err();
        assert!(err.message.contains("reserved word"));
        let err = parse("fn f(when) { case when > 0: 1; }").unwrap_err();
        assert!(err.message.contains("reserved word"));
    }

    #[test]
    fn missing_roles_rejected() {
        let err = parse("crn c { output Y; Y -> Y; }").unwrap_err();
        assert!(err.message.contains("missing an `inputs`"));
        let err = parse("crn c { inputs X; X -> X; }").unwrap_err();
        assert!(err.message.contains("missing an `output`"));
    }

    #[test]
    fn zero_input_crns_parse() {
        // A constant CRN computes f : N^0 → N; `inputs;` declares arity 0.
        let doc = parse("crn five { inputs; output Y; leader L; L -> 5Y; }").unwrap();
        let Item::Crn(crn) = &doc.items[0] else {
            panic!("expected a crn item");
        };
        assert!(crn.inputs.is_empty());
    }

    #[test]
    fn out_of_range_residue_rejected() {
        let err = parse("fn f(x) { case x % 2 == 5: 1; otherwise: 0; }").unwrap_err();
        assert!(
            err.message.contains("not below the modulus"),
            "{}",
            err.message
        );
        assert!(err.help.unwrap().contains("== 1"));
    }

    #[test]
    fn when_value_must_be_below_threshold() {
        let err = parse("spec s(x) { threshold 1; min 1; when x = 1: 0; }").unwrap_err();
        assert!(err.message.contains("threshold component is 1"));
    }

    #[test]
    fn duplicate_item_names_rejected() {
        let err = parse("fn f(x) { case x >= 0: x; }\nfn f(y) { case y >= 0: y; }").unwrap_err();
        assert!(err.message.contains("duplicate item name"));
    }

    #[test]
    fn parses_a_pipeline_item() {
        let doc = parse(
            "crn min_stage { inputs X1 X2; output Y; X1 + X2 -> Y; }\n\
             pipeline two_min {\n  inputs a b;\n  stage m = min_stage(a, b);\n  \
             stage d = doubler(m);\n  output d;\n  computes two_min_fn;\n}\n",
        )
        .unwrap();
        let Item::Pipeline(p) = &doc.items[1] else {
            panic!("expected a pipeline item");
        };
        assert_eq!(p.name, "two_min");
        assert_eq!(p.inputs, vec!["a", "b"]);
        assert_eq!(p.stages.len(), 2);
        assert_eq!(p.stages[0].module, "min_stage");
        assert_eq!(p.stages[0].args, vec!["a", "b"]);
        assert_eq!(p.stages[1].args, vec!["m"]);
        assert_eq!(p.output, "d");
        assert_eq!(p.computes.as_deref(), Some("two_min_fn"));
    }

    #[test]
    fn pipeline_wiring_is_validated_with_spans() {
        // Unknown wiring source.
        let err = parse("pipeline p { inputs a; stage s = m(b); output s; }").unwrap_err();
        assert!(
            err.message.contains("neither a pipeline input"),
            "{}",
            err.message
        );
        // A stage cannot read itself or a later stage (no cycles).
        let err = parse("pipeline p { inputs a; stage s = m(s); output s; }").unwrap_err();
        assert!(err.message.contains("neither a pipeline input"));
        // Output must name a stage.
        let err = parse("pipeline p { inputs a; stage s = m(a); output t; }").unwrap_err();
        assert!(err.message.contains("not a stage"));
        // Duplicate stage names and input shadowing are rejected.
        let err = parse("pipeline p { inputs a; stage s = m(a); stage s = m(a); output s; }")
            .unwrap_err();
        assert!(err.message.contains("duplicate stage"));
        let err = parse("pipeline p { inputs a; stage a = m(a); output a; }").unwrap_err();
        assert!(err.message.contains("shadows a pipeline input"));
        // Missing declarations.
        let err = parse("pipeline p { stage s = m(); output s; }").unwrap_err();
        assert!(err.message.contains("missing an `inputs`"));
        let err = parse("pipeline p { inputs a; stage s = m(a); }").unwrap_err();
        assert!(err.message.contains("missing an `output`"));
    }

    #[test]
    fn pipeline_wiring_is_rechecked_when_inputs_come_last() {
        // Declarations may come in any order; the wiring check still runs
        // against the final input list.
        let doc = parse("pipeline p { stage s = m(a); output s; inputs a; }").unwrap();
        let Item::Pipeline(p) = &doc.items[0] else {
            panic!("expected a pipeline item");
        };
        assert_eq!(p.inputs, vec!["a"]);
        let err = parse("pipeline p { stage s = m(b); output s; inputs a; }").unwrap_err();
        assert!(err.message.contains("neither a pipeline input"));
        let err = parse("pipeline p { stage a = m(); output a; inputs a; }").unwrap_err();
        assert!(err.message.contains("shadows a pipeline input"));
    }

    #[test]
    fn pipeline_shares_the_crn_namespace() {
        // A pipeline may share its fn's name, but not another crn's.
        assert!(parse(
            "fn f(x) { case x >= 0: x; }\n\
             pipeline f { inputs a; stage s = m(a); output s; computes f; }"
        )
        .is_ok());
        let err = parse(
            "crn c { inputs X; output Y; X -> Y; }\n\
             pipeline c { inputs a; stage s = c(a); output s; }",
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate item name"));
    }
}
