//! Exhaustive bounded reachability and stable-computation checking.
//!
//! Stable computation (Section 2.2) is a reachability property: a CRN stably
//! computes `f` on input `x` if from *every* configuration reachable from the
//! initial configuration `I_x`, a *stable* configuration with output count
//! `f(x)` remains reachable.  For the small CRNs used throughout the paper the
//! reachable configuration space is finite, so the property can be checked
//! exactly by exhaustive search; this module implements that check plus the
//! "maximum output ever reachable" query used by the impossibility witnesses
//! (Lemma 4.1 / Figure 6).

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use crn_numeric::NVec;

use crate::config::Configuration;
use crate::crn::Crn;
use crate::error::CrnError;
use crate::function::FunctionCrn;

/// Limits for exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReachabilityLimits {
    /// Maximum number of distinct configurations to explore before giving up.
    pub max_configurations: usize,
}

impl Default for ReachabilityLimits {
    fn default() -> Self {
        ReachabilityLimits {
            max_configurations: 200_000,
        }
    }
}

/// The reachability graph over the configurations reachable from a start
/// configuration.
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    configurations: Vec<Configuration>,
    successors: Vec<Vec<usize>>,
}

impl ReachabilityGraph {
    /// Explores all configurations reachable from `start` in `crn`,
    /// breadth-first.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::SearchLimitExceeded`] if more than
    /// `limits.max_configurations` distinct configurations are found.
    pub fn explore(
        crn: &Crn,
        start: &Configuration,
        limits: ReachabilityLimits,
    ) -> Result<Self, CrnError> {
        let mut index: HashMap<Configuration, usize> = HashMap::new();
        let mut configurations = Vec::new();
        let mut successors: Vec<Vec<usize>> = Vec::new();
        let mut queue = VecDeque::new();

        index.insert(start.clone(), 0);
        configurations.push(start.clone());
        successors.push(Vec::new());
        queue.push_back(0usize);

        while let Some(current) = queue.pop_front() {
            let config = configurations[current].clone();
            for reaction in crn.reactions() {
                if !config.can_apply(reaction) {
                    continue;
                }
                let next = config.apply(reaction);
                let next_index = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        if configurations.len() >= limits.max_configurations {
                            return Err(CrnError::SearchLimitExceeded {
                                limit: format!(
                                    "{} reachable configurations",
                                    limits.max_configurations
                                ),
                            });
                        }
                        let i = configurations.len();
                        index.insert(next.clone(), i);
                        configurations.push(next);
                        successors.push(Vec::new());
                        queue.push_back(i);
                        i
                    }
                };
                if !successors[current].contains(&next_index) {
                    successors[current].push(next_index);
                }
            }
        }
        Ok(ReachabilityGraph {
            configurations,
            successors,
        })
    }

    /// The number of distinct reachable configurations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.configurations.len()
    }

    /// Whether the graph is empty (never the case after a successful explore).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.configurations.is_empty()
    }

    /// All reachable configurations (index 0 is the start configuration).
    #[must_use]
    pub fn configurations(&self) -> &[Configuration] {
        &self.configurations
    }

    /// Whether `target` is reachable from the start configuration.
    #[must_use]
    pub fn contains(&self, target: &Configuration) -> bool {
        self.configurations.iter().any(|c| c == target)
    }

    /// For every configuration, the maximum value of `metric` over all
    /// configurations reachable from it (computed by fixpoint iteration; the
    /// graph may contain cycles).
    fn max_reachable_metric(&self, metric: impl Fn(&Configuration) -> u64) -> Vec<u64> {
        let mut value: Vec<u64> = self.configurations.iter().map(&metric).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.configurations.len() {
                for &j in &self.successors[i] {
                    if value[j] > value[i] {
                        value[i] = value[j];
                        changed = true;
                    }
                }
            }
        }
        value
    }

    /// For every configuration, the minimum value of `metric` over all
    /// configurations reachable from it.
    fn min_reachable_metric(&self, metric: impl Fn(&Configuration) -> u64) -> Vec<u64> {
        let mut value: Vec<u64> = self.configurations.iter().map(&metric).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.configurations.len() {
                for &j in &self.successors[i] {
                    if value[j] < value[i] {
                        value[i] = value[j];
                        changed = true;
                    }
                }
            }
        }
        value
    }

    /// For every configuration, whether some configuration satisfying `good`
    /// is reachable from it.
    fn can_reach(&self, good: &[bool]) -> Vec<bool> {
        let mut ok = good.to_vec();
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.configurations.len() {
                if ok[i] {
                    continue;
                }
                if self.successors[i].iter().any(|&j| ok[j]) {
                    ok[i] = true;
                    changed = true;
                }
            }
        }
        ok
    }
}

/// The result of checking whether a CRN stably computes a value on one input.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StableComputationVerdict {
    /// The input that was checked.
    pub input: NVec,
    /// The expected output `f(x)`.
    pub expected_output: u64,
    /// Whether the CRN stably computes `f(x)` on this input.
    pub correct: bool,
    /// The number of distinct reachable configurations explored.
    pub reachable_configurations: usize,
    /// The largest output count in any reachable configuration.  A value
    /// greater than `expected_output` in an output-oblivious CRN is a proof of
    /// incorrectness (output can never be consumed again).
    pub max_output_reachable: u64,
    /// The set of output values of stable reachable configurations.
    pub stable_outputs: Vec<u64>,
    /// If incorrect, a human-readable reason.
    pub failure: Option<String>,
}

impl StableComputationVerdict {
    /// Whether the CRN stably computes the expected value on this input.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.correct
    }
}

/// Checks whether `crn` stably computes `expected_output` on input `x` by
/// exhaustive bounded reachability.
///
/// # Errors
///
/// Returns [`CrnError::DimensionMismatch`] for an input of the wrong arity and
/// [`CrnError::SearchLimitExceeded`] if the reachable space exceeds
/// `max_configurations`.
pub fn check_stable_computation(
    crn: &FunctionCrn,
    x: &NVec,
    expected_output: u64,
    max_configurations: usize,
) -> Result<StableComputationVerdict, CrnError> {
    let start = crn.initial_configuration(x)?;
    let graph =
        ReachabilityGraph::explore(crn.crn(), &start, ReachabilityLimits { max_configurations })?;
    let output = crn.output();
    let out_of = |c: &Configuration| c.count(output);

    let max_out = graph.max_reachable_metric(out_of);
    let min_out = graph.min_reachable_metric(out_of);

    // A configuration is stable when the output count can never change again.
    let stable: Vec<bool> = (0..graph.len()).map(|i| max_out[i] == min_out[i]).collect();
    let correct_stable: Vec<bool> = (0..graph.len())
        .map(|i| stable[i] && graph.configurations[i].count(output) == expected_output)
        .collect();
    let can_recover = graph.can_reach(&correct_stable);

    let mut stable_outputs: Vec<u64> = (0..graph.len())
        .filter(|&i| stable[i])
        .map(|i| graph.configurations[i].count(output))
        .collect();
    stable_outputs.sort_unstable();
    stable_outputs.dedup();

    let global_max_output = max_out[0];
    let all_recover = can_recover.iter().all(|&b| b);
    let failure = if all_recover {
        None
    } else {
        let bad = (0..graph.len())
            .find(|&i| !can_recover[i])
            .expect("some bad index");
        Some(format!(
            "configuration {} cannot reach a stable configuration with output {}",
            graph.configurations[bad].display(crn.crn().species()),
            expected_output
        ))
    };

    Ok(StableComputationVerdict {
        input: x.clone(),
        expected_output,
        correct: all_recover,
        reachable_configurations: graph.len(),
        max_output_reachable: global_max_output,
        stable_outputs,
        failure,
    })
}

/// Checks stable computation of `f` on every input in the box `[0, bound]^d`.
///
/// Returns the first failing verdict, or `Ok(None)` if all inputs pass.
///
/// # Errors
///
/// Propagates the errors of [`check_stable_computation`].
pub fn check_on_box(
    crn: &FunctionCrn,
    f: impl Fn(&NVec) -> u64,
    bound: u64,
    max_configurations: usize,
) -> Result<Option<StableComputationVerdict>, CrnError> {
    for x in NVec::enumerate_box(crn.dim(), bound) {
        let verdict = check_stable_computation(crn, &x, f(&x), max_configurations)?;
        if !verdict.is_correct() {
            return Ok(Some(verdict));
        }
    }
    Ok(None)
}

/// The maximum count of the output species over every configuration reachable
/// from `I_x`.  Used to exhibit overproduction: for an output-oblivious CRN the
/// output can never shrink, so a reachable output above `f(x)` shows the CRN
/// does not stably compute `f`.
///
/// # Errors
///
/// Propagates the errors of [`ReachabilityGraph::explore`].
pub fn max_output_reachable(
    crn: &FunctionCrn,
    x: &NVec,
    max_configurations: usize,
) -> Result<u64, CrnError> {
    let start = crn.initial_configuration(x)?;
    let graph =
        ReachabilityGraph::explore(crn.crn(), &start, ReachabilityLimits { max_configurations })?;
    let output = crn.output();
    Ok(graph
        .configurations()
        .iter()
        .map(|c| c.count(output))
        .max()
        .unwrap_or(0))
}

/// All configurations reachable from `start` (convenience wrapper).
///
/// # Errors
///
/// Propagates the errors of [`ReachabilityGraph::explore`].
pub fn reachable_configurations(
    crn: &Crn,
    start: &Configuration,
    max_configurations: usize,
) -> Result<Vec<Configuration>, CrnError> {
    Ok(
        ReachabilityGraph::explore(crn, start, ReachabilityLimits { max_configurations })?
            .configurations()
            .to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use proptest::prelude::*;

    #[test]
    fn double_crn_stably_computes_2x() {
        let double = examples::double_crn();
        for x in 0..6u64 {
            let v = check_stable_computation(&double, &NVec::from(vec![x]), 2 * x, 10_000).unwrap();
            assert!(v.is_correct(), "failed at x={x}: {:?}", v.failure);
            assert_eq!(v.max_output_reachable, 2 * x);
            assert_eq!(v.stable_outputs, vec![2 * x]);
        }
    }

    #[test]
    fn min_crn_stably_computes_min() {
        let min = examples::min_crn();
        for x1 in 0..5u64 {
            for x2 in 0..5u64 {
                let v =
                    check_stable_computation(&min, &NVec::from(vec![x1, x2]), x1.min(x2), 10_000)
                        .unwrap();
                assert!(v.is_correct());
            }
        }
    }

    #[test]
    fn min_crn_rejects_wrong_value() {
        let min = examples::min_crn();
        let v = check_stable_computation(&min, &NVec::from(vec![2, 3]), 3, 10_000).unwrap();
        assert!(!v.is_correct());
        assert!(v.failure.is_some());
    }

    #[test]
    fn max_crn_stably_computes_max_despite_overshoot() {
        let max = examples::max_crn();
        for x1 in 0..4u64 {
            for x2 in 0..4u64 {
                let v =
                    check_stable_computation(&max, &NVec::from(vec![x1, x2]), x1.max(x2), 50_000)
                        .unwrap();
                assert!(v.is_correct(), "failed at ({x1},{x2}): {:?}", v.failure);
                // The overshoot phenomenon from Section 1.2: the output can
                // transiently exceed max(x1,x2) (it can reach x1+x2).
                assert_eq!(v.max_output_reachable, x1 + x2);
            }
        }
    }

    #[test]
    fn check_on_box_passes_for_min() {
        let min = examples::min_crn();
        let bad = check_on_box(&min, |x| x[0].min(x[1]), 3, 10_000).unwrap();
        assert!(bad.is_none());
    }

    #[test]
    fn check_on_box_reports_failure() {
        // X1 + X2 -> Y does NOT compute max; the box check finds the failure.
        let min = examples::min_crn();
        let bad = check_on_box(&min, |x| x[0].max(x[1]), 2, 10_000).unwrap();
        let verdict = bad.expect("must fail somewhere");
        assert!(!verdict.is_correct());
    }

    #[test]
    fn max_output_reachable_detects_overshoot() {
        let max = examples::max_crn();
        let m = max_output_reachable(&max, &NVec::from(vec![2, 3]), 50_000).unwrap();
        assert_eq!(m, 5);
    }

    #[test]
    fn search_limit_is_enforced() {
        let double = examples::double_crn();
        let err = check_stable_computation(&double, &NVec::from(vec![30]), 60, 5).unwrap_err();
        assert!(matches!(err, CrnError::SearchLimitExceeded { .. }));
    }

    #[test]
    fn reachable_configurations_of_double() {
        let double = examples::double_crn();
        let start = double.initial_configuration(&NVec::from(vec![2])).unwrap();
        let reach = reachable_configurations(double.crn(), &start, 1000).unwrap();
        // {2X}, {1X,2Y}, {0X,4Y}
        assert_eq!(reach.len(), 3);
    }

    #[test]
    fn min1x_leader_crn_is_oblivious_and_correct() {
        let crn = examples::min1_leader_crn();
        assert!(crn.is_output_oblivious());
        for x in 0..5u64 {
            let expected = x.min(1);
            let v = check_stable_computation(&crn, &NVec::from(vec![x]), expected, 10_000).unwrap();
            assert!(v.is_correct());
        }
    }

    #[test]
    fn min1x_leaderless_crn_is_correct_but_not_oblivious() {
        let crn = examples::min1_leaderless_crn();
        assert!(!crn.is_output_oblivious());
        for x in 0..5u64 {
            let expected = x.min(1);
            let v = check_stable_computation(&crn, &NVec::from(vec![x]), expected, 10_000).unwrap();
            assert!(v.is_correct());
        }
    }

    proptest! {
        /// Additivity of reachability (Section 2.2): if A ->* B then A + C ->* B + C.
        #[test]
        fn reachability_is_additive(x in 0u64..5, extra in 0u64..4) {
            let double = examples::double_crn();
            let input = NVec::from(vec![x]);
            let start = double.initial_configuration(&input).unwrap();
            let reach = reachable_configurations(double.crn(), &start, 10_000).unwrap();
            // Add `extra` copies of the input species to both sides.
            let x_species = double.roles().inputs[0];
            let mut addition = Configuration::new();
            addition.add(x_species, extra);
            let start_plus = start.plus(&addition);
            let reach_plus = reachable_configurations(double.crn(), &start_plus, 10_000).unwrap();
            for b in &reach {
                prop_assert!(reach_plus.contains(&b.plus(&addition)));
            }
        }
    }
}
