//! Composition of function CRNs by concatenation (Section 2.3), generalized
//! to an n-stage pipeline engine.
//!
//! Observation 2.2: if an upstream CRN `C_f` is output-oblivious, renaming its
//! output species to the input species of a downstream CRN `C_g` (and keeping
//! all other species disjoint) yields a CRN that stably computes `g ∘ f`.
//! [`Pipeline`] grows that one construction into a DAG of modules: every
//! stage input is wired either to a global input or to an earlier stage's
//! output, fan-out (one source feeding several consumers) happens through
//! explicit copy reactions `S -> S^(1) + … + S^(m)` exactly as in the proof
//! of Lemma 6.2, and the classic two-level helpers ([`concatenate`],
//! [`compose_feed_forward`], [`parallel_union`]) are thin wrappers over it.
//!
//! # Freshness invariant
//!
//! Every species of the built CRN is interned through [`Pipeline::build`]'s
//! fresh-name allocator, which never reuses a name that is already present in
//! the target interner.  Identifications (a module output landing on the wire
//! that doubles as a downstream input) happen only through the explicit
//! species map, never through name equality.  Consequently composition cannot
//! capture or collide **regardless of the modules' species names** — a parsed
//! module whose species are literally called `W0`, `Y_out`, `L` or `f0.X1`
//! composes exactly like any other, and the build never panics.

use std::collections::HashMap;

use crate::crn::Crn;
use crate::error::CrnError;
use crate::function::{FunctionCrn, Roles};
use crate::reaction::Reaction;
use crate::species::Species;

/// Identifies a stage added to a [`Pipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageId(usize);

impl StageId {
    /// The stage's position in insertion order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Where a stage input draws its tokens from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeSource {
    /// Global input `i` of the composed CRN.
    Global(usize),
    /// The output of an earlier stage.
    Stage(StageId),
}

struct Stage {
    label: String,
    module: FunctionCrn,
    feeds: Vec<PipeSource>,
}

/// An n-stage DAG of function-CRN modules, materialized into one composed
/// [`FunctionCrn`] by [`Pipeline::build`].
///
/// Stages are added in topological order by construction: a stage may only
/// reference global inputs and stages that already exist, so cycles cannot be
/// expressed.  Fan-out, parallel union and concatenation are all edge
/// patterns of the same graph:
///
/// ```
/// use crn_model::compose::{PipeSource, Pipeline};
/// use crn_model::examples;
///
/// // min(2x, x): the global input fans out to a doubler and an identity
/// // stage, whose outputs meet in a min stage.
/// let mut p = Pipeline::new(1);
/// let double = p.add_stage("double", &examples::double_crn(), &[PipeSource::Global(0)]).unwrap();
/// let ident = p.add_stage("id", &examples::identity_crn(), &[PipeSource::Global(0)]).unwrap();
/// let min = p
///     .add_stage("min", &examples::min_crn(), &[PipeSource::Stage(double), PipeSource::Stage(ident)])
///     .unwrap();
/// let composed = p.build(min).unwrap();
/// assert_eq!(composed.dim(), 1);
/// ```
pub struct Pipeline {
    global_dim: usize,
    stages: Vec<Stage>,
}

impl Pipeline {
    /// A pipeline over `global_dim` global inputs and no stages yet.
    #[must_use]
    pub fn new(global_dim: usize) -> Self {
        Pipeline {
            global_dim,
            stages: Vec::new(),
        }
    }

    /// The number of global inputs.
    #[must_use]
    pub fn global_dim(&self) -> usize {
        self.global_dim
    }

    /// The number of stages added so far.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Adds a module as a stage, wiring input `k` of the module to
    /// `feeds[k]`.  `label` names the stage's species in the composed CRN
    /// (`{label}.{species}`, made fresh if taken).
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::InvalidRoles`] if `feeds` does not match the
    /// module's arity or references a global input / stage that does not
    /// exist (stages can only reference *earlier* stages, which keeps the
    /// graph acyclic by construction).
    pub fn add_stage(
        &mut self,
        label: &str,
        module: &FunctionCrn,
        feeds: &[PipeSource],
    ) -> Result<StageId, CrnError> {
        if feeds.len() != module.dim() {
            return Err(CrnError::InvalidRoles(format!(
                "stage `{label}` takes {} inputs, wired to {}",
                module.dim(),
                feeds.len()
            )));
        }
        for &source in feeds {
            match source {
                PipeSource::Global(i) if i >= self.global_dim => {
                    return Err(CrnError::InvalidRoles(format!(
                        "stage `{label}` reads global input {i}, but the pipeline has {}",
                        self.global_dim
                    )));
                }
                PipeSource::Stage(id) if id.0 >= self.stages.len() => {
                    return Err(CrnError::InvalidRoles(format!(
                        "stage `{label}` reads stage {}, which is not defined yet",
                        id.0
                    )));
                }
                _ => {}
            }
        }
        self.stages.push(Stage {
            label: label.to_owned(),
            module: module.clone(),
            feeds: feeds.to_vec(),
        });
        Ok(StageId(self.stages.len() - 1))
    }

    /// The stages whose output feeds another stage but whose module is *not*
    /// output-oblivious, as `(id, label)` pairs.
    ///
    /// Observation 2.2 needs every such feeder to be oblivious for the
    /// composed CRN to stably compute the composition; [`Pipeline::build`]
    /// deliberately does not enforce this (the paper's Section 1.2
    /// counterexample composes a non-oblivious max on purpose), so callers
    /// that want the guarantee check this list first.
    #[must_use]
    pub fn non_oblivious_feeders(&self) -> Vec<(StageId, String)> {
        let mut feeds_downstream = vec![false; self.stages.len()];
        for stage in &self.stages {
            for &source in &stage.feeds {
                if let PipeSource::Stage(id) = source {
                    feeds_downstream[id.0] = true;
                }
            }
        }
        self.stages
            .iter()
            .enumerate()
            .filter(|&(i, stage)| feeds_downstream[i] && !stage.module.is_output_oblivious())
            .map(|(i, stage)| (StageId(i), stage.label.clone()))
            .collect()
    }

    /// Materializes the pipeline into one CRN whose output is the output of
    /// `output` and whose inputs are the global inputs, importing every
    /// module with guaranteed-fresh species (see the module docs for the
    /// freshness invariant).
    ///
    /// Module leaders are released by one fresh global leader `L`; a source
    /// feeding several consumers is copied by an explicit fan-out reaction.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::InvalidRoles`] if `output` does not name a stage
    /// of this pipeline.
    pub fn build(&self, output: StageId) -> Result<FunctionCrn, CrnError> {
        if output.0 >= self.stages.len() {
            return Err(CrnError::InvalidRoles(format!(
                "output stage {} does not exist (pipeline has {} stages)",
                output.0,
                self.stages.len()
            )));
        }
        let n_sources = self.global_dim + self.stages.len();
        let source_index = |source: PipeSource| match source {
            PipeSource::Global(i) => i,
            PipeSource::Stage(id) => self.global_dim + id.0,
        };
        // Which (stage, port) pairs consume each source, in deterministic
        // stage-then-port order.
        let mut consumers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_sources];
        for (si, stage) in self.stages.iter().enumerate() {
            for (port, &source) in stage.feeds.iter().enumerate() {
                consumers[source_index(source)].push((si, port));
            }
        }

        let mut crn = Crn::new();
        let mut port_species: HashMap<(usize, usize), Species> = HashMap::new();
        let mut external_output: Option<Species> = None;

        // Distributes `source` to its consumers: identified directly when it
        // has a single consumer, otherwise through per-consumer copies and a
        // fan-out reaction.  The pipeline output counts as one consumer (its
        // copy is named from `external_base`) so the output species is never
        // consumed by fan-out.
        let distribute = |crn: &mut Crn,
                          source: Species,
                          ports: &[(usize, usize)],
                          external_base: Option<&str>,
                          port_species: &mut HashMap<(usize, usize), Species>|
         -> Option<Species> {
            let total = ports.len() + usize::from(external_base.is_some());
            if total <= 1 {
                for &(si, port) in ports {
                    port_species.insert((si, port), source);
                }
                return external_base.map(|_| source);
            }
            let base = crn.species().name(source).to_owned();
            let mut copies: Vec<(Species, u64)> = Vec::with_capacity(total);
            for (j, &(si, port)) in ports.iter().enumerate() {
                let copy = fresh_species(crn, &format!("{base}.{}", j + 1));
                port_species.insert((si, port), copy);
                copies.push((copy, 1));
            }
            let external = external_base.map(|name| {
                let copy = fresh_species(crn, name);
                copies.push((copy, 1));
                copy
            });
            crn.add_reaction(Reaction::new(vec![(source, 1)], copies));
            external
        };

        // Global inputs and their distribution.
        let globals: Vec<Species> = (0..self.global_dim)
            .map(|i| fresh_species(&mut crn, &format!("X{}", i + 1)))
            .collect();
        for (i, &global) in globals.iter().enumerate() {
            distribute(&mut crn, global, &consumers[i], None, &mut port_species);
        }

        // Import each stage in order; its wire is distributed immediately so
        // later stages find their port species ready.
        let mut module_leaders: Vec<Species> = Vec::new();
        for (si, stage) in self.stages.iter().enumerate() {
            let wire = fresh_species(&mut crn, &format!("{}.out", stage.label));
            let mut map: HashMap<Species, Species> = HashMap::new();
            for (port, &input) in stage.module.roles().inputs.iter().enumerate() {
                map.insert(input, port_species[&(si, port)]);
            }
            map.insert(stage.module.output(), wire);
            for (species, name) in stage.module.crn().species().iter_named() {
                map.entry(species)
                    .or_insert_with(|| fresh_species(&mut crn, &format!("{}.{name}", stage.label)));
            }
            for reaction in stage.module.crn().reactions() {
                crn.add_reaction(reaction.map_species(|s| map[&s]));
            }
            if let Some(leader) = stage.module.leader() {
                module_leaders.push(map[&leader]);
            }
            let external = distribute(
                &mut crn,
                wire,
                &consumers[self.global_dim + si],
                (si == output.0).then_some("Y_out"),
                &mut port_species,
            );
            if si == output.0 {
                external_output = external;
            }
        }

        // One fresh global leader releases every module leader.
        let leader = if module_leaders.is_empty() {
            None
        } else {
            let global_leader = fresh_species(&mut crn, "L");
            crn.add_reaction(Reaction::new(
                vec![(global_leader, 1)],
                module_leaders.iter().map(|&l| (l, 1)).collect::<Vec<_>>(),
            ));
            Some(global_leader)
        };

        FunctionCrn::new(
            crn,
            Roles {
                inputs: globals,
                output: external_output.expect("the output stage was distributed"),
                leader,
            },
        )
    }
}

/// Interns a species under `base` if that name is free, otherwise under
/// `base.2`, `base.3`, … — the first suffix not yet taken.  The returned
/// species is always newly created, never an existing one.
fn fresh_species(crn: &mut Crn, base: &str) -> Species {
    if crn.species_named(base).is_none() {
        return crn.add_species(base);
    }
    for suffix in 2usize.. {
        let candidate = format!("{base}.{suffix}");
        if crn.species_named(&candidate).is_none() {
            return crn.add_species(&candidate);
        }
    }
    unreachable!("some numeric suffix is always free")
}

/// Concatenates a single upstream CRN computing `f : N^d → N` with a
/// downstream CRN computing `g : N → N`, yielding a CRN for `g ∘ f`.
///
/// The upstream output species becomes the downstream input wire; all other
/// species stay disjoint through fresh interning.  A fresh global leader `L`
/// is introduced with the reaction `L -> L_f + L_g` (producing whichever
/// module leaders exist), as in the paper's definition of the concatenated
/// CRN.
///
/// Correctness (Observation 2.2) requires the *upstream* CRN to be
/// output-oblivious; this function does not enforce that, because the paper
/// also uses non-oblivious upstream CRNs to demonstrate how composition fails
/// (Section 1.2) — callers that need the guarantee should check
/// [`FunctionCrn::is_output_oblivious`] first (or use
/// [`Pipeline::non_oblivious_feeders`]).
///
/// # Errors
///
/// Returns [`CrnError::InvalidRoles`] if the downstream CRN does not have
/// exactly one input.
pub fn concatenate(
    upstream: &FunctionCrn,
    downstream: &FunctionCrn,
) -> Result<FunctionCrn, CrnError> {
    if downstream.dim() != 1 {
        return Err(CrnError::InvalidRoles(format!(
            "downstream CRN must have exactly 1 input, has {}",
            downstream.dim()
        )));
    }
    compose_feed_forward(std::slice::from_ref(upstream), downstream, false)
}

/// Wires `upstreams[k]` to input `k` of `downstream`.
///
/// When `share_inputs` is `false`, the composed CRN's input list is the
/// concatenation of the upstream input lists (each upstream owns its own
/// inputs).  When `share_inputs` is `true`, all upstream CRNs must have the
/// same arity `d`, the composed CRN has arity `d`, and fan-out reactions
/// `X_i -> X_i^{(1)} + … + X_i^{(m)}` copy each global input to every
/// upstream module — the "fan out" operation described in the proof of
/// Lemma 6.2.
///
/// # Errors
///
/// Returns [`CrnError::InvalidRoles`] if the downstream arity does not match
/// the number of upstream modules, or (with `share_inputs`) the upstream
/// arities differ.
pub fn compose_feed_forward(
    upstreams: &[FunctionCrn],
    downstream: &FunctionCrn,
    share_inputs: bool,
) -> Result<FunctionCrn, CrnError> {
    if downstream.dim() != upstreams.len() {
        return Err(CrnError::InvalidRoles(format!(
            "downstream arity {} does not match {} upstream modules",
            downstream.dim(),
            upstreams.len()
        )));
    }
    if share_inputs {
        let dims: Vec<usize> = upstreams.iter().map(FunctionCrn::dim).collect();
        if dims.windows(2).any(|w| w[0] != w[1]) {
            return Err(CrnError::InvalidRoles(format!(
                "shared-input composition requires equal upstream arities, got {dims:?}"
            )));
        }
    }
    let global_dim = if share_inputs {
        upstreams.first().map_or(0, FunctionCrn::dim)
    } else {
        upstreams.iter().map(FunctionCrn::dim).sum()
    };
    let mut pipeline = Pipeline::new(global_dim);
    let mut offset = 0;
    let mut stage_ids = Vec::with_capacity(upstreams.len());
    for (k, upstream) in upstreams.iter().enumerate() {
        let feeds: Vec<PipeSource> = if share_inputs {
            (0..upstream.dim()).map(PipeSource::Global).collect()
        } else {
            let feeds = (offset..offset + upstream.dim())
                .map(PipeSource::Global)
                .collect();
            offset += upstream.dim();
            feeds
        };
        stage_ids.push(PipeSource::Stage(pipeline.add_stage(
            &format!("f{k}"),
            upstream,
            &feeds,
        )?));
    }
    let down = pipeline.add_stage("g", downstream, &stage_ids)?;
    pipeline.build(down)
}

/// Adds explicit fan-out reactions `X_i -> X_i^{(1)} + … + X_i^{(copies)}` for
/// a `dim`-ary input, returning the fresh CRN together with the global input
/// species and the per-copy input species.
///
/// This is the standalone form of the fan-out wiring used inside
/// [`Pipeline::build`]; it is exposed for constructions that need to copy
/// inputs without immediately composing (e.g. benchmarks measuring fan-out
/// cost).
#[must_use]
pub fn fan_out(dim: usize, copies: usize) -> (Crn, Vec<Species>, Vec<Vec<Species>>) {
    let mut crn = Crn::new();
    let globals: Vec<Species> = (0..dim)
        .map(|i| crn.add_species(&format!("X{}", i + 1)))
        .collect();
    let mut per_copy: Vec<Vec<Species>> = vec![Vec::new(); copies];
    for (i, &global) in globals.iter().enumerate() {
        let mut products = Vec::new();
        for (k, copy_inputs) in per_copy.iter_mut().enumerate() {
            let s = crn.add_species(&format!("X{}_{}", i + 1, k));
            copy_inputs.push(s);
            products.push((s, 1));
        }
        crn.add_reaction(Reaction::new(vec![(global, 1)], products));
    }
    (crn, globals, per_copy)
}

/// Places two function CRNs side by side with disjoint species (no wiring).
///
/// The result has the concatenated input list and reports the *first* CRN's
/// output; it is used to build multi-output computations where each component
/// is computed by a parallel CRN (footnote 6 of the paper).
///
/// # Errors
///
/// Returns [`CrnError::InvalidRoles`] if role resolution fails (should not
/// happen for well-formed inputs).
pub fn parallel_union(first: &FunctionCrn, second: &FunctionCrn) -> Result<FunctionCrn, CrnError> {
    let mut pipeline = Pipeline::new(first.dim() + second.dim());
    let a = pipeline.add_stage(
        "a",
        first,
        &(0..first.dim()).map(PipeSource::Global).collect::<Vec<_>>(),
    )?;
    pipeline.add_stage(
        "b",
        second,
        &(first.dim()..first.dim() + second.dim())
            .map(PipeSource::Global)
            .collect::<Vec<_>>(),
    )?;
    pipeline.build(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use crate::function::Roles;
    use crate::reachability::check_stable_computation;
    use crn_numeric::NVec;

    #[test]
    fn two_times_min_via_concatenation() {
        // Section 1.2: 2·min(x1,x2) composed from X1+X2->W and W->2Y.
        let min = examples::min_crn();
        let double = examples::double_crn();
        let composed = concatenate(&min, &double).unwrap();
        assert!(composed.is_output_oblivious());
        for x1 in 0..4u64 {
            for x2 in 0..4u64 {
                let expected = 2 * x1.min(x2);
                let v = check_stable_computation(
                    &composed,
                    &NVec::from(vec![x1, x2]),
                    expected,
                    50_000,
                )
                .unwrap();
                assert!(v.is_correct(), "2·min failed at ({x1},{x2})");
            }
        }
    }

    #[test]
    fn composing_non_oblivious_max_with_double_can_overproduce() {
        // Section 1.2: renaming the max CRN's output to W and adding W -> 2Y
        // can erroneously produce up to 2(x1+x2) copies of Y.
        let max = examples::max_crn();
        let double = examples::double_crn();
        let composed = concatenate(&max, &double).unwrap();
        let v = check_stable_computation(&composed, &NVec::from(vec![1, 1]), 2, 100_000).unwrap();
        assert!(
            !v.is_correct(),
            "composition of non-oblivious max must fail"
        );
        assert!(v.max_output_reachable > 2);
        assert_eq!(v.max_output_reachable, 4); // 2(x1 + x2)
    }

    #[test]
    fn concatenation_propagates_leaders() {
        let min1 = examples::min1_leader_crn();
        let double = examples::double_crn();
        let composed = concatenate(&min1, &double).unwrap();
        assert!(composed.has_leader());
        // 2 · min(1, x)
        for x in 0..4u64 {
            let expected = 2 * x.min(1);
            let v = check_stable_computation(&composed, &NVec::from(vec![x]), expected, 50_000)
                .unwrap();
            assert!(v.is_correct());
        }
    }

    #[test]
    fn downstream_must_be_unary_for_concatenate() {
        let min = examples::min_crn();
        assert!(matches!(
            concatenate(&min, &examples::min_crn()),
            Err(CrnError::InvalidRoles(_))
        ));
    }

    #[test]
    fn shared_input_feed_forward_computes_min_of_double_and_identity() {
        // min(2x, x) = x computed as feed-forward with shared input x.
        let double = examples::double_crn();
        let identity = examples::identity_crn();
        let min = examples::min_crn();
        let composed = compose_feed_forward(&[double, identity], &min, true).unwrap();
        assert_eq!(composed.dim(), 1);
        for x in 0..5u64 {
            let v = check_stable_computation(&composed, &NVec::from(vec![x]), x, 100_000).unwrap();
            assert!(v.is_correct(), "min(2x,x) failed at {x}");
        }
    }

    #[test]
    fn unshared_feed_forward_concatenates_input_lists() {
        // min(2a, 3b) from separate inputs a and b.
        let double = examples::multiply_crn(2);
        let triple = examples::multiply_crn(3);
        let min = examples::min_crn();
        let composed = compose_feed_forward(&[double, triple], &min, false).unwrap();
        assert_eq!(composed.dim(), 2);
        for a in 0..4u64 {
            for b in 0..4u64 {
                let expected = (2 * a).min(3 * b);
                let v =
                    check_stable_computation(&composed, &NVec::from(vec![a, b]), expected, 100_000)
                        .unwrap();
                assert!(v.is_correct(), "min(2a,3b) failed at ({a},{b})");
            }
        }
    }

    #[test]
    fn shared_inputs_require_equal_arities() {
        let double = examples::double_crn(); // arity 1
        let min = examples::min_crn(); // arity 2
        let downstream = examples::min_crn();
        assert!(matches!(
            compose_feed_forward(&[double, min], &downstream, true),
            Err(CrnError::InvalidRoles(_))
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let double = examples::double_crn();
        let min = examples::min_crn();
        assert!(matches!(
            compose_feed_forward(&[double], &min, false),
            Err(CrnError::InvalidRoles(_))
        ));
    }

    #[test]
    fn fan_out_builds_copy_reactions() {
        let (crn, globals, copies) = fan_out(2, 3);
        assert_eq!(globals.len(), 2);
        assert_eq!(copies.len(), 3);
        assert_eq!(crn.reactions().len(), 2);
        assert_eq!(crn.reactions()[0].product_size(), 3);
    }

    #[test]
    fn parallel_union_keeps_modules_independent() {
        let double = examples::double_crn();
        let min1 = examples::min1_leader_crn();
        let union = parallel_union(&double, &min1).unwrap();
        assert_eq!(union.dim(), 2);
        assert!(union.has_leader());
        // The reported output is the first module's (2x), regardless of the
        // second module's input.
        for x in 0..4u64 {
            let v =
                check_stable_computation(&union, &NVec::from(vec![x, 3]), 2 * x, 50_000).unwrap();
            assert!(v.is_correct());
        }
    }

    // ----- the n-stage engine -----------------------------------------------

    /// A module whose species are named after the engine's own wires and
    /// leader — the adversarial inputs of the name-capture bug class.
    fn adversarially_named_min() -> FunctionCrn {
        let mut crn = Crn::new();
        crn.parse_reaction("W0 + L -> Y_out").unwrap();
        FunctionCrn::with_named_roles(crn, &["W0", "L"], "Y_out", None).unwrap()
    }

    #[test]
    fn reserved_looking_species_names_compose_without_capture() {
        // min(x1, x2) with species literally named W0, L and Y_out, fed into
        // a doubler whose species are named f0.X and f0.Y: the composed CRN
        // must still compute 2·min (no wire/leader capture, no panic).
        let min = adversarially_named_min();
        let mut crn = Crn::new();
        crn.parse_reaction("f0.X -> 2f0.Y").unwrap();
        let double = FunctionCrn::with_named_roles(crn, &["f0.X"], "f0.Y", None).unwrap();
        let composed = concatenate(&min, &double).unwrap();
        assert!(composed.is_output_oblivious());
        for x1 in 0..4u64 {
            for x2 in 0..4u64 {
                let v = check_stable_computation(
                    &composed,
                    &NVec::from(vec![x1, x2]),
                    2 * x1.min(x2),
                    50_000,
                )
                .unwrap();
                assert!(v.is_correct(), "adversarial 2·min failed at ({x1},{x2})");
            }
        }
    }

    #[test]
    fn adversarial_names_survive_shared_fan_out_and_leaders() {
        // The same adversarial module in a shared-input fan-out against a
        // leader-carrying module: all fresh-name paths (globals, copies,
        // wires, leader) are exercised at once.
        let adversarial = adversarially_named_min();
        let min1 = {
            // min(1, x1) + 0·x2 as a 2-ary module with a leader named L.
            let mut crn = Crn::new();
            crn.parse_reaction("L + X1 -> Y_out").unwrap();
            crn.add_species("X2");
            FunctionCrn::new(
                crn.clone(),
                Roles {
                    inputs: vec![
                        crn.species_named("X1").unwrap(),
                        crn.species_named("X2").unwrap(),
                    ],
                    output: crn.species_named("Y_out").unwrap(),
                    leader: crn.species_named("L"),
                },
            )
            .unwrap()
        };
        let downstream = examples::min_crn();
        let composed = compose_feed_forward(&[adversarial, min1], &downstream, true).unwrap();
        assert_eq!(composed.dim(), 2);
        assert!(composed.has_leader());
        for x1 in 0..3u64 {
            for x2 in 0..3u64 {
                let expected = x1.min(x2).min(x1.min(1));
                let v = check_stable_computation(
                    &composed,
                    &NVec::from(vec![x1, x2]),
                    expected,
                    200_000,
                )
                .unwrap();
                assert!(v.is_correct(), "failed at ({x1},{x2})");
            }
        }
    }

    #[test]
    fn three_stage_dag_with_shared_intermediate_wire() {
        // x ── double ──┬── min ── out        min(2x, 2x+1) = 2x, with the
        //               └ add_one ┘           doubler's wire fanned out.
        let mut p = Pipeline::new(1);
        let double = p
            .add_stage("double", &examples::double_crn(), &[PipeSource::Global(0)])
            .unwrap();
        let add_one = {
            let mut crn = Crn::new();
            crn.parse_reaction("X -> Y").unwrap();
            crn.parse_reaction("K -> Y").unwrap();
            FunctionCrn::with_named_roles(crn, &["X"], "Y", Some("K")).unwrap()
        };
        let plus = p
            .add_stage("plus1", &add_one, &[PipeSource::Stage(double)])
            .unwrap();
        let min = p
            .add_stage(
                "min",
                &examples::min_crn(),
                &[PipeSource::Stage(double), PipeSource::Stage(plus)],
            )
            .unwrap();
        let composed = p.build(min).unwrap();
        assert_eq!(composed.dim(), 1);
        assert!(composed.has_leader());
        for x in 0..4u64 {
            let v =
                check_stable_computation(&composed, &NVec::from(vec![x]), 2 * x, 200_000).unwrap();
            assert!(v.is_correct(), "min(2x, 2x+1) failed at {x}");
        }
    }

    #[test]
    fn output_wire_with_downstream_consumers_gets_a_dedicated_copy() {
        // The output stage's wire also feeds another stage; the reported
        // output species must not be consumed by the fan-out reaction.
        let mut p = Pipeline::new(1);
        let double = p
            .add_stage("double", &examples::double_crn(), &[PipeSource::Global(0)])
            .unwrap();
        p.add_stage(
            "sink",
            &examples::identity_crn(),
            &[PipeSource::Stage(double)],
        )
        .unwrap();
        let composed = p.build(double).unwrap();
        assert!(composed.is_output_oblivious());
        for x in 0..4u64 {
            let v =
                check_stable_computation(&composed, &NVec::from(vec![x]), 2 * x, 50_000).unwrap();
            assert!(v.is_correct(), "doubling with a tap failed at {x}");
        }
    }

    #[test]
    fn pipeline_wiring_errors_are_reported_not_panicked() {
        let mut p = Pipeline::new(1);
        // Arity mismatch.
        assert!(matches!(
            p.add_stage("bad", &examples::min_crn(), &[PipeSource::Global(0)]),
            Err(CrnError::InvalidRoles(_))
        ));
        // Unknown global.
        assert!(matches!(
            p.add_stage("bad", &examples::identity_crn(), &[PipeSource::Global(7)]),
            Err(CrnError::InvalidRoles(_))
        ));
        // Forward reference (would be a cycle).
        assert!(matches!(
            p.add_stage(
                "bad",
                &examples::identity_crn(),
                &[PipeSource::Stage(StageId(3))]
            ),
            Err(CrnError::InvalidRoles(_))
        ));
        // Output stage must exist.
        assert!(matches!(
            p.build(StageId(0)),
            Err(CrnError::InvalidRoles(_))
        ));
    }

    #[test]
    fn non_oblivious_feeders_are_detected() {
        let mut p = Pipeline::new(2);
        let max = p
            .add_stage(
                "max",
                &examples::max_crn(),
                &[PipeSource::Global(0), PipeSource::Global(1)],
            )
            .unwrap();
        let double = p
            .add_stage("double", &examples::double_crn(), &[PipeSource::Stage(max)])
            .unwrap();
        let feeders = p.non_oblivious_feeders();
        assert_eq!(feeders.len(), 1);
        assert_eq!(feeders[0].0, max);
        assert_eq!(feeders[0].1, "max");
        // The output stage itself need not be oblivious: max as the final
        // stage is fine.
        let mut tail = Pipeline::new(2);
        tail.add_stage(
            "max",
            &examples::max_crn(),
            &[PipeSource::Global(0), PipeSource::Global(1)],
        )
        .unwrap();
        assert!(tail.non_oblivious_feeders().is_empty());
        // And the escape hatch still builds the unsound composition.
        let composed = p.build(double).unwrap();
        let v = check_stable_computation(&composed, &NVec::from(vec![1, 1]), 2, 100_000).unwrap();
        assert!(!v.is_correct());
    }

    #[test]
    fn fresh_species_never_reuses_names() {
        let mut crn = Crn::new();
        let a = fresh_species(&mut crn, "W0");
        let b = fresh_species(&mut crn, "W0");
        let c = fresh_species(&mut crn, "W0");
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(crn.species().name(b), "W0.2");
        assert_eq!(crn.species().name(c), "W0.3");
    }
}
