//! Composition of function CRNs by concatenation (Section 2.3).
//!
//! Observation 2.2: if an upstream CRN `C_f` is output-oblivious, renaming its
//! output species to the input species of a downstream CRN `C_g` (and keeping
//! all other species disjoint) yields a CRN that stably computes `g ∘ f`.
//! The module also provides the multi-upstream "feed-forward" wiring used by
//! the Lemma 6.2 construction, where the global inputs are fanned out to
//! several upstream modules whose outputs feed one downstream module.

use std::collections::HashMap;

use crate::crn::Crn;
use crate::error::CrnError;
use crate::function::{FunctionCrn, Roles};
use crate::reaction::Reaction;
use crate::species::Species;
use crate::transform::import_module;

/// Concatenates a single upstream CRN computing `f : N^d → N` with a
/// downstream CRN computing `g : N → N`, yielding a CRN for `g ∘ f`.
///
/// The upstream output species is renamed to the downstream input species; all
/// other species are kept disjoint by prefixing.  A fresh global leader `L` is
/// introduced with the reaction `L -> L_f + L_g` (producing whichever module
/// leaders exist), as in the paper's definition of the concatenated CRN.
///
/// Correctness (Observation 2.2) requires the *upstream* CRN to be
/// output-oblivious; this function does not enforce that, because the paper
/// also uses non-oblivious upstream CRNs to demonstrate how composition fails
/// (Section 1.2) — callers that need the guarantee should check
/// [`FunctionCrn::is_output_oblivious`] first.
///
/// # Errors
///
/// Returns [`CrnError::InvalidRoles`] if the downstream CRN does not have
/// exactly one input.
pub fn concatenate(
    upstream: &FunctionCrn,
    downstream: &FunctionCrn,
) -> Result<FunctionCrn, CrnError> {
    if downstream.dim() != 1 {
        return Err(CrnError::InvalidRoles(format!(
            "downstream CRN must have exactly 1 input, has {}",
            downstream.dim()
        )));
    }
    compose_feed_forward(std::slice::from_ref(upstream), downstream, false)
}

/// Wires `upstreams[k]` to input `k` of `downstream`.
///
/// When `share_inputs` is `false`, the composed CRN's input list is the
/// concatenation of the upstream input lists (each upstream owns its own
/// inputs).  When `share_inputs` is `true`, all upstream CRNs must have the
/// same arity `d`, the composed CRN has arity `d`, and fan-out reactions
/// `X_i -> X_i^{(1)} + … + X_i^{(m)}` copy each global input to every
/// upstream module — the "fan out" operation described in the proof of
/// Lemma 6.2.
///
/// # Errors
///
/// Returns [`CrnError::InvalidRoles`] if the downstream arity does not match
/// the number of upstream modules, or (with `share_inputs`) the upstream
/// arities differ.
pub fn compose_feed_forward(
    upstreams: &[FunctionCrn],
    downstream: &FunctionCrn,
    share_inputs: bool,
) -> Result<FunctionCrn, CrnError> {
    if downstream.dim() != upstreams.len() {
        return Err(CrnError::InvalidRoles(format!(
            "downstream arity {} does not match {} upstream modules",
            downstream.dim(),
            upstreams.len()
        )));
    }
    if share_inputs {
        let dims: Vec<usize> = upstreams.iter().map(FunctionCrn::dim).collect();
        if dims.windows(2).any(|w| w[0] != w[1]) {
            return Err(CrnError::InvalidRoles(format!(
                "shared-input composition requires equal upstream arities, got {dims:?}"
            )));
        }
    }

    let mut crn = Crn::new();
    let mut module_leaders: Vec<Species> = Vec::new();
    let mut upstream_input_species: Vec<Vec<Species>> = Vec::new();

    // Import upstream modules; module k's output species is renamed to the
    // wire name `W{k}` which doubles as downstream input k.
    for (k, upstream) in upstreams.iter().enumerate() {
        let mut shared = HashMap::new();
        shared.insert(upstream.output(), format!("W{k}"));
        let map = import_module(&mut crn, upstream.crn(), &format!("f{k}."), &shared);
        if let Some(leader) = upstream.leader() {
            module_leaders.push(map[&leader]);
        }
        upstream_input_species.push(
            upstream
                .roles()
                .inputs
                .iter()
                .map(|s| map[s])
                .collect::<Vec<_>>(),
        );
    }

    // Import the downstream module, identifying its inputs with the wires.
    let mut shared = HashMap::new();
    for (k, &input) in downstream.roles().inputs.iter().enumerate() {
        shared.insert(input, format!("W{k}"));
    }
    shared.insert(downstream.output(), "Y_out".to_owned());
    let down_map = import_module(&mut crn, downstream.crn(), "g.", &shared);
    if let Some(leader) = downstream.leader() {
        module_leaders.push(down_map[&leader]);
    }
    let output = down_map[&downstream.output()];

    // Global inputs.
    let global_inputs: Vec<Species> = if share_inputs {
        let d = upstreams.first().map_or(0, FunctionCrn::dim);
        let globals: Vec<Species> = (0..d)
            .map(|i| crn.add_species(&format!("X{}", i + 1)))
            .collect();
        // Fan-out: X_i -> X_i^{(0)} + ... + X_i^{(m-1)}.
        for (i, &global) in globals.iter().enumerate() {
            let copies: Vec<(Species, u64)> = upstream_input_species
                .iter()
                .map(|inputs| (inputs[i], 1))
                .collect();
            crn.add_reaction(Reaction::new(vec![(global, 1)], copies));
        }
        globals
    } else {
        upstream_input_species.into_iter().flatten().collect()
    };

    // Global leader releasing every module leader.
    let leader = if module_leaders.is_empty() {
        None
    } else {
        let global_leader = crn.add_species("L");
        crn.add_reaction(Reaction::new(
            vec![(global_leader, 1)],
            module_leaders.iter().map(|&l| (l, 1)).collect::<Vec<_>>(),
        ));
        Some(global_leader)
    };

    FunctionCrn::new(
        crn,
        Roles {
            inputs: global_inputs,
            output,
            leader,
        },
    )
}

/// Adds explicit fan-out reactions `X_i -> X_i^{(1)} + … + X_i^{(copies)}` for
/// a `dim`-ary input, returning the fresh CRN together with the global input
/// species and the per-copy input species.
///
/// This is the standalone form of the fan-out wiring used inside
/// [`compose_feed_forward`]; it is exposed for constructions that need to copy
/// inputs without immediately composing (e.g. benchmarks measuring fan-out
/// cost).
#[must_use]
pub fn fan_out(dim: usize, copies: usize) -> (Crn, Vec<Species>, Vec<Vec<Species>>) {
    let mut crn = Crn::new();
    let globals: Vec<Species> = (0..dim)
        .map(|i| crn.add_species(&format!("X{}", i + 1)))
        .collect();
    let mut per_copy: Vec<Vec<Species>> = vec![Vec::new(); copies];
    for (i, &global) in globals.iter().enumerate() {
        let mut products = Vec::new();
        for (k, copy_inputs) in per_copy.iter_mut().enumerate() {
            let s = crn.add_species(&format!("X{}_{}", i + 1, k));
            copy_inputs.push(s);
            products.push((s, 1));
        }
        crn.add_reaction(Reaction::new(vec![(global, 1)], products));
    }
    (crn, globals, per_copy)
}

/// Places two function CRNs side by side with disjoint species (no wiring).
///
/// The result has the concatenated input list and reports the *first* CRN's
/// output; it is used to build multi-output computations where each component
/// is computed by a parallel CRN (footnote 6 of the paper).
///
/// # Errors
///
/// Returns [`CrnError::InvalidRoles`] if role resolution fails (should not
/// happen for well-formed inputs).
pub fn parallel_union(first: &FunctionCrn, second: &FunctionCrn) -> Result<FunctionCrn, CrnError> {
    let mut crn = Crn::new();
    let map_a = import_module(&mut crn, first.crn(), "a.", &HashMap::new());
    let map_b = import_module(&mut crn, second.crn(), "b.", &HashMap::new());
    let mut leaders = Vec::new();
    if let Some(l) = first.leader() {
        leaders.push(map_a[&l]);
    }
    if let Some(l) = second.leader() {
        leaders.push(map_b[&l]);
    }
    let leader = if leaders.is_empty() {
        None
    } else {
        let global = crn.add_species("L");
        crn.add_reaction(Reaction::new(
            vec![(global, 1)],
            leaders.iter().map(|&l| (l, 1)).collect::<Vec<_>>(),
        ));
        Some(global)
    };
    let inputs: Vec<Species> = first
        .roles()
        .inputs
        .iter()
        .map(|s| map_a[s])
        .chain(second.roles().inputs.iter().map(|s| map_b[s]))
        .collect();
    FunctionCrn::new(
        crn,
        Roles {
            inputs,
            output: map_a[&first.output()],
            leader,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use crate::reachability::check_stable_computation;
    use crn_numeric::NVec;

    #[test]
    fn two_times_min_via_concatenation() {
        // Section 1.2: 2·min(x1,x2) composed from X1+X2->W and W->2Y.
        let min = examples::min_crn();
        let double = examples::double_crn();
        let composed = concatenate(&min, &double).unwrap();
        assert!(composed.is_output_oblivious());
        for x1 in 0..4u64 {
            for x2 in 0..4u64 {
                let expected = 2 * x1.min(x2);
                let v = check_stable_computation(
                    &composed,
                    &NVec::from(vec![x1, x2]),
                    expected,
                    50_000,
                )
                .unwrap();
                assert!(v.is_correct(), "2·min failed at ({x1},{x2})");
            }
        }
    }

    #[test]
    fn composing_non_oblivious_max_with_double_can_overproduce() {
        // Section 1.2: renaming the max CRN's output to W and adding W -> 2Y
        // can erroneously produce up to 2(x1+x2) copies of Y.
        let max = examples::max_crn();
        let double = examples::double_crn();
        let composed = concatenate(&max, &double).unwrap();
        let v = check_stable_computation(&composed, &NVec::from(vec![1, 1]), 2, 100_000).unwrap();
        assert!(
            !v.is_correct(),
            "composition of non-oblivious max must fail"
        );
        assert!(v.max_output_reachable > 2);
        assert_eq!(v.max_output_reachable, 4); // 2(x1 + x2)
    }

    #[test]
    fn concatenation_propagates_leaders() {
        let min1 = examples::min1_leader_crn();
        let double = examples::double_crn();
        let composed = concatenate(&min1, &double).unwrap();
        assert!(composed.has_leader());
        // 2 · min(1, x)
        for x in 0..4u64 {
            let expected = 2 * x.min(1);
            let v = check_stable_computation(&composed, &NVec::from(vec![x]), expected, 50_000)
                .unwrap();
            assert!(v.is_correct());
        }
    }

    #[test]
    fn downstream_must_be_unary_for_concatenate() {
        let min = examples::min_crn();
        assert!(matches!(
            concatenate(&min, &examples::min_crn()),
            Err(CrnError::InvalidRoles(_))
        ));
    }

    #[test]
    fn shared_input_feed_forward_computes_min_of_double_and_identity() {
        // min(2x, x) = x computed as feed-forward with shared input x.
        let double = examples::double_crn();
        let identity = examples::identity_crn();
        let min = examples::min_crn();
        let composed = compose_feed_forward(&[double, identity], &min, true).unwrap();
        assert_eq!(composed.dim(), 1);
        for x in 0..5u64 {
            let v = check_stable_computation(&composed, &NVec::from(vec![x]), x, 100_000).unwrap();
            assert!(v.is_correct(), "min(2x,x) failed at {x}");
        }
    }

    #[test]
    fn unshared_feed_forward_concatenates_input_lists() {
        // min(2a, 3b) from separate inputs a and b.
        let double = examples::multiply_crn(2);
        let triple = examples::multiply_crn(3);
        let min = examples::min_crn();
        let composed = compose_feed_forward(&[double, triple], &min, false).unwrap();
        assert_eq!(composed.dim(), 2);
        for a in 0..4u64 {
            for b in 0..4u64 {
                let expected = (2 * a).min(3 * b);
                let v =
                    check_stable_computation(&composed, &NVec::from(vec![a, b]), expected, 100_000)
                        .unwrap();
                assert!(v.is_correct(), "min(2a,3b) failed at ({a},{b})");
            }
        }
    }

    #[test]
    fn shared_inputs_require_equal_arities() {
        let double = examples::double_crn(); // arity 1
        let min = examples::min_crn(); // arity 2
        let downstream = examples::min_crn();
        assert!(matches!(
            compose_feed_forward(&[double, min], &downstream, true),
            Err(CrnError::InvalidRoles(_))
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let double = examples::double_crn();
        let min = examples::min_crn();
        assert!(matches!(
            compose_feed_forward(&[double], &min, false),
            Err(CrnError::InvalidRoles(_))
        ));
    }

    #[test]
    fn fan_out_builds_copy_reactions() {
        let (crn, globals, copies) = fan_out(2, 3);
        assert_eq!(globals.len(), 2);
        assert_eq!(copies.len(), 3);
        assert_eq!(crn.reactions().len(), 2);
        assert_eq!(crn.reactions()[0].product_size(), 3);
    }

    #[test]
    fn parallel_union_keeps_modules_independent() {
        let double = examples::double_crn();
        let min1 = examples::min1_leader_crn();
        let union = parallel_union(&double, &min1).unwrap();
        assert_eq!(union.dim(), 2);
        assert!(union.has_leader());
        // The reported output is the first module's (2x), regardless of the
        // second module's input.
        for x in 0..4u64 {
            let v =
                check_stable_computation(&union, &NVec::from(vec![x, 3]), 2 * x, 50_000).unwrap();
            assert!(v.is_correct());
        }
    }
}
