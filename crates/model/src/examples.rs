//! The worked example CRNs of Figures 1 and 2 of the paper.

use crate::crn::Crn;
use crate::function::FunctionCrn;

/// Figure 1, left: `X -> 2Y` stably computes `f(x) = 2x`.
///
/// Output-oblivious and leaderless.
#[must_use]
pub fn double_crn() -> FunctionCrn {
    let mut crn = Crn::new();
    crn.parse_reaction("X -> 2Y").expect("valid reaction");
    FunctionCrn::with_named_roles(crn, &["X"], "Y", None).expect("valid roles")
}

/// Figure 1, middle: `X1 + X2 -> Y` stably computes `f(x1, x2) = min(x1, x2)`.
///
/// Output-oblivious and leaderless — the canonical composable CRN.
#[must_use]
pub fn min_crn() -> FunctionCrn {
    let mut crn = Crn::new();
    crn.parse_reaction("X1 + X2 -> Y").expect("valid reaction");
    FunctionCrn::with_named_roles(crn, &["X1", "X2"], "Y", None).expect("valid roles")
}

/// Figure 1, right: the four-reaction CRN stably computing
/// `f(x1, x2) = max(x1, x2)` as `x1 + x2 − min(x1, x2)`.
///
/// *Not* output-oblivious: the reaction `K + Y -> ∅` consumes the output.  The
/// paper proves (Section 4) that this consumption is unavoidable: `max` is not
/// obliviously-computable.
#[must_use]
pub fn max_crn() -> FunctionCrn {
    let mut crn = Crn::new();
    crn.parse_reaction("X1 -> Z1 + Y").expect("valid reaction");
    crn.parse_reaction("X2 -> Z2 + Y").expect("valid reaction");
    crn.parse_reaction("Z1 + Z2 -> K").expect("valid reaction");
    crn.parse_reaction("K + Y -> 0").expect("valid reaction");
    FunctionCrn::with_named_roles(crn, &["X1", "X2"], "Y", None).expect("valid roles")
}

/// Figure 2, left: the leaderless CRN `X -> Y`, `2Y -> Y` stably computing
/// `min(1, x)`, which is **not** output-oblivious.
#[must_use]
pub fn min1_leaderless_crn() -> FunctionCrn {
    let mut crn = Crn::new();
    crn.parse_reaction("X -> Y").expect("valid reaction");
    crn.parse_reaction("2Y -> Y").expect("valid reaction");
    FunctionCrn::with_named_roles(crn, &["X"], "Y", None).expect("valid roles")
}

/// Figure 2, right: the output-oblivious CRN `L + X -> Y` with a single leader
/// stably computing `min(1, x)`.
#[must_use]
pub fn min1_leader_crn() -> FunctionCrn {
    let mut crn = Crn::new();
    crn.parse_reaction("L + X -> Y").expect("valid reaction");
    FunctionCrn::with_named_roles(crn, &["X"], "Y", Some("L")).expect("valid roles")
}

/// The identity CRN `X -> Y` computing `f(x) = x`, used as the downstream CRN
/// in the proof of Lemma 2.3.
#[must_use]
pub fn identity_crn() -> FunctionCrn {
    let mut crn = Crn::new();
    crn.parse_reaction("X -> Y").expect("valid reaction");
    FunctionCrn::with_named_roles(crn, &["X"], "Y", None).expect("valid roles")
}

/// A CRN computing the constant function `f() = k` using a leader:
/// `L -> k Y` (for `k = 0` the reaction is `L -> ∅`).
#[must_use]
pub fn constant_crn(k: u64) -> FunctionCrn {
    let mut crn = Crn::new();
    let l = crn.add_species("L");
    let y = crn.add_species("Y");
    crn.add_reaction(crate::reaction::Reaction::new(vec![(l, 1)], vec![(y, k)]));
    FunctionCrn::with_named_roles(crn, &[], "Y", Some("L")).expect("valid roles")
}

/// The CRN `X -> kY` computing multiplication by a constant `k ≥ 1`,
/// generalizing Figure 1 (left).
#[must_use]
pub fn multiply_crn(k: u64) -> FunctionCrn {
    assert!(k >= 1, "use constant_crn(0) for the zero function");
    let mut crn = Crn::new();
    let x = crn.add_species("X");
    let y = crn.add_species("Y");
    crn.add_reaction(crate::reaction::Reaction::new(vec![(x, 1)], vec![(y, k)]));
    FunctionCrn::with_named_roles(crn, &["X"], "Y", None).expect("valid roles")
}

/// The two-reaction CRN `X -> 3Z`, `2Z -> Y` computing `⌊3x/2⌋`, the paper's
/// running example of a (non-affine) quilt-affine function (Figure 3a).
#[must_use]
pub fn floor_three_halves_crn() -> FunctionCrn {
    let mut crn = Crn::new();
    crn.parse_reaction("X -> 3Z").expect("valid reaction");
    crn.parse_reaction("2Z -> Y").expect("valid reaction");
    FunctionCrn::with_named_roles(crn, &["X"], "Y", None).expect("valid roles")
}

/// The `k`-ary min CRN `X1 + X2 + … + Xk -> Y` used by the Lemma 6.2
/// construction.
#[must_use]
pub fn min_k_crn(k: usize) -> FunctionCrn {
    assert!(k >= 1, "min requires at least one input");
    let mut crn = Crn::new();
    let inputs: Vec<_> = (1..=k).map(|i| crn.add_species(&format!("X{i}"))).collect();
    let y = crn.add_species("Y");
    crn.add_reaction(crate::reaction::Reaction::new(
        inputs.iter().map(|&s| (s, 1)).collect::<Vec<_>>(),
        vec![(y, 1)],
    ));
    let names: Vec<String> = (1..=k).map(|i| format!("X{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    FunctionCrn::with_named_roles(crn, &name_refs, "Y", None).expect("valid roles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reachability::check_stable_computation;
    use crn_numeric::NVec;

    #[test]
    fn figure1_examples_have_expected_structure() {
        assert!(double_crn().is_output_oblivious());
        assert!(min_crn().is_output_oblivious());
        assert!(!max_crn().is_output_oblivious());
        assert_eq!(max_crn().reaction_count(), 4);
        assert_eq!(max_crn().species_count(), 6);
    }

    #[test]
    fn figure2_examples_have_expected_structure() {
        assert!(!min1_leaderless_crn().is_output_oblivious());
        assert!(!min1_leaderless_crn().has_leader());
        assert!(min1_leader_crn().is_output_oblivious());
        assert!(min1_leader_crn().has_leader());
    }

    #[test]
    fn identity_computes_x() {
        let id = identity_crn();
        for x in 0..6 {
            assert!(check_stable_computation(&id, &NVec::from(vec![x]), x, 1000)
                .unwrap()
                .is_correct());
        }
    }

    #[test]
    fn constant_crn_computes_k() {
        for k in 0..4 {
            let c = constant_crn(k);
            assert!(c.is_output_oblivious());
            let verdict = check_stable_computation(&c, &NVec::from(vec![]), k, 1000).unwrap();
            assert!(verdict.is_correct());
        }
    }

    #[test]
    fn multiply_crn_computes_kx() {
        for k in 1..4u64 {
            let m = multiply_crn(k);
            for x in 0..5u64 {
                assert!(
                    check_stable_computation(&m, &NVec::from(vec![x]), k * x, 10_000)
                        .unwrap()
                        .is_correct()
                );
            }
        }
    }

    #[test]
    fn floor_three_halves_crn_computes_quilt_affine_example() {
        let crn = floor_three_halves_crn();
        assert!(crn.is_output_oblivious());
        for x in 0..8u64 {
            let expected = 3 * x / 2;
            assert!(
                check_stable_computation(&crn, &NVec::from(vec![x]), expected, 50_000)
                    .unwrap()
                    .is_correct(),
                "⌊3·{x}/2⌋ should be {expected}"
            );
        }
    }

    #[test]
    fn min_k_generalizes_min() {
        let min3 = min_k_crn(3);
        assert!(min3.is_output_oblivious());
        for x1 in 0..3u64 {
            for x2 in 0..3u64 {
                for x3 in 0..3u64 {
                    let expected = x1.min(x2).min(x3);
                    assert!(check_stable_computation(
                        &min3,
                        &NVec::from(vec![x1, x2, x3]),
                        expected,
                        10_000
                    )
                    .unwrap()
                    .is_correct());
                }
            }
        }
    }
}
