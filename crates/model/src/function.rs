//! Function-computing CRNs: a CRN plus input/output/leader roles.

use serde::{Deserialize, Serialize};

use crn_numeric::NVec;

use crate::config::Configuration;
use crate::crn::Crn;
use crate::error::CrnError;
use crate::species::Species;

/// The species roles of a function-computing CRN (Section 2.2 of the paper):
/// an ordered list of input species `X_1, …, X_d`, an output species `Y`, and
/// an optional leader species `L` present with count 1 initially.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Roles {
    /// The ordered input species `X_1, …, X_d`.
    pub inputs: Vec<Species>,
    /// The output species `Y`.
    pub output: Species,
    /// The leader species `L`, if the CRN uses one.
    pub leader: Option<Species>,
}

/// A CRN together with the roles needed to compute a function `f : N^d → N`.
///
/// ```
/// use crn_model::examples;
/// use crn_numeric::NVec;
///
/// let double = examples::double_crn(); // X -> 2Y
/// let initial = double.initial_configuration(&NVec::from(vec![3])).unwrap();
/// assert_eq!(initial.count(double.roles().inputs[0]), 3);
/// assert!(double.is_output_oblivious());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionCrn {
    crn: Crn,
    roles: Roles,
}

impl FunctionCrn {
    /// Wraps a CRN with roles, validating that the roles are consistent.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::InvalidRoles`] if the input species are not
    /// pairwise distinct, or the output species coincides with an input or the
    /// leader.
    pub fn new(crn: Crn, roles: Roles) -> Result<Self, CrnError> {
        let mut seen = roles.inputs.clone();
        seen.sort();
        seen.dedup();
        if seen.len() != roles.inputs.len() {
            return Err(CrnError::InvalidRoles(
                "input species must be pairwise distinct".into(),
            ));
        }
        if roles.inputs.contains(&roles.output) {
            return Err(CrnError::InvalidRoles(
                "output species cannot also be an input species".into(),
            ));
        }
        if roles.leader == Some(roles.output) {
            return Err(CrnError::InvalidRoles(
                "output species cannot also be the leader".into(),
            ));
        }
        Ok(FunctionCrn { crn, roles })
    }

    /// Convenience constructor resolving role species by name.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::UnknownSpecies`] if any named species does not
    /// occur in the CRN, or [`CrnError::InvalidRoles`] if the roles are
    /// inconsistent.
    pub fn with_named_roles(
        crn: Crn,
        input_names: &[&str],
        output_name: &str,
        leader_name: Option<&str>,
    ) -> Result<Self, CrnError> {
        let lookup = |name: &str| {
            crn.species_named(name)
                .ok_or_else(|| CrnError::UnknownSpecies(name.to_owned()))
        };
        let inputs = input_names
            .iter()
            .map(|n| lookup(n))
            .collect::<Result<Vec<_>, _>>()?;
        let output = lookup(output_name)?;
        let leader = leader_name.map(lookup).transpose()?;
        FunctionCrn::new(
            crn,
            Roles {
                inputs,
                output,
                leader,
            },
        )
    }

    /// The underlying CRN.
    #[must_use]
    pub fn crn(&self) -> &Crn {
        &self.crn
    }

    /// The species roles.
    #[must_use]
    pub fn roles(&self) -> &Roles {
        &self.roles
    }

    /// The input arity `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.roles.inputs.len()
    }

    /// The output species `Y`.
    #[must_use]
    pub fn output(&self) -> Species {
        self.roles.output
    }

    /// The leader species, if any.
    #[must_use]
    pub fn leader(&self) -> Option<Species> {
        self.roles.leader
    }

    /// The initial configuration `I_x` encoding input `x`: count `x(i)` of
    /// each input species, one leader (if the CRN has one), nothing else.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::DimensionMismatch`] if `x.dim() != self.dim()`.
    pub fn initial_configuration(&self, x: &NVec) -> Result<Configuration, CrnError> {
        if x.dim() != self.dim() {
            return Err(CrnError::DimensionMismatch {
                expected: self.dim(),
                actual: x.dim(),
            });
        }
        let mut config = Configuration::new();
        for (i, &species) in self.roles.inputs.iter().enumerate() {
            config.add(species, x[i]);
        }
        if let Some(leader) = self.roles.leader {
            config.add(leader, 1);
        }
        Ok(config)
    }

    /// The count of the output species in `config`.
    #[must_use]
    pub fn output_count(&self, config: &Configuration) -> u64 {
        config.count(self.roles.output)
    }

    /// The dense-vector stride needed to address every role species: one past
    /// the largest input/output/leader index.  Role species can come from a
    /// different interner than the CRN's (`FunctionCrn::new` only validates
    /// distinctness), so dense engines must take the max of this and
    /// [`crate::CompiledCrn::stride`] before building their count vectors.
    #[must_use]
    pub fn role_stride(&self) -> usize {
        self.roles
            .inputs
            .iter()
            .chain(Some(&self.roles.output))
            .chain(self.roles.leader.as_ref())
            .map(|s| s.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Whether the CRN is *output-oblivious*: the output species is never a
    /// reactant (Section 2.3).
    #[must_use]
    pub fn is_output_oblivious(&self) -> bool {
        !self.crn.any_reaction_consumes(self.roles.output)
    }

    /// Whether the CRN is *output-monotonic*: no reaction strictly decreases
    /// the count of the output species (footnote 7 / Observation 2.4).  Every
    /// output-oblivious CRN is output-monotonic but not conversely (the output
    /// may act as a catalyst).
    #[must_use]
    pub fn is_output_monotonic(&self) -> bool {
        !self.crn.any_reaction_decreases(self.roles.output)
    }

    /// Whether the CRN declares a leader.
    #[must_use]
    pub fn has_leader(&self) -> bool {
        self.roles.leader.is_some()
    }

    /// Number of species (a construction-size metric reported in E9).
    #[must_use]
    pub fn species_count(&self) -> usize {
        self.crn.species().len()
    }

    /// Number of reactions (a construction-size metric reported in E9).
    #[must_use]
    pub fn reaction_count(&self) -> usize {
        self.crn.reactions().len()
    }

    /// Decomposes into the underlying CRN and roles.
    #[must_use]
    pub fn into_parts(self) -> (Crn, Roles) {
        (self.crn, self.roles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn min_crn() -> FunctionCrn {
        let mut crn = Crn::new();
        crn.parse_reaction("X1 + X2 -> Y").unwrap();
        FunctionCrn::with_named_roles(crn, &["X1", "X2"], "Y", None).unwrap()
    }

    #[test]
    fn roles_resolution() {
        let f = min_crn();
        assert_eq!(f.dim(), 2);
        assert!(!f.has_leader());
        assert!(f.is_output_oblivious());
        assert!(f.is_output_monotonic());
        assert_eq!(f.species_count(), 3);
        assert_eq!(f.reaction_count(), 1);
    }

    #[test]
    fn unknown_species_rejected() {
        let mut crn = Crn::new();
        crn.parse_reaction("X1 + X2 -> Y").unwrap();
        let err = FunctionCrn::with_named_roles(crn, &["X1", "X3"], "Y", None).unwrap_err();
        assert_eq!(err, CrnError::UnknownSpecies("X3".into()));
    }

    #[test]
    fn duplicate_inputs_rejected() {
        let mut crn = Crn::new();
        crn.parse_reaction("X1 + X2 -> Y").unwrap();
        let err = FunctionCrn::with_named_roles(crn, &["X1", "X1"], "Y", None).unwrap_err();
        assert!(matches!(err, CrnError::InvalidRoles(_)));
    }

    #[test]
    fn output_cannot_be_input_or_leader() {
        let mut crn = Crn::new();
        crn.parse_reaction("X1 + X2 -> Y").unwrap();
        assert!(matches!(
            FunctionCrn::with_named_roles(crn.clone(), &["X1", "Y"], "Y", None),
            Err(CrnError::InvalidRoles(_))
        ));
        assert!(matches!(
            FunctionCrn::with_named_roles(crn, &["X1", "X2"], "Y", Some("Y")),
            Err(CrnError::InvalidRoles(_))
        ));
    }

    #[test]
    fn initial_configuration_encodes_input_and_leader() {
        let mut crn = Crn::new();
        crn.parse_reaction("L + X -> Y").unwrap();
        let f = FunctionCrn::with_named_roles(crn, &["X"], "Y", Some("L")).unwrap();
        let init = f.initial_configuration(&NVec::from(vec![4])).unwrap();
        assert_eq!(init.count(f.roles().inputs[0]), 4);
        assert_eq!(init.count(f.leader().unwrap()), 1);
        assert_eq!(init.total(), 5);
        assert!(matches!(
            f.initial_configuration(&NVec::from(vec![1, 2])),
            Err(CrnError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn output_monotonic_but_not_oblivious() {
        // Y + X -> Y + Z uses Y as a catalyst: monotonic, not oblivious.
        let mut crn = Crn::new();
        crn.parse_reaction("Y + X -> Y + Z").unwrap();
        crn.parse_reaction("W -> Y").unwrap();
        let f = FunctionCrn::with_named_roles(crn, &["X"], "Y", None).unwrap();
        assert!(f.is_output_monotonic());
        assert!(!f.is_output_oblivious());
    }

    #[test]
    fn max_crn_is_not_output_monotonic() {
        let mut crn = Crn::new();
        crn.parse_reaction("X1 -> Z1 + Y").unwrap();
        crn.parse_reaction("X2 -> Z2 + Y").unwrap();
        crn.parse_reaction("Z1 + Z2 -> K").unwrap();
        crn.parse_reaction("K + Y -> 0").unwrap();
        let f = FunctionCrn::with_named_roles(crn, &["X1", "X2"], "Y", None).unwrap();
        assert!(!f.is_output_oblivious());
        assert!(!f.is_output_monotonic());
    }
}
