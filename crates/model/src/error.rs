//! Error type for CRN construction and analysis.

use std::fmt;

/// Errors raised while building or analysing CRNs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CrnError {
    /// A species name was expected to exist but does not.
    UnknownSpecies(String),
    /// The input vector's dimension does not match the CRN's input arity.
    DimensionMismatch {
        /// Number of input species declared by the CRN.
        expected: usize,
        /// Dimension of the supplied input vector.
        actual: usize,
    },
    /// A role (input/output/leader) was declared inconsistently.
    InvalidRoles(String),
    /// An exhaustive search exceeded its configured limits.
    SearchLimitExceeded {
        /// Human-readable description of which limit was hit.
        limit: String,
    },
    /// The requested operation requires an output-oblivious CRN but the CRN
    /// consumes its output species.
    NotOutputOblivious,
    /// A renaming or module import would collapse two distinct species onto
    /// the same name.  Species names are user-controlled (they arrive through
    /// the `.crn` parser), so this is a recoverable input error, not a bug.
    SpeciesCollision {
        /// The name two distinct species would share.
        name: String,
    },
}

impl fmt::Display for CrnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrnError::UnknownSpecies(name) => write!(f, "unknown species `{name}`"),
            CrnError::DimensionMismatch { expected, actual } => write!(
                f,
                "input dimension mismatch: CRN has {expected} input species, got {actual}"
            ),
            CrnError::InvalidRoles(msg) => write!(f, "invalid species roles: {msg}"),
            CrnError::SearchLimitExceeded { limit } => {
                write!(f, "exhaustive search exceeded limit: {limit}")
            }
            CrnError::NotOutputOblivious => {
                write!(f, "operation requires an output-oblivious CRN")
            }
            CrnError::SpeciesCollision { name } => {
                write!(f, "two distinct species would collapse onto `{name}`")
            }
        }
    }
}

impl std::error::Error for CrnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CrnError::UnknownSpecies("W".into()).to_string(),
            "unknown species `W`"
        );
        assert!(CrnError::DimensionMismatch {
            expected: 2,
            actual: 3
        }
        .to_string()
        .contains("2 input species"));
        assert!(CrnError::SearchLimitExceeded {
            limit: "10000 configurations".into()
        }
        .to_string()
        .contains("10000"));
        assert_eq!(
            CrnError::SpeciesCollision { name: "W0".into() }.to_string(),
            "two distinct species would collapse onto `W0`"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<CrnError>();
    }
}
