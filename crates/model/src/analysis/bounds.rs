//! Per-species reachable-count intervals from invariant structure.
//!
//! Nonnegative conservation laws bound species counts, but many CRNs (the
//! paper's `max` included) admit *no* nonnegative law while still being
//! bounded.  The right generalization is a *monotone potential*: a
//! nonnegative weight vector `v` with `v·N ≤ 0` makes `v·c` nonincreasing
//! along every trajectory, so `v(s)·c(s) ≤ v·c ≤ v·c₀` bounds every species
//! in `v`'s support; `v·N ≥ 0` symmetrically yields lower bounds.  Both
//! cones are enumerated exactly by the same Farkas construction as
//! P-semiflows, extended with one slack row per reaction (and therefore
//! share the [`FARKAS_ROW_CAP`] truncation semantics — sound, possibly
//! incomplete).
//!
//! [`SpeciesBounds::intervals`] combines three sound sources into one
//! interval per species, given a concrete initial configuration:
//!
//! 1. decreasing potentials: `c(s) ≤ ⌊v·c₀ / v(s)⌋`;
//! 2. the liveness fixpoint: a species never producible from the start's
//!    support (and absent at the start) stays at zero;
//! 3. signed conservation laws `v·c = v·c₀`, solved for each supported
//!    species against the other species' current intervals (two
//!    deterministic refinement rounds).
//!
//! Every reachable configuration satisfies every genuine invariant, so the
//! resulting intervals *contain every reachable count* — which is what lets
//! the reachability engine refuse inputs (the output interval excludes the
//! expected value), prove inputs correct (the output is pinned and the
//! state space provably fits the search limit), and perfect-hash the arena
//! (the interval box indexes every reachable configuration).
//!
//! [`FARKAS_ROW_CAP`]: super::invariants::FARKAS_ROW_CAP

use crn_numeric::gcd_i128;

use crate::compiled::CompiledCrn;

use super::invariants::{farkas_annul, retain_minimal_support, ConservationLaw, FARKAS_ROW_CAP};
use super::liveness::Liveness;
use super::stoichiometry::Stoichiometry;

/// The monotone-potential generators of a compiled CRN, computed once per
/// CRN and reusable across initial configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpeciesBounds {
    stride: usize,
    /// Nonnegative `v` with `v·N ≤ 0`: `v·c` never increases.
    decreasing: Vec<Vec<i128>>,
    /// Nonnegative `v` with `v·N ≥ 0`: `v·c` never decreases.
    increasing: Vec<Vec<i128>>,
    truncated: bool,
}

/// One interval of possible counts per species: every reachable
/// configuration lies inside the box.  `None` upper bounds mean unbounded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountIntervals {
    lower: Vec<u64>,
    upper: Vec<Option<u64>>,
}

impl SpeciesBounds {
    /// Enumerates both potential cones with the default Farkas cap.
    #[must_use]
    pub fn of(compiled: &CompiledCrn) -> Self {
        Self::with_cap(compiled, FARKAS_ROW_CAP)
    }

    /// Enumerates both potential cones, keeping at most `max_rows`
    /// intermediate Farkas rows per column.
    #[must_use]
    pub fn with_cap(compiled: &CompiledCrn, max_rows: usize) -> Self {
        let stoich = Stoichiometry::of(compiled);
        let (decreasing, cut_dec) = monotone_potentials(&stoich, 1, max_rows);
        let (increasing, cut_inc) = monotone_potentials(&stoich, -1, max_rows);
        SpeciesBounds {
            stride: stoich.stride(),
            decreasing,
            increasing,
            truncated: cut_dec || cut_inc,
        }
    }

    /// Whether the Farkas cap truncated either cone: coverage claims (a
    /// species with *no* covering potential) are then unreliable.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// The species stride the potentials were computed over.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Whether some decreasing potential gives species `s` a finite upper
    /// bound for every initial configuration.
    #[must_use]
    pub fn covered(&self, s: usize) -> bool {
        self.decreasing
            .iter()
            .any(|v| v.get(s).copied().unwrap_or(0) > 0)
    }

    /// The decreasing-potential generators (one weight vector per row).
    #[must_use]
    pub fn decreasing_potentials(&self) -> &[Vec<i128>] {
        &self.decreasing
    }

    /// Sound per-species count intervals for every configuration reachable
    /// from `start`.  `live` must be the liveness fixpoint of the same CRN
    /// seeded with `start`'s support; `laws` are signed conservation laws of
    /// the same CRN (typically the [`conservation_basis`] the reachability
    /// oracle already holds).  `start` may be longer than the analyzed
    /// stride; the excess species are untouched by every reaction and pin
    /// to their initial counts.
    ///
    /// [`conservation_basis`]: super::invariants::conservation_basis
    #[must_use]
    pub fn intervals(
        &self,
        start: &[u64],
        live: &Liveness,
        laws: &[ConservationLaw],
    ) -> CountIntervals {
        let n = start.len();
        let mut lower = vec![0u64; n];
        let mut upper: Vec<Option<u64>> = vec![None; n];
        for s in self.stride.min(n)..n {
            lower[s] = start[s];
            upper[s] = Some(start[s]);
        }

        // 1. Decreasing potentials: v(s)·c(s) ≤ v·c ≤ v·c₀.
        for v in &self.decreasing {
            let value = weigh(v, start);
            for (s, &w) in v.iter().enumerate().take(n) {
                if w > 0 {
                    let bound = clamp_u64(value / w);
                    if upper[s].map_or(true, |u| bound < u) {
                        upper[s] = Some(bound);
                    }
                }
            }
        }

        // 2. Liveness: a species never producible from the start's support
        // is absent at the start and stays absent forever.
        for (s, u) in upper.iter_mut().enumerate().take(self.stride.min(n)) {
            if !live.producible(s) {
                debug_assert_eq!(start[s], 0, "a present species is producible");
                *u = Some(0);
            }
        }

        // 3. Increasing potentials: v·c ≥ v·c₀, so a species' count is at
        // least the initial potential minus what the rest of the support
        // can possibly carry (needs finite upper bounds on the rest).
        for v in &self.increasing {
            let value = weigh(v, start);
            for (s, &w) in v.iter().enumerate().take(n) {
                if w <= 0 {
                    continue;
                }
                let mut rest = 0i128;
                let mut finite = true;
                for (t, &wt) in v.iter().enumerate().take(n) {
                    if t == s || wt == 0 {
                        continue;
                    }
                    match upper[t] {
                        Some(u) => rest += wt * i128::from(u),
                        None => {
                            finite = false;
                            break;
                        }
                    }
                }
                if finite {
                    let bound = clamp_u64(ceil_div(value - rest, w));
                    if bound > lower[s] {
                        lower[s] = bound;
                    }
                }
            }
        }

        let mut intervals = CountIntervals { lower, upper };
        // 4. Signed-law refinement: solve v·c = v·c₀ for each supported
        // species against the rest's intervals.  Two rounds let a bound
        // tightened by one law feed the next; the round count is fixed for
        // determinism.
        for _ in 0..2 {
            for law in laws {
                refine_with_law(&mut intervals, law, start);
            }
        }
        debug_assert!(intervals.admits(start), "the start lies in its own box");
        intervals
    }

    /// Sound per-species count intervals covering every configuration
    /// reachable from *any* start `≤ top` componentwise — the hull of a whole
    /// input box rather than one point.  `live` must be the liveness fixpoint
    /// seeded with `top`'s support.
    ///
    /// Soundness: decreasing-potential bounds are monotone in the start
    /// (weights are nonnegative, so `v·c₀ ≤ v·top`), producibility is
    /// monotone in the seed support (a species dead from `top`'s full support
    /// is dead from every sub-support), and every lower bound is relaxed to
    /// zero (law refinement and increasing potentials are per-point values
    /// and do not transfer across the box).
    #[must_use]
    pub fn box_hull(&self, top: &[u64], live: &Liveness) -> CountIntervals {
        let n = top.len();
        let lower = vec![0u64; n];
        let mut upper: Vec<Option<u64>> = vec![None; n];
        // Untouched species can never move, so the top value bounds them
        // across the whole box.
        for (s, u) in upper.iter_mut().enumerate().take(n).skip(self.stride) {
            *u = Some(top[s]);
        }
        for v in &self.decreasing {
            let value = weigh(v, top);
            for (s, &w) in v.iter().enumerate().take(n) {
                if w > 0 {
                    let bound = clamp_u64(value / w);
                    if upper[s].map_or(true, |u| bound < u) {
                        upper[s] = Some(bound);
                    }
                }
            }
        }
        for (s, u) in upper.iter_mut().enumerate().take(self.stride.min(n)) {
            if !live.producible(s) {
                // Dead species stay at their start count, which is at most
                // the top's.
                let cap = top[s];
                if u.map_or(true, |b| cap < b) {
                    *u = Some(cap);
                }
            }
        }
        let intervals = CountIntervals { lower, upper };
        debug_assert!(intervals.admits(top), "the top corner lies in the hull");
        intervals
    }
}

impl CountIntervals {
    /// The number of species slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lower.len()
    }

    /// Whether the interval set covers no species at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lower.is_empty()
    }

    /// The least possible count of species `s` (zero past the end).
    #[must_use]
    pub fn lower(&self, s: usize) -> u64 {
        self.lower.get(s).copied().unwrap_or(0)
    }

    /// The greatest possible count of species `s` (`None` = unbounded;
    /// species past the end are untouched and pinned to zero).
    #[must_use]
    pub fn upper(&self, s: usize) -> Option<u64> {
        if s < self.upper.len() {
            self.upper[s]
        } else {
            Some(0)
        }
    }

    /// The single possible count of species `s`, when its interval is a
    /// point.
    #[must_use]
    pub fn pinned(&self, s: usize) -> Option<u64> {
        match self.upper(s) {
            Some(u) if u == self.lower(s) => Some(u),
            _ => None,
        }
    }

    /// Whether `counts` lies inside the box.
    #[must_use]
    pub fn admits(&self, counts: &[u64]) -> bool {
        counts
            .iter()
            .enumerate()
            .all(|(s, &c)| c >= self.lower(s) && self.upper(s).map_or(true, |u| c <= u))
    }

    /// The number of configurations in the box (`None` when some species is
    /// unbounded), saturating at `u128::MAX`.
    #[must_use]
    pub fn state_space(&self) -> Option<u128> {
        let mut product = 1u128;
        for s in 0..self.len() {
            let width = u128::from(self.upper(s)? - self.lower(s)) + 1;
            product = product.saturating_mul(width);
        }
        Some(product)
    }
}

/// `v·counts` with counts past `v`'s length weighing zero.
fn weigh(v: &[i128], counts: &[u64]) -> i128 {
    v.iter().zip(counts).map(|(&w, &c)| w * i128::from(c)).sum()
}

fn clamp_u64(x: i128) -> u64 {
    if x <= 0 {
        0
    } else {
        u64::try_from(x).unwrap_or(u64::MAX)
    }
}

fn floor_div(a: i128, b: i128) -> i128 {
    let q = a / b;
    let r = a % b;
    if r != 0 && ((r < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn ceil_div(a: i128, b: i128) -> i128 {
    -floor_div(-a, b)
}

/// Tightens `intervals` with the equality `law·c = law·start`: for each
/// supported species, the extreme values of the law over the other species'
/// intervals bound what the species itself can carry.
fn refine_with_law(intervals: &mut CountIntervals, law: &ConservationLaw, start: &[u64]) {
    let n = intervals.len();
    let value = law.weigh(start);
    for s in 0..n.min(law.weights().len()) {
        let ws = law.weight(s);
        if ws == 0 {
            continue;
        }
        // The rest of the law, v·c − ws·c(s), ranges over [rest_min, rest_max].
        let mut rest_min = Some(0i128);
        let mut rest_max = Some(0i128);
        for t in 0..n.min(law.weights().len()) {
            if t == s {
                continue;
            }
            let wt = law.weight(t);
            if wt == 0 {
                continue;
            }
            let lo = i128::from(intervals.lower(t));
            let hi = intervals.upper(t).map(i128::from);
            if wt > 0 {
                rest_min = rest_min.map(|m| m + wt * lo);
                rest_max = match (rest_max, hi) {
                    (Some(m), Some(h)) => Some(m + wt * h),
                    _ => None,
                };
            } else {
                rest_min = match (rest_min, hi) {
                    (Some(m), Some(h)) => Some(m + wt * h),
                    _ => None,
                };
                rest_max = rest_max.map(|m| m + wt * lo);
            }
        }
        // ws·c(s) = value − rest ∈ [value − rest_max, value − rest_min].
        let own_min = rest_max.map(|m| value - m);
        let own_max = rest_min.map(|m| value - m);
        let (new_lower, new_upper) = if ws > 0 {
            (
                own_min.map(|m| ceil_div(m, ws)),
                own_max.map(|m| floor_div(m, ws)),
            )
        } else {
            (
                own_max.map(|m| ceil_div(m, ws)),
                own_min.map(|m| floor_div(m, ws)),
            )
        };
        if let Some(lb) = new_lower {
            let lb = clamp_u64(lb);
            if lb > intervals.lower[s] {
                intervals.lower[s] = lb;
            }
        }
        if let Some(ub) = new_upper {
            let ub = clamp_u64(ub);
            if intervals.upper[s].map_or(true, |u| ub < u) {
                intervals.upper[s] = Some(ub);
            }
        }
    }
}

/// Minimal-support generators of `{v ≥ 0 : sign · (v·N) ≤ 0}` via Farkas on
/// the stoichiometry extended with one nonnegative slack per reaction:
/// rows of `[sign·N ; I_R]` with combination coefficients `(v, w)` satisfy
/// `sign·(v·N) = −w ≤ 0` exactly.
fn monotone_potentials(
    stoich: &Stoichiometry,
    sign: i128,
    max_rows: usize,
) -> (Vec<Vec<i128>>, bool) {
    let species = stoich.stride();
    let reactions = stoich.reaction_count();
    let width = reactions + species + reactions;
    // Species rows: [sign·N[s][·] | e_s in the (v, w) payload].
    let mut table: Vec<Vec<i128>> = (0..species)
        .map(|s| {
            let mut row = vec![0i128; width];
            for (r, cell) in row[..reactions].iter_mut().enumerate() {
                *cell = sign * i128::from(stoich.entry(s, r));
            }
            row[reactions + s] = 1;
            row
        })
        .collect();
    // Slack rows: [e_r | e_{S+r} in the payload].
    for r in 0..reactions {
        let mut row = vec![0i128; width];
        row[r] = 1;
        row[reactions + species + r] = 1;
        table.push(row);
    }

    let (table, truncated) = farkas_annul(table, reactions, max_rows);

    // Keep minimal-support rows of the full (v, w) cone — those include all
    // extreme rays — then project out the slack half.
    let mut rows: Vec<Vec<i128>> = table
        .into_iter()
        .map(|row| row[reactions..].to_vec())
        .filter(|payload| payload[..species].iter().any(|&w| w != 0))
        .collect();
    retain_minimal_support(&mut rows, |row| row.iter().map(|&w| w != 0).collect());
    let mut potentials: Vec<Vec<i128>> = rows
        .into_iter()
        .map(|row| {
            let mut v = row[..species].to_vec();
            let g = v.iter().fold(0i128, |acc, &w| gcd_i128(acc, w));
            if g > 1 {
                for w in &mut v {
                    *w /= g;
                }
            }
            v
        })
        .collect();
    potentials.sort();
    potentials.dedup();
    (potentials, truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::conservation_basis;
    use crate::crn::Crn;
    use crate::examples;

    fn setup(crn: &Crn) -> (CompiledCrn, SpeciesBounds, Vec<ConservationLaw>) {
        let compiled = CompiledCrn::compile(crn);
        let bounds = SpeciesBounds::of(&compiled);
        let laws = conservation_basis(&Stoichiometry::of(&compiled));
        (compiled, bounds, laws)
    }

    fn intervals_from(
        compiled: &CompiledCrn,
        bounds: &SpeciesBounds,
        laws: &[ConservationLaw],
        start: &[u64],
    ) -> CountIntervals {
        let support: Vec<usize> = (0..start.len()).filter(|&s| start[s] > 0).collect();
        let live = Liveness::analyze(compiled, &support);
        bounds.intervals(start, &live, laws)
    }

    #[test]
    fn max_crn_is_fully_bounded_despite_having_no_semiflow() {
        // max admits no nonnegative conservation law, yet every species is
        // covered by a decreasing potential: X1+Z1, X1+Z1+K, X1+X2+Y, …
        let max = examples::max_crn();
        let (compiled, bounds, laws) = setup(max.crn());
        assert!(!bounds.truncated());
        for s in 0..compiled.stride() {
            assert!(bounds.covered(s), "species {s} uncovered");
        }
        let crn = max.crn();
        let idx = |name: &str| crn.species_named(name).unwrap().index();
        let mut start = vec![0u64; compiled.stride()];
        start[idx("X1")] = 2;
        start[idx("X2")] = 3;
        let iv = intervals_from(&compiled, &bounds, &laws, &start);
        assert_eq!(iv.upper(idx("X1")), Some(2));
        assert_eq!(iv.upper(idx("X2")), Some(3));
        assert_eq!(iv.upper(idx("Z1")), Some(2));
        assert_eq!(iv.upper(idx("Z2")), Some(3));
        assert_eq!(iv.upper(idx("K")), Some(2));
        assert_eq!(iv.upper(idx("Y")), Some(5));
        assert_eq!(iv.state_space(), Some(3 * 3 * 6 * 4 * 4 * 3));
    }

    #[test]
    fn zero_input_pins_the_whole_min_box() {
        // min on (0, 4): X1 = 0 caps Y at zero via the potential X1 + Y,
        // and the signed law X1 - X2 then pins X2 at 4 — the reaction can
        // never fire, and the analysis proves the reachable set is {start}.
        let min = examples::min_crn();
        let (compiled, bounds, laws) = setup(min.crn());
        let crn = min.crn();
        let idx = |name: &str| crn.species_named(name).unwrap().index();
        let mut start = vec![0u64; compiled.stride()];
        start[idx("X2")] = 4;
        let iv = intervals_from(&compiled, &bounds, &laws, &start);
        assert_eq!(iv.pinned(idx("Y")), Some(0));
        assert_eq!(iv.pinned(idx("X1")), Some(0));
        assert_eq!(iv.pinned(idx("X2")), Some(4));
        assert_eq!(iv.state_space(), Some(1));
    }

    #[test]
    fn divergent_species_stay_unbounded() {
        // X -> 2X admits no decreasing potential on X.
        let mut crn = Crn::new();
        crn.parse_reaction("X -> 2X").unwrap();
        let (compiled, bounds, laws) = setup(&crn);
        assert!(!bounds.covered(0));
        let iv = intervals_from(&compiled, &bounds, &laws, &[1]);
        assert_eq!(iv.upper(0), None);
        assert_eq!(iv.state_space(), None);
    }

    #[test]
    fn dead_species_pin_to_zero() {
        let mut crn = Crn::new();
        crn.parse_reaction("X -> Y").unwrap();
        crn.parse_reaction("D -> U").unwrap();
        let (compiled, bounds, laws) = setup(&crn);
        let x = crn.species_named("X").unwrap().index();
        let d = crn.species_named("D").unwrap().index();
        let u = crn.species_named("U").unwrap().index();
        let mut start = vec![0u64; compiled.stride()];
        start[x] = 3;
        let iv = intervals_from(&compiled, &bounds, &laws, &start);
        assert_eq!(iv.pinned(d), Some(0));
        assert_eq!(iv.pinned(u), Some(0));
    }

    #[test]
    fn law_refinement_uses_equalities_both_ways() {
        // A -> B with A₀ = 3: the law A + B = 3 pins B ≥ 3 − ub(A) = 0 and
        // the increasing potential B gives lb(B) = 0; refinement tightens
        // nothing beyond ub(B) = 3 — but with ub(A) from e_A and the law,
        // every reachable c has A + B = 3 exactly, so ub(B) = 3, lb = 0.
        let mut crn = Crn::new();
        crn.parse_reaction("A -> B").unwrap();
        let (compiled, bounds, laws) = setup(&crn);
        let a = crn.species_named("A").unwrap().index();
        let b = crn.species_named("B").unwrap().index();
        let iv = intervals_from(&compiled, &bounds, &laws, &[3, 0]);
        assert_eq!(iv.upper(a), Some(3));
        assert_eq!(iv.upper(b), Some(3));
        assert_eq!(iv.state_space(), Some(16));
        assert!(iv.admits(&[3, 0]));
        assert!(iv.admits(&[0, 3]));
        assert!(!iv.admits(&[4, 0]));
    }

    #[test]
    fn intervals_contain_every_exhaustively_reachable_configuration() {
        // Direct soundness check on max(2, 2): enumerate reachable configs
        // with the naive engine's dynamics via the compiled reactions and
        // assert each lies in the box.
        let max = examples::max_crn();
        let (compiled, bounds, laws) = setup(max.crn());
        let crn = max.crn();
        let idx = |name: &str| crn.species_named(name).unwrap().index();
        let mut start = vec![0u64; compiled.stride()];
        start[idx("X1")] = 2;
        start[idx("X2")] = 2;
        let iv = intervals_from(&compiled, &bounds, &laws, &start);
        let mut seen = vec![start.clone()];
        let mut frontier = vec![start];
        while let Some(cur) = frontier.pop() {
            for reaction in compiled.reactions() {
                if reaction.applicable(&cur) {
                    let mut succ = vec![0u64; cur.len()];
                    reaction.apply_into(&cur, &mut succ);
                    if !seen.contains(&succ) {
                        assert!(iv.admits(&succ), "escaped box: {succ:?}");
                        seen.push(succ.clone());
                        frontier.push(succ);
                    }
                }
            }
        }
        assert!(u128::try_from(seen.len()).unwrap() <= iv.state_space().unwrap());
    }
}
