//! The exact integer stoichiometry matrix of a compiled CRN.

use crate::compiled::CompiledCrn;

/// The stoichiometry matrix `N ∈ Z^{S × R}` of a CRN, stored column-major:
/// entry `N[s][r]` is the net change of species `s` when reaction `r` fires.
///
/// Rows are dense species indices up to [`CompiledCrn::stride`] (so foreign
/// species mentioned only by reactions are covered), columns are reactions in
/// the CRN's order.  Catalysts (consumed and re-produced in equal amounts)
/// contribute zero entries, exactly as in [`crate::CompiledReaction::delta`].
///
/// Every trajectory fact used by the analysis layer flows from this matrix:
/// a configuration reachable from `c` in `k` firings is `c + N·f` for the
/// firing-count vector `f ∈ N^R`, so any `v` with `v·N = 0` (a *P-invariant*
/// of the underlying Petri net) satisfies `v·c' = v·c` along every trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stoichiometry {
    stride: usize,
    columns: Vec<Vec<i64>>,
}

impl Stoichiometry {
    /// Builds the matrix from a compiled CRN.
    #[must_use]
    pub fn of(compiled: &CompiledCrn) -> Self {
        let stride = compiled.stride();
        let columns = compiled
            .reactions()
            .iter()
            .map(|reaction| {
                let mut column = vec![0i64; stride];
                for &(s, d) in reaction.delta() {
                    column[s] = d;
                }
                column
            })
            .collect();
        Stoichiometry { stride, columns }
    }

    /// The number of species rows (the compiled stride).
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The number of reaction columns.
    #[must_use]
    pub fn reaction_count(&self) -> usize {
        self.columns.len()
    }

    /// The net-change column of reaction `r` (length [`stride`](Self::stride)).
    #[must_use]
    pub fn column(&self, r: usize) -> &[i64] {
        &self.columns[r]
    }

    /// The entry `N[species][reaction]`.
    #[must_use]
    pub fn entry(&self, species: usize, reaction: usize) -> i64 {
        self.columns[reaction][species]
    }

    /// The transposed matrix `Nᵀ ∈ Z^{R × S}`: rows become reactions and
    /// columns become species.  Left-nullspace machinery applied to the
    /// transpose computes *right* nullspace vectors of `N` — the T-invariants
    /// (firing-count vectors `f` with `N·f = 0`).
    #[must_use]
    pub fn transposed(&self) -> Stoichiometry {
        let columns = (0..self.stride)
            .map(|s| self.columns.iter().map(|col| col[s]).collect())
            .collect();
        Stoichiometry {
            stride: self.columns.len(),
            columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crn::Crn;
    use crate::examples;

    #[test]
    fn max_crn_matrix_entries() {
        // X1 -> Z1 + Y ; X2 -> Z2 + Y ; Z1 + Z2 -> K ; K + Y -> 0.
        let max = examples::max_crn();
        let compiled = CompiledCrn::compile(max.crn());
        let n = Stoichiometry::of(&compiled);
        assert_eq!(n.stride(), 6);
        assert_eq!(n.reaction_count(), 4);
        let crn = max.crn();
        let idx = |name: &str| crn.species_named(name).unwrap().index();
        assert_eq!(n.entry(idx("X1"), 0), -1);
        assert_eq!(n.entry(idx("Z1"), 0), 1);
        assert_eq!(n.entry(idx("Y"), 0), 1);
        assert_eq!(n.entry(idx("Y"), 3), -1);
        assert_eq!(n.entry(idx("K"), 3), -1);
        assert_eq!(n.entry(idx("X2"), 0), 0);
    }

    #[test]
    fn transposed_swaps_rows_and_columns() {
        let max = examples::max_crn();
        let n = Stoichiometry::of(&CompiledCrn::compile(max.crn()));
        let t = n.transposed();
        assert_eq!(t.stride(), n.reaction_count());
        assert_eq!(t.reaction_count(), n.stride());
        for s in 0..n.stride() {
            for r in 0..n.reaction_count() {
                assert_eq!(t.entry(r, s), n.entry(s, r));
            }
        }
    }

    #[test]
    fn catalysts_contribute_zero_entries() {
        let mut crn = Crn::new();
        crn.parse_reaction("C + X -> C + 2Y").unwrap();
        let n = Stoichiometry::of(&CompiledCrn::compile(&crn));
        let c = crn.species_named("C").unwrap().index();
        let x = crn.species_named("X").unwrap().index();
        let y = crn.species_named("Y").unwrap().index();
        assert_eq!(n.entry(c, 0), 0);
        assert_eq!(n.entry(x, 0), -1);
        assert_eq!(n.entry(y, 0), 2);
    }
}
