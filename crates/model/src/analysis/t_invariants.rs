//! T-invariants: integer right-nullspace vectors of the stoichiometry matrix.
//!
//! A firing-count vector `f ∈ Z^R` with `N·f = 0` is a *T-invariant*: firing
//! every reaction `r` exactly `f(r)` times (in any order that stays
//! nonnegative) returns a configuration to itself.  Nonnegative T-invariants
//! (*T-semiflows*) are therefore certificates of repeatable reaction cycles,
//! and their supports tell the dual story: in a structurally bounded CRN,
//! any infinite firing sequence eventually repeats a configuration, so the
//! reactions fired infinitely often form a nonnegative T-invariant's support.
//! A reaction outside *every* T-semiflow support can fire at most finitely
//! often — the `C009` lint.
//!
//! Both computations reuse the P-invariant machinery on the transposed
//! matrix: the left nullspace of `Nᵀ` is the right nullspace of `N`, so
//! [`t_invariant_basis`] is [`conservation_basis`] on
//! [`Stoichiometry::transposed`] and [`nonnegative_t_semiflows`] is the same
//! capped Farkas enumeration (sharing [`FARKAS_ROW_CAP`] semantics: a
//! truncated run is sound but incomplete).
//!
//! [`FARKAS_ROW_CAP`]: super::invariants::FARKAS_ROW_CAP

use super::invariants::{conservation_basis, nonnegative_laws_capped};
use super::stoichiometry::Stoichiometry;

/// An integer T-invariant: one signed firing count per reaction (in the
/// CRN's reaction order), kept primitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TInvariant {
    firings: Vec<i128>,
}

impl TInvariant {
    /// The firing-count vector, indexed by reaction.
    #[must_use]
    pub fn firings(&self) -> &[i128] {
        &self.firings
    }

    /// The firing count of reaction `r` (zero past the vector's length).
    #[must_use]
    pub fn firing(&self, r: usize) -> i128 {
        self.firings.get(r).copied().unwrap_or(0)
    }

    /// The reaction indices with nonzero firing count, ascending.
    #[must_use]
    pub fn support(&self) -> Vec<usize> {
        (0..self.firings.len())
            .filter(|&r| self.firings[r] != 0)
            .collect()
    }

    /// Whether every firing count is nonnegative (a T-semiflow).
    #[must_use]
    pub fn is_nonnegative(&self) -> bool {
        self.firings.iter().all(|&c| c >= 0)
    }
}

/// The result of a capped T-semiflow enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TSemiflowEnumeration {
    /// The minimal-support nonnegative T-invariants found.
    pub semiflows: Vec<TInvariant>,
    /// Whether the intermediate-row cap truncated the enumeration.
    pub truncated: bool,
}

/// A basis of the signed right nullspace `{f : N·f = 0}` as primitive
/// integer vectors, by rational elimination on the transposed matrix.
///
/// Complete: every rational T-invariant is a combination of the returned
/// vectors, so an empty basis proves the CRN admits no reaction cycle that
/// restores a configuration (every firing makes irreversible progress).
#[must_use]
pub fn t_invariant_basis(stoich: &Stoichiometry) -> Vec<TInvariant> {
    conservation_basis(&stoich.transposed())
        .into_iter()
        .map(|law| TInvariant {
            firings: law.weights().to_vec(),
        })
        .collect()
}

/// Minimal-support nonnegative T-invariants (T-semiflows) by the capped
/// Farkas enumeration on the transposed matrix.
#[must_use]
pub fn nonnegative_t_semiflows(stoich: &Stoichiometry, max_rows: usize) -> TSemiflowEnumeration {
    let enumeration = nonnegative_laws_capped(&stoich.transposed(), max_rows);
    TSemiflowEnumeration {
        semiflows: enumeration
            .laws
            .into_iter()
            .map(|law| TInvariant {
                firings: law.weights().to_vec(),
            })
            .collect(),
        truncated: enumeration.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FARKAS_ROW_CAP;
    use crate::compiled::CompiledCrn;
    use crate::crn::Crn;
    use crate::examples;

    fn stoich(crn: &Crn) -> Stoichiometry {
        Stoichiometry::of(&CompiledCrn::compile(crn))
    }

    /// `N·f = 0` must hold exactly for every returned invariant.
    fn assert_invariants_hold(invariants: &[TInvariant], n: &Stoichiometry) {
        for inv in invariants {
            for s in 0..n.stride() {
                let dot: i128 = (0..n.reaction_count())
                    .map(|r| inv.firing(r) * i128::from(n.entry(s, r)))
                    .sum();
                assert_eq!(
                    dot,
                    0,
                    "invariant {:?} broken at species {s}",
                    inv.firings()
                );
            }
        }
    }

    #[test]
    fn figure1_crns_have_no_cycles() {
        // min and max both make irreversible progress on every firing: the
        // T-invariant space is trivial, so no reaction sequence can restore
        // a configuration.
        let min = stoich(examples::min_crn().crn());
        assert!(t_invariant_basis(&min).is_empty());
        let max = stoich(examples::max_crn().crn());
        assert!(t_invariant_basis(&max).is_empty());
        let flows = nonnegative_t_semiflows(&max, FARKAS_ROW_CAP);
        assert!(flows.semiflows.is_empty());
        assert!(!flows.truncated);
    }

    #[test]
    fn a_two_cycle_is_the_minimal_t_semiflow() {
        let mut crn = Crn::new();
        crn.parse_reaction("X -> Y").unwrap();
        crn.parse_reaction("A -> B").unwrap();
        crn.parse_reaction("B -> A").unwrap();
        let n = stoich(&crn);
        let basis = t_invariant_basis(&n);
        assert_invariants_hold(&basis, &n);
        assert_eq!(basis.len(), 1);
        assert_eq!(basis[0].firings(), &[0, 1, 1]);
        let flows = nonnegative_t_semiflows(&n, FARKAS_ROW_CAP);
        assert!(!flows.truncated);
        assert_eq!(flows.semiflows.len(), 1);
        assert_eq!(flows.semiflows[0].support(), vec![1, 2]);
        assert!(flows.semiflows[0].is_nonnegative());
    }

    #[test]
    fn weighted_cycle_counts_firings_exactly() {
        // A -> 2B fans out, so B -> C must fire twice per loop before
        // 2C -> A closes it: the unique T-semiflow is (1, 2, 1).
        let mut crn = Crn::new();
        crn.parse_reaction("A -> 2B").unwrap();
        crn.parse_reaction("B -> C").unwrap();
        crn.parse_reaction("2C -> A").unwrap();
        let n = stoich(&crn);
        let flows = nonnegative_t_semiflows(&n, FARKAS_ROW_CAP).semiflows;
        assert_invariants_hold(&flows, &n);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].firings(), &[1, 2, 1]);
    }

    #[test]
    fn reverse_pairs_give_one_semiflow_each() {
        let mut crn = Crn::new();
        crn.parse_reaction("A -> B").unwrap();
        crn.parse_reaction("B -> A").unwrap();
        crn.parse_reaction("C -> D").unwrap();
        crn.parse_reaction("D -> C").unwrap();
        let n = stoich(&crn);
        let flows = nonnegative_t_semiflows(&n, FARKAS_ROW_CAP).semiflows;
        assert_eq!(flows.len(), 2);
        let supports: Vec<Vec<usize>> = flows.iter().map(TInvariant::support).collect();
        assert!(supports.contains(&vec![0, 1]));
        assert!(supports.contains(&vec![2, 3]));
    }
}
