//! Typed structural lints with stable codes `C001`–`C009`.
//!
//! Each lint is a *static* fact about a [`FunctionCrn`] — no state space is
//! explored.  The codes are stable identifiers for tooling (goldens, CI
//! filters, `--json` consumers):
//!
//! | code | meaning |
//! |------|---------|
//! | `C001` | dead species: never producible from the inputs and leader |
//! | `C002` | unfireable reaction: some reactant is never producible |
//! | `C003` | output consumed non-catalytically ⇒ not output-oblivious (Observation 2.2) |
//! | `C004` | leader consumed by competing reactions and never regenerated |
//! | `C005` | a conservation law bounds the output to zero from every input |
//! | `C006` | a minimal siphon starts unmarked and can never become marked |
//! | `C007` | a markable trap permanently locks conservation budget away from the output |
//! | `C008` | a producible species no decreasing potential bounds — divergence risk |
//! | `C009` | a reaction outside every T-semiflow support in a cyclic bounded CRN |
//!
//! `C001`/`C002` come from the [`Liveness`] fixpoint (sound: flagged
//! structure is dead for *every* initial configuration over the declared
//! roles).  `C003` is syntactic on reaction deltas.  `C004` is a heuristic
//! for the classic starved-leader bug, deliberately conservative so that
//! single-use leaders (`L + X -> Y` computing `min(1, x)`) stay silent.
//! `C005` instantiates the P-semiflow bound: a nonnegative law `v` with zero
//! weight on every input, positive weight `v(Y)` on the output, and
//! `⌊v·c₀ / v(Y)⌋ = 0` for the leader-only part of the initial configuration
//! proves `Y = 0` along every trajectory from every input — the CRN cannot
//! compute anything but zero.
//!
//! The analysis-v2 codes instantiate Petri-net structure theory:
//!
//! * `C006` — a minimal siphon disjoint from the inputs and leader starts
//!   empty and, by the siphon property, stays empty forever: every reaction
//!   consuming from it is structurally dead for every input.
//! * `C007` — a minimal trap `Q` not containing the output, markable from
//!   the declared roles, whose species all carry positive weight under an
//!   input-independent nonnegative law that also weighs the output: marking
//!   `Q` permanently sinks at least `min_{s∈Q} v(s)` of the conserved
//!   budget, strictly lowering the output's reachable ceiling.
//! * `C008` — a producible species covered by no decreasing potential: no
//!   invariant reasoning bounds its count, so it may diverge (skipped when
//!   the potential enumeration truncated — absence would be unreliable).
//! * `C009` — in a structurally bounded CRN (every species covered by a
//!   decreasing potential) any infinite firing sequence repeats a
//!   configuration, so the reactions fired infinitely often form a
//!   T-semiflow support; a reaction outside every support fires at most
//!   finitely often.  Only reported when the CRN has at least one
//!   T-semiflow (otherwise *every* reaction of a terminating CRN would be
//!   flagged) and no relevant enumeration truncated.
//!
//! When a cap does truncate an enumeration, [`lint_full`] reports it as an
//! explicit "analysis incomplete" note instead of silently narrowing.

use crate::compiled::CompiledCrn;
use crate::function::FunctionCrn;
use crate::species::Species;

use super::bounds::SpeciesBounds;
use super::invariants::{nonnegative_laws_capped, ConservationLaw, FARKAS_ROW_CAP};
use super::liveness::Liveness;
use super::siphons::{minimal_siphons, minimal_traps, SIPHON_NODE_CAP};
use super::stoichiometry::Stoichiometry;
use super::t_invariants::nonnegative_t_semiflows;

/// Stable lint identifiers.  The numeric suffix never changes meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// Dead species: never producible from the inputs and leader.
    DeadSpecies,
    /// Unfireable reaction: some reactant is never producible.
    UnfireableReaction,
    /// The output species is consumed on a non-catalytic path.
    OutputConsumed,
    /// The leader is consumed by competing reactions and never regenerated.
    LeaderStarved,
    /// A conservation law bounds the output to zero from every input.
    OutputExcluded,
    /// A minimal siphon starts unmarked and can never become marked.
    UnmarkedSiphon,
    /// A markable trap permanently locks conservation budget away from the
    /// output.
    OutputLockingTrap,
    /// A producible species bounded by no decreasing potential.
    UnboundedSpecies,
    /// A reaction outside every T-semiflow support of a cyclic bounded CRN.
    TransientReaction,
}

impl LintCode {
    /// The stable code string, e.g. `"C003"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::DeadSpecies => "C001",
            LintCode::UnfireableReaction => "C002",
            LintCode::OutputConsumed => "C003",
            LintCode::LeaderStarved => "C004",
            LintCode::OutputExcluded => "C005",
            LintCode::UnmarkedSiphon => "C006",
            LintCode::OutputLockingTrap => "C007",
            LintCode::UnboundedSpecies => "C008",
            LintCode::TransientReaction => "C009",
        }
    }
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structural finding: a code, the anchoring species and/or reaction
/// (reaction indices follow the CRN's reaction order), and a rendered
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Which lint fired.
    pub code: LintCode,
    /// The species the finding is about, when species-anchored.
    pub species: Option<Species>,
    /// The index of the offending reaction, when reaction-anchored.
    pub reaction: Option<usize>,
    /// A rendered message with species names substituted in.
    pub message: String,
}

/// The complete result of one lint run: the findings, plus "analysis
/// incomplete" notes for every enumeration an internal cap truncated (no
/// silent caps — a clean finding list means nothing if the search that
/// would have produced findings was cut short).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintOutcome {
    /// The findings, in stable `(code, reaction, species)` order.
    pub findings: Vec<Lint>,
    /// Human-readable truncation notes, in a fixed emission order.
    pub notes: Vec<String>,
}

/// Runs every lint against a function CRN, in stable code order, dropping
/// the truncation notes.  Prefer [`lint_full`] in user-facing tooling.
#[must_use]
pub fn lint(f: &FunctionCrn) -> Vec<Lint> {
    lint_full(f).findings
}

/// Runs every lint against a function CRN, in stable code order, together
/// with the "analysis incomplete" notes.
#[must_use]
pub fn lint_full(f: &FunctionCrn) -> LintOutcome {
    let crn = f.crn();
    let species = crn.species();
    let compiled = CompiledCrn::compile(crn);
    let mut out = Vec::new();
    let mut notes = Vec::new();

    // C001 / C002 — liveness from the declared initial species.
    let mut initial: Vec<usize> = f.roles().inputs.iter().map(|s| s.index()).collect();
    if let Some(leader) = f.leader() {
        initial.push(leader.index());
    }
    let live = Liveness::analyze(&compiled, &initial);
    for s in live.dead_species() {
        // Only named species can be dead here: the compiled stride covers
        // exactly the interner plus reaction-mentioned species, and every
        // reaction-mentioned species is interned.
        if s < species.len() {
            let sp = Species(s);
            out.push(Lint {
                code: LintCode::DeadSpecies,
                species: Some(sp),
                reaction: None,
                message: format!(
                    "species `{}` is never producible from the inputs",
                    species.name(sp)
                ),
            });
        }
    }
    for r in live.unfireable_reactions() {
        out.push(Lint {
            code: LintCode::UnfireableReaction,
            species: None,
            reaction: Some(r),
            message: format!(
                "reaction `{}` can never fire: a reactant is never producible",
                crn.reactions()[r].display(species)
            ),
        });
    }

    // C003 — a reaction that strictly decreases the output species makes the
    // CRN non-output-oblivious (Observation 2.2); catalytic uses are fine.
    let output = f.output();
    for (r, reaction) in crn.reactions().iter().enumerate() {
        if reaction.decreases(output) {
            out.push(Lint {
                code: LintCode::OutputConsumed,
                species: Some(output),
                reaction: Some(r),
                message: format!(
                    "output `{}` is consumed non-catalytically by `{}`: \
                     the CRN is not output-oblivious",
                    species.name(output),
                    crn.reactions()[r].display(species)
                ),
            });
        }
    }

    // C004 — the leader is contested (reactant of two or more reactions, at
    // least one of which destroys it) and nothing ever regenerates it.  A
    // single consuming reaction is the normal single-use-leader idiom and
    // stays silent.
    if let Some(leader) = f.leader() {
        let regenerated = crn.reactions().iter().any(|rx| rx.produces(leader));
        let consumers: Vec<usize> = (0..crn.reactions().len())
            .filter(|&r| crn.reactions()[r].consumes(leader))
            .collect();
        let destroyed = consumers
            .iter()
            .any(|&r| crn.reactions()[r].decreases(leader));
        if !regenerated && consumers.len() >= 2 && destroyed {
            out.push(Lint {
                code: LintCode::LeaderStarved,
                species: Some(leader),
                reaction: consumers.first().copied(),
                message: format!(
                    "leader `{}` is consumed by {} reactions and never regenerated",
                    species.name(leader),
                    consumers.len()
                ),
            });
        }
    }

    // C005 — a nonnegative conservation law proves the output stays zero.
    let stoich = Stoichiometry::of(&compiled);
    let inputs = &f.roles().inputs;
    let leader = f.leader();
    let semiflows = nonnegative_laws_capped(&stoich, FARKAS_ROW_CAP);
    if semiflows.truncated {
        notes.push(format!(
            "analysis incomplete: P-semiflow enumeration truncated at {FARKAS_ROW_CAP} rows \
             (C005/C007 may miss laws)"
        ));
    }
    for law in &semiflows.laws {
        if let Some(message) = output_excluded(law, inputs, output, leader, species) {
            out.push(Lint {
                code: LintCode::OutputExcluded,
                species: Some(output),
                reaction: None,
                message,
            });
            break; // one witness law is enough
        }
    }

    // C006 — a minimal siphon disjoint from every initially-marked species
    // starts empty; by the siphon property nothing can ever mark it.
    let mut marked = vec![false; compiled.stride()];
    for &s in &initial {
        if s < marked.len() {
            marked[s] = true;
        }
    }
    let siphons = minimal_siphons(&compiled, SIPHON_NODE_CAP);
    if siphons.truncated {
        notes.push(format!(
            "analysis incomplete: siphon enumeration truncated at {SIPHON_NODE_CAP} nodes \
             (C006 may miss siphons)"
        ));
    }
    for set in &siphons.sets {
        if set.iter().any(|&s| marked[s]) {
            continue;
        }
        out.push(Lint {
            code: LintCode::UnmarkedSiphon,
            species: set
                .iter()
                .find(|&&s| s < species.len())
                .map(|&s| Species(s)),
            reaction: None,
            message: format!(
                "siphon {{{}}} starts unmarked and no reaction can ever mark it: \
                 every reaction consuming from it is structurally dead",
                display_set(set, species)
            ),
        });
    }

    // C007 — a markable trap whose species all sink input-independent
    // conservation budget the output needs: once the trap is marked, the
    // output's reachable ceiling drops for good.
    let traps = minimal_traps(&compiled, SIPHON_NODE_CAP);
    if traps.truncated {
        notes.push(format!(
            "analysis incomplete: trap enumeration truncated at {SIPHON_NODE_CAP} nodes \
             (C007 may miss traps)"
        ));
    }
    for set in &traps.sets {
        if set.contains(&output.index()) {
            continue;
        }
        if !set.iter().any(|&s| live.producible(s)) {
            continue; // a trap that can never be marked locks nothing
        }
        let Some((law, ceiling, locked)) =
            trap_locks_output(set, &semiflows.laws, inputs, output, leader)
        else {
            continue;
        };
        out.push(Lint {
            code: LintCode::OutputLockingTrap,
            species: set
                .iter()
                .find(|&&s| s < species.len())
                .map(|&s| Species(s)),
            reaction: None,
            message: format!(
                "trap {{{}}} can become marked and then permanently locks conservation \
                 budget away from output `{}`: law {} caps the output at {} instead of {}",
                display_set(set, species),
                species.name(output),
                law.display(species),
                locked,
                ceiling
            ),
        });
    }

    // C008 — a producible species no decreasing potential covers: no
    // invariant reasoning bounds its count, so it may grow without bound.
    // Skipped entirely under truncation (the claim is about absence).
    let bounds = SpeciesBounds::of(&compiled);
    if bounds.truncated() {
        notes.push(format!(
            "analysis incomplete: potential enumeration truncated at {FARKAS_ROW_CAP} rows \
             (C008/C009 skipped)"
        ));
    } else {
        for s in 0..species.len() {
            if live.producible(s) && !bounds.covered(s) {
                out.push(Lint {
                    code: LintCode::UnboundedSpecies,
                    species: Some(Species(s)),
                    reaction: None,
                    message: format!(
                        "species `{}` is bounded by no conservation law or decreasing \
                         potential: its count may diverge",
                        species.name(Species(s))
                    ),
                });
            }
        }
    }

    // C009 — in a structurally bounded CRN, a reaction outside every
    // T-semiflow support fires at most finitely often.  Reported only when
    // the CRN actually has repeatable cycles, so terminating CRNs (where
    // the fact is vacuously true of every reaction) stay silent.
    let t_semiflows = nonnegative_t_semiflows(&stoich, FARKAS_ROW_CAP);
    if t_semiflows.truncated {
        notes.push(format!(
            "analysis incomplete: T-semiflow enumeration truncated at {FARKAS_ROW_CAP} rows \
             (C009 skipped)"
        ));
    }
    let structurally_bounded =
        !bounds.truncated() && (0..compiled.stride()).all(|s| bounds.covered(s));
    if !t_semiflows.truncated && structurally_bounded && !t_semiflows.semiflows.is_empty() {
        let mut in_support = vec![false; crn.reactions().len()];
        for flow in &t_semiflows.semiflows {
            for r in flow.support() {
                if r < in_support.len() {
                    in_support[r] = true;
                }
            }
        }
        for (r, covered) in in_support.iter().enumerate() {
            if !covered {
                out.push(Lint {
                    code: LintCode::TransientReaction,
                    species: None,
                    reaction: Some(r),
                    message: format!(
                        "reaction `{}` lies outside every T-invariant of this bounded CRN: \
                         it can fire at most finitely often while the cycles run forever",
                        crn.reactions()[r].display(species)
                    ),
                });
            }
        }
    }

    out.sort_by(|a, b| {
        (a.code, a.reaction, a.species.map(|s| s.index())).cmp(&(
            b.code,
            b.reaction,
            b.species.map(|s| s.index()),
        ))
    });
    LintOutcome {
        findings: out,
        notes,
    }
}

/// Renders a species-index set as comma-separated names (foreign indices as
/// `#i`).
fn display_set(set: &[usize], species: &crate::species::SpeciesSet) -> String {
    set.iter()
        .map(|&s| {
            if s < species.len() {
                species.name(Species(s)).to_owned()
            } else {
                format!("#{s}")
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Checks whether marking trap `set` strictly lowers the output ceiling of
/// some input-independent nonnegative law: the law must weigh the output
/// and every trap species positively, weigh every input zero, and satisfy
/// `⌊(B − w_min) / v(Y)⌋ < ⌊B / v(Y)⌋ > 0` for the leader-only budget `B`.
fn trap_locks_output<'l>(
    set: &[usize],
    laws: &'l [ConservationLaw],
    inputs: &[Species],
    output: Species,
    leader: Option<Species>,
) -> Option<(&'l ConservationLaw, i128, i128)> {
    for law in laws {
        let vy = law.weight(output.index());
        if vy <= 0 {
            continue;
        }
        if inputs.iter().any(|x| law.weight(x.index()) != 0) {
            continue;
        }
        if set.iter().any(|&s| law.weight(s) <= 0) {
            continue;
        }
        let budget = leader.map_or(0, |l| law.weight(l.index()));
        let ceiling = budget / vy;
        if ceiling == 0 {
            continue; // C005 territory: the output is excluded outright
        }
        let w_min = set.iter().map(|&s| law.weight(s)).min().unwrap_or(0);
        let locked = (budget - w_min).div_euclid(vy).max(0);
        if locked < ceiling {
            return Some((law, ceiling, locked));
        }
    }
    None
}

/// Checks whether `law` bounds the output to zero regardless of inputs:
/// zero weight on every input, positive weight on the output, and a
/// leader-only initial budget below one output's worth.
fn output_excluded(
    law: &ConservationLaw,
    inputs: &[Species],
    output: Species,
    leader: Option<Species>,
    species: &crate::species::SpeciesSet,
) -> Option<String> {
    let vy = law.weight(output.index());
    if vy <= 0 {
        return None;
    }
    if inputs.iter().any(|x| law.weight(x.index()) != 0) {
        return None;
    }
    // v·c₀ over the input-independent part of the initial configuration:
    // only the leader (count 1) contributes — inputs weigh zero by the
    // check above, and everything else starts at zero count.
    let budget = leader.map_or(0, |l| law.weight(l.index()));
    if budget / vy != 0 {
        return None;
    }
    Some(format!(
        "conservation law {} bounds output `{}` to zero from every input",
        law.display(species),
        species.name(output)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crn::Crn;
    use crate::examples;

    fn codes(lints: &[Lint]) -> Vec<&'static str> {
        lints.iter().map(|l| l.code.as_str()).collect()
    }

    #[test]
    fn figure1_examples_lint_as_expected() {
        // min is clean; max flags only the K + Y -> 0 output consumption.
        assert!(lint(&examples::min_crn()).is_empty());
        let max = lint(&examples::max_crn());
        assert_eq!(codes(&max), vec!["C003"]);
        assert_eq!(max[0].reaction, Some(3));
    }

    #[test]
    fn single_use_leader_is_not_starved() {
        // L + X -> Y computing min(1, x): the classic leader idiom is fine.
        assert!(lint(&examples::min1_leader_crn()).is_empty());
    }

    #[test]
    fn dead_chain_fires_c001_c002_and_c006() {
        // D and U are dead (C001), D -> U can never fire (C002), and {D} is
        // an unmarked siphon (C006) — the structural view of the same bug.
        let mut crn = Crn::new();
        crn.parse_reaction("X -> Y").unwrap();
        crn.parse_reaction("D -> U").unwrap();
        let f = crate::function::FunctionCrn::with_named_roles(crn, &["X"], "Y", None).unwrap();
        let lints = lint(&f);
        assert_eq!(codes(&lints), vec!["C001", "C001", "C002", "C006"]);
        assert_eq!(lints[2].reaction, Some(1));
        assert!(lints[3].message.contains("siphon {D}"), "{lints:?}");
    }

    #[test]
    fn contested_leader_fires_c004() {
        let mut crn = Crn::new();
        crn.parse_reaction("L + X -> W").unwrap();
        crn.parse_reaction("L + W -> Y").unwrap();
        let f =
            crate::function::FunctionCrn::with_named_roles(crn, &["X"], "Y", Some("L")).unwrap();
        let lints = lint(&f);
        assert!(codes(&lints).contains(&"C004"), "{lints:?}");
    }

    #[test]
    fn regenerated_leader_is_not_starved() {
        let mut crn = Crn::new();
        crn.parse_reaction("L + X -> W").unwrap();
        crn.parse_reaction("L + W -> Y + L").unwrap();
        let f =
            crate::function::FunctionCrn::with_named_roles(crn, &["X"], "Y", Some("L")).unwrap();
        assert!(!codes(&lint(&f)).contains(&"C004"));
    }

    #[test]
    fn starved_output_fires_c005() {
        // L -> W ; 2W -> Y with one leader: law L + W + 2Y gives budget 1,
        // floor(1/2) = 0, so Y can never rise above zero for any input X.
        let mut crn = Crn::new();
        crn.parse_reaction("L -> W").unwrap();
        crn.parse_reaction("2W -> Y").unwrap();
        crn.add_species("X");
        let f =
            crate::function::FunctionCrn::with_named_roles(crn, &["X"], "Y", Some("L")).unwrap();
        let lints = lint(&f);
        assert!(codes(&lints).contains(&"C005"), "{lints:?}");
    }

    #[test]
    fn productive_output_does_not_fire_c005() {
        // X -> 2Y: the only semiflow-style law involving Y weighs X too.
        assert!(lint(&examples::double_crn()).is_empty());
    }

    #[test]
    fn locked_budget_fires_c007() {
        // L -> 2B ; B + X -> Y ; B -> V: the law 2L + B + Y + V gives the
        // output a leader-only ceiling of 2, but any budget token B straying
        // into the trap {V} permanently locks one Y away.
        let mut crn = Crn::new();
        crn.parse_reaction("L -> 2B").unwrap();
        crn.parse_reaction("B + X -> Y").unwrap();
        crn.parse_reaction("B -> V").unwrap();
        let f =
            crate::function::FunctionCrn::with_named_roles(crn, &["X"], "Y", Some("L")).unwrap();
        let lints = lint(&f);
        assert_eq!(codes(&lints), vec!["C007"], "{lints:?}");
        assert!(lints[0].message.contains("trap {V}"), "{lints:?}");
        assert!(lints[0].message.contains("at 1 instead of 2"), "{lints:?}");
    }

    #[test]
    fn uncovered_species_fires_c008() {
        // X -> Y ; Y -> Y + G: G only ever grows, and no potential covers it.
        let mut crn = Crn::new();
        crn.parse_reaction("X -> Y").unwrap();
        crn.parse_reaction("Y -> Y + G").unwrap();
        let f = crate::function::FunctionCrn::with_named_roles(crn, &["X"], "Y", None).unwrap();
        let lints = lint(&f);
        assert_eq!(codes(&lints), vec!["C008"], "{lints:?}");
        assert!(lints[0].message.contains('G'), "{lints:?}");
    }

    #[test]
    fn reaction_outside_the_cycles_fires_c009() {
        // X -> Y makes irreversible progress while A <-> B cycles forever;
        // the CRN is structurally bounded, so X -> Y fires finitely often.
        let mut crn = Crn::new();
        crn.parse_reaction("X -> Y").unwrap();
        crn.parse_reaction("A -> B").unwrap();
        crn.parse_reaction("B -> A").unwrap();
        let f =
            crate::function::FunctionCrn::with_named_roles(crn, &["X"], "Y", Some("A")).unwrap();
        let lints = lint(&f);
        assert_eq!(codes(&lints), vec!["C009"], "{lints:?}");
        assert_eq!(lints[0].reaction, Some(0));
    }

    #[test]
    fn terminating_crns_do_not_fire_c009() {
        // max has no T-invariants at all: flagging every reaction of every
        // terminating CRN would be pure noise, so C009 stays silent.
        let max = lint(&examples::max_crn());
        assert!(!codes(&max).contains(&"C009"), "{max:?}");
    }

    #[test]
    fn truncation_surfaces_as_notes_not_silence() {
        // A full run of the adversarial-but-small examples produces no
        // notes: nothing truncated, so nothing to disclaim.
        assert!(lint_full(&examples::max_crn()).notes.is_empty());
        assert!(lint_full(&examples::min_crn()).notes.is_empty());
    }

    fn random_function_crn(rows: &[Vec<u64>]) -> crate::function::FunctionCrn {
        let mut crn = Crn::new();
        for name in ["X", "Y", "Z"] {
            crn.add_species(name);
        }
        for row in rows {
            let side = |counts: &[u64]| {
                counts
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(s, &c)| (Species(s), c))
                    .collect::<Vec<_>>()
            };
            crn.add_reaction(crate::reaction::Reaction::new(
                side(&row[..3]),
                side(&row[3..]),
            ));
        }
        crate::function::FunctionCrn::with_named_roles(crn, &["X"], "Y", None).unwrap()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// Linting is deterministic, and the species-anchored findings
        /// (everything not tied to a reaction index) are independent of the
        /// order reactions were declared in.
        #[test]
        fn lints_are_deterministic_and_order_insensitive(
            rows in proptest::collection::vec(
                proptest::collection::vec(0u64..3, 6),
                1..4,
            ),
            seed in 0usize..24,
        ) {
            let f = random_function_crn(&rows);
            let first = lint_full(&f);
            let second = lint_full(&f);
            proptest::prop_assert_eq!(&first, &second);

            // A deterministic permutation of the declaration order.
            let mut permuted = rows.clone();
            if permuted.len() > 1 {
                let k = seed % permuted.len();
                permuted.rotate_left(k);
                if seed % 2 == 1 {
                    permuted.reverse();
                }
            }
            let g = random_function_crn(&permuted);
            let reordered = lint_full(&g);
            let species_anchored = |outcome: &LintOutcome| {
                let mut msgs: Vec<String> = outcome
                    .findings
                    .iter()
                    .filter(|l| l.reaction.is_none())
                    .map(|l| format!("{}: {}", l.code, l.message))
                    .collect();
                msgs.sort();
                msgs
            };
            proptest::prop_assert_eq!(
                species_anchored(&first),
                species_anchored(&reordered)
            );
            proptest::prop_assert_eq!(first.notes, reordered.notes);
        }
    }
}
