//! Typed structural lints with stable codes `C001`–`C005`.
//!
//! Each lint is a *static* fact about a [`FunctionCrn`] — no state space is
//! explored.  The codes are stable identifiers for tooling (goldens, CI
//! filters, `--json` consumers):
//!
//! | code | meaning |
//! |------|---------|
//! | `C001` | dead species: never producible from the inputs and leader |
//! | `C002` | unfireable reaction: some reactant is never producible |
//! | `C003` | output consumed non-catalytically ⇒ not output-oblivious (Observation 2.2) |
//! | `C004` | leader consumed by competing reactions and never regenerated |
//! | `C005` | a conservation law bounds the output to zero from every input |
//!
//! `C001`/`C002` come from the [`Liveness`] fixpoint (sound: flagged
//! structure is dead for *every* initial configuration over the declared
//! roles).  `C003` is syntactic on reaction deltas.  `C004` is a heuristic
//! for the classic starved-leader bug, deliberately conservative so that
//! single-use leaders (`L + X -> Y` computing `min(1, x)`) stay silent.
//! `C005` instantiates the P-semiflow bound: a nonnegative law `v` with zero
//! weight on every input, positive weight `v(Y)` on the output, and
//! `⌊v·c₀ / v(Y)⌋ = 0` for the leader-only part of the initial configuration
//! proves `Y = 0` along every trajectory from every input — the CRN cannot
//! compute anything but zero.

use crate::compiled::CompiledCrn;
use crate::function::FunctionCrn;
use crate::species::Species;

use super::invariants::{nonnegative_laws, ConservationLaw, FARKAS_ROW_CAP};
use super::liveness::Liveness;
use super::stoichiometry::Stoichiometry;

/// Stable lint identifiers.  The numeric suffix never changes meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// Dead species: never producible from the inputs and leader.
    DeadSpecies,
    /// Unfireable reaction: some reactant is never producible.
    UnfireableReaction,
    /// The output species is consumed on a non-catalytic path.
    OutputConsumed,
    /// The leader is consumed by competing reactions and never regenerated.
    LeaderStarved,
    /// A conservation law bounds the output to zero from every input.
    OutputExcluded,
}

impl LintCode {
    /// The stable code string, e.g. `"C003"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::DeadSpecies => "C001",
            LintCode::UnfireableReaction => "C002",
            LintCode::OutputConsumed => "C003",
            LintCode::LeaderStarved => "C004",
            LintCode::OutputExcluded => "C005",
        }
    }
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structural finding: a code, the anchoring species and/or reaction
/// (reaction indices follow the CRN's reaction order), and a rendered
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Which lint fired.
    pub code: LintCode,
    /// The species the finding is about, when species-anchored.
    pub species: Option<Species>,
    /// The index of the offending reaction, when reaction-anchored.
    pub reaction: Option<usize>,
    /// A rendered message with species names substituted in.
    pub message: String,
}

/// Runs every lint against a function CRN, in stable code order.
#[must_use]
pub fn lint(f: &FunctionCrn) -> Vec<Lint> {
    let crn = f.crn();
    let species = crn.species();
    let compiled = CompiledCrn::compile(crn);
    let mut out = Vec::new();

    // C001 / C002 — liveness from the declared initial species.
    let mut initial: Vec<usize> = f.roles().inputs.iter().map(|s| s.index()).collect();
    if let Some(leader) = f.leader() {
        initial.push(leader.index());
    }
    let live = Liveness::analyze(&compiled, &initial);
    for s in live.dead_species() {
        // Only named species can be dead here: the compiled stride covers
        // exactly the interner plus reaction-mentioned species, and every
        // reaction-mentioned species is interned.
        if s < species.len() {
            let sp = Species(s);
            out.push(Lint {
                code: LintCode::DeadSpecies,
                species: Some(sp),
                reaction: None,
                message: format!(
                    "species `{}` is never producible from the inputs",
                    species.name(sp)
                ),
            });
        }
    }
    for r in live.unfireable_reactions() {
        out.push(Lint {
            code: LintCode::UnfireableReaction,
            species: None,
            reaction: Some(r),
            message: format!(
                "reaction `{}` can never fire: a reactant is never producible",
                crn.reactions()[r].display(species)
            ),
        });
    }

    // C003 — a reaction that strictly decreases the output species makes the
    // CRN non-output-oblivious (Observation 2.2); catalytic uses are fine.
    let output = f.output();
    for (r, reaction) in crn.reactions().iter().enumerate() {
        if reaction.decreases(output) {
            out.push(Lint {
                code: LintCode::OutputConsumed,
                species: Some(output),
                reaction: Some(r),
                message: format!(
                    "output `{}` is consumed non-catalytically by `{}`: \
                     the CRN is not output-oblivious",
                    species.name(output),
                    crn.reactions()[r].display(species)
                ),
            });
        }
    }

    // C004 — the leader is contested (reactant of two or more reactions, at
    // least one of which destroys it) and nothing ever regenerates it.  A
    // single consuming reaction is the normal single-use-leader idiom and
    // stays silent.
    if let Some(leader) = f.leader() {
        let regenerated = crn.reactions().iter().any(|rx| rx.produces(leader));
        let consumers: Vec<usize> = (0..crn.reactions().len())
            .filter(|&r| crn.reactions()[r].consumes(leader))
            .collect();
        let destroyed = consumers
            .iter()
            .any(|&r| crn.reactions()[r].decreases(leader));
        if !regenerated && consumers.len() >= 2 && destroyed {
            out.push(Lint {
                code: LintCode::LeaderStarved,
                species: Some(leader),
                reaction: consumers.first().copied(),
                message: format!(
                    "leader `{}` is consumed by {} reactions and never regenerated",
                    species.name(leader),
                    consumers.len()
                ),
            });
        }
    }

    // C005 — a nonnegative conservation law proves the output stays zero.
    let stoich = Stoichiometry::of(&compiled);
    let inputs = &f.roles().inputs;
    let leader = f.leader();
    for law in nonnegative_laws(&stoich, FARKAS_ROW_CAP) {
        if let Some(message) = output_excluded(&law, inputs, output, leader, species) {
            out.push(Lint {
                code: LintCode::OutputExcluded,
                species: Some(output),
                reaction: None,
                message,
            });
            break; // one witness law is enough
        }
    }

    out.sort_by(|a, b| {
        (a.code, a.reaction, a.species.map(|s| s.index())).cmp(&(
            b.code,
            b.reaction,
            b.species.map(|s| s.index()),
        ))
    });
    out
}

/// Checks whether `law` bounds the output to zero regardless of inputs:
/// zero weight on every input, positive weight on the output, and a
/// leader-only initial budget below one output's worth.
fn output_excluded(
    law: &ConservationLaw,
    inputs: &[Species],
    output: Species,
    leader: Option<Species>,
    species: &crate::species::SpeciesSet,
) -> Option<String> {
    let vy = law.weight(output.index());
    if vy <= 0 {
        return None;
    }
    if inputs.iter().any(|x| law.weight(x.index()) != 0) {
        return None;
    }
    // v·c₀ over the input-independent part of the initial configuration:
    // only the leader (count 1) contributes — inputs weigh zero by the
    // check above, and everything else starts at zero count.
    let budget = leader.map_or(0, |l| law.weight(l.index()));
    if budget / vy != 0 {
        return None;
    }
    Some(format!(
        "conservation law {} bounds output `{}` to zero from every input",
        law.display(species),
        species.name(output)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crn::Crn;
    use crate::examples;

    fn codes(lints: &[Lint]) -> Vec<&'static str> {
        lints.iter().map(|l| l.code.as_str()).collect()
    }

    #[test]
    fn figure1_examples_lint_as_expected() {
        // min is clean; max flags only the K + Y -> 0 output consumption.
        assert!(lint(&examples::min_crn()).is_empty());
        let max = lint(&examples::max_crn());
        assert_eq!(codes(&max), vec!["C003"]);
        assert_eq!(max[0].reaction, Some(3));
    }

    #[test]
    fn single_use_leader_is_not_starved() {
        // L + X -> Y computing min(1, x): the classic leader idiom is fine.
        assert!(lint(&examples::min1_leader_crn()).is_empty());
    }

    #[test]
    fn dead_chain_fires_c001_and_c002() {
        let mut crn = Crn::new();
        crn.parse_reaction("X -> Y").unwrap();
        crn.parse_reaction("D -> U").unwrap();
        let f = crate::function::FunctionCrn::with_named_roles(crn, &["X"], "Y", None).unwrap();
        let lints = lint(&f);
        assert_eq!(codes(&lints), vec!["C001", "C001", "C002"]);
        assert_eq!(lints[2].reaction, Some(1));
    }

    #[test]
    fn contested_leader_fires_c004() {
        let mut crn = Crn::new();
        crn.parse_reaction("L + X -> W").unwrap();
        crn.parse_reaction("L + W -> Y").unwrap();
        let f =
            crate::function::FunctionCrn::with_named_roles(crn, &["X"], "Y", Some("L")).unwrap();
        let lints = lint(&f);
        assert!(codes(&lints).contains(&"C004"), "{lints:?}");
    }

    #[test]
    fn regenerated_leader_is_not_starved() {
        let mut crn = Crn::new();
        crn.parse_reaction("L + X -> W").unwrap();
        crn.parse_reaction("L + W -> Y + L").unwrap();
        let f =
            crate::function::FunctionCrn::with_named_roles(crn, &["X"], "Y", Some("L")).unwrap();
        assert!(!codes(&lint(&f)).contains(&"C004"));
    }

    #[test]
    fn starved_output_fires_c005() {
        // L -> W ; 2W -> Y with one leader: law L + W + 2Y gives budget 1,
        // floor(1/2) = 0, so Y can never rise above zero for any input X.
        let mut crn = Crn::new();
        crn.parse_reaction("L -> W").unwrap();
        crn.parse_reaction("2W -> Y").unwrap();
        crn.add_species("X");
        let f =
            crate::function::FunctionCrn::with_named_roles(crn, &["X"], "Y", Some("L")).unwrap();
        let lints = lint(&f);
        assert!(codes(&lints).contains(&"C005"), "{lints:?}");
    }

    #[test]
    fn productive_output_does_not_fire_c005() {
        // X -> 2Y: the only semiflow-style law involving Y weighs X too.
        assert!(lint(&examples::double_crn()).is_empty());
    }
}
