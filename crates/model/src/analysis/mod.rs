//! Static analysis of CRNs: stoichiometry, conservation laws, liveness and
//! structural lints.
//!
//! CRNs are Petri nets, so a large class of trajectory facts is decidable
//! without exploring any state space:
//!
//! * [`Stoichiometry`] — the exact integer net-change matrix `N`;
//! * [`conservation_basis`] / [`nonnegative_laws`] — P-invariants `v·N = 0`,
//!   computed with exact rational arithmetic and scaled to primitive integer
//!   vectors; a law weighing two configurations differently refutes
//!   reachability between them (see
//!   [`InvariantOracle`](crate::reachability::InvariantOracle));
//! * [`Liveness`] — a producible-species / fireable-reaction fixpoint whose
//!   negative verdicts are exact (dead means dead);
//! * [`lint`] — stable-coded structural findings `C001`–`C005` consumed by
//!   the `crn lint` CLI subcommand.

mod invariants;
mod lints;
mod liveness;
mod stoichiometry;

pub use invariants::{conservation_basis, nonnegative_laws, ConservationLaw, FARKAS_ROW_CAP};
pub use lints::{lint, Lint, LintCode};
pub use liveness::Liveness;
pub use stoichiometry::Stoichiometry;
