//! Static analysis of CRNs: stoichiometry, conservation laws, liveness and
//! structural lints.
//!
//! CRNs are Petri nets, so a large class of trajectory facts is decidable
//! without exploring any state space:
//!
//! * [`Stoichiometry`] — the exact integer net-change matrix `N`;
//! * [`conservation_basis`] / [`nonnegative_laws`] — P-invariants `v·N = 0`,
//!   computed with exact rational arithmetic and scaled to primitive integer
//!   vectors; a law weighing two configurations differently refutes
//!   reachability between them (see
//!   [`InvariantOracle`](crate::reachability::InvariantOracle));
//! * [`t_invariant_basis`] / [`nonnegative_t_semiflows`] — T-invariants
//!   `N·f = 0` (certificates of repeatable reaction cycles), by the same
//!   elimination and Farkas machinery on the transposed matrix;
//! * [`minimal_siphons`] / [`minimal_traps`] — minimal structural deadlock
//!   and lock-in sets by seeded saturation, capped at [`SIPHON_NODE_CAP`];
//! * [`SpeciesBounds`] — per-species reachable-count intervals from
//!   monotone potentials, liveness and signed laws, which the reachability
//!   engine consumes to refuse, prove, or perfect-hash box points;
//! * [`Liveness`] — a producible-species / fireable-reaction fixpoint whose
//!   negative verdicts are exact (dead means dead);
//! * [`lint`] — stable-coded structural findings `C001`–`C009` consumed by
//!   the `crn lint` CLI subcommand ([`lint_full`] adds the "analysis
//!   incomplete" notes emitted when an enumeration cap truncated).
//!
//! Enumerations that can truncate ([`FARKAS_ROW_CAP`], [`SIPHON_NODE_CAP`])
//! surface the fact in their result types: truncation is always *sound*
//! (everything returned is genuine) but claims built on absence must check
//! the flag.

mod bounds;
mod invariants;
mod lints;
mod liveness;
mod siphons;
mod stoichiometry;
mod t_invariants;

pub use bounds::{CountIntervals, SpeciesBounds};
pub use invariants::{
    conservation_basis, nonnegative_laws, nonnegative_laws_capped, ConservationLaw,
    SemiflowEnumeration, FARKAS_ROW_CAP,
};
pub use lints::{lint, lint_full, Lint, LintCode, LintOutcome};
pub use liveness::Liveness;
pub use siphons::{minimal_siphons, minimal_traps, StructuralSets, SIPHON_NODE_CAP};
pub use stoichiometry::Stoichiometry;
pub use t_invariants::{
    nonnegative_t_semiflows, t_invariant_basis, TInvariant, TSemiflowEnumeration,
};
