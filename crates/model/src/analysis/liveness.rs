//! Producible-species / fireable-reaction fixpoint analysis.
//!
//! A sound over-approximation of what *can ever happen* from any initial
//! configuration supported on a given species set: start with the initial
//! species marked producible, repeatedly mark a reaction fireable when all of
//! its reactants are producible and its products producible in turn, until
//! nothing changes.  Counts are abstracted away entirely (every producible
//! species is treated as available in unbounded supply), so:
//!
//! * a species **not** producible here is dead for real — no trajectory from
//!   any configuration over the initial species ever makes it (`C001`);
//! * a reaction **not** fireable here can never fire (`C002`).
//!
//! The converse is not claimed: the abstraction may mark structure live that
//! exact counting would starve.  That direction is what the conservation-law
//! machinery in [`super::invariants`] covers.

use crate::compiled::CompiledCrn;

/// The result of the producible/fireable fixpoint for one compiled CRN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Liveness {
    producible: Vec<bool>,
    fireable: Vec<bool>,
}

impl Liveness {
    /// Runs the fixpoint.  `initial_species` are the dense indices assumed
    /// present at time zero (typically the function's inputs plus its
    /// leader); out-of-range indices are ignored.
    #[must_use]
    pub fn analyze(compiled: &CompiledCrn, initial_species: &[usize]) -> Self {
        let stride = compiled.stride();
        let mut producible = vec![false; stride];
        for &s in initial_species {
            if s < stride {
                producible[s] = true;
            }
        }
        let reactions = compiled.reactions();
        let mut fireable = vec![false; reactions.len()];
        loop {
            let mut changed = false;
            for (r, reaction) in reactions.iter().enumerate() {
                if fireable[r] {
                    continue;
                }
                if reaction.reactants().iter().all(|&(s, _)| producible[s]) {
                    fireable[r] = true;
                    changed = true;
                    // Products are the positive net deltas plus the catalysts
                    // (zero-delta reactants), and catalysts are producible
                    // already, so positive deltas suffice.
                    for &(s, d) in reaction.delta() {
                        if d > 0 && !producible[s] {
                            producible[s] = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Liveness {
            producible,
            fireable,
        }
    }

    /// Whether species index `s` can ever be present (false past the stride).
    #[must_use]
    pub fn producible(&self, s: usize) -> bool {
        self.producible.get(s).copied().unwrap_or(false)
    }

    /// Whether reaction `r` can ever fire.
    #[must_use]
    pub fn fireable(&self, r: usize) -> bool {
        self.fireable.get(r).copied().unwrap_or(false)
    }

    /// Dense indices of species that are never producible.
    #[must_use]
    pub fn dead_species(&self) -> Vec<usize> {
        (0..self.producible.len())
            .filter(|&s| !self.producible[s])
            .collect()
    }

    /// Indices of reactions that can never fire.
    #[must_use]
    pub fn unfireable_reactions(&self) -> Vec<usize> {
        (0..self.fireable.len())
            .filter(|&r| !self.fireable[r])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crn::Crn;
    use crate::examples;

    #[test]
    fn max_crn_is_fully_live_from_its_inputs() {
        let max = examples::max_crn();
        let compiled = CompiledCrn::compile(max.crn());
        let crn = max.crn();
        let idx = |name: &str| crn.species_named(name).unwrap().index();
        let live = Liveness::analyze(&compiled, &[idx("X1"), idx("X2")]);
        assert!(live.dead_species().is_empty());
        assert!(live.unfireable_reactions().is_empty());
    }

    #[test]
    fn chain_needs_the_whole_prefix() {
        // D -> U is dead when D is not initial; so is U.
        let mut crn = Crn::new();
        crn.parse_reaction("X -> Y").unwrap();
        crn.parse_reaction("D -> U").unwrap();
        let compiled = CompiledCrn::compile(&crn);
        let x = crn.species_named("X").unwrap().index();
        let d = crn.species_named("D").unwrap().index();
        let u = crn.species_named("U").unwrap().index();
        let live = Liveness::analyze(&compiled, &[x]);
        assert!(live.producible(x));
        assert!(!live.producible(d));
        assert!(!live.producible(u));
        assert!(live.fireable(0));
        assert!(!live.fireable(1));
        assert_eq!(live.dead_species(), vec![d, u]);
        assert_eq!(live.unfireable_reactions(), vec![1]);
    }

    #[test]
    fn catalysts_do_not_block_their_own_products() {
        // C + X -> C + Y: fireable when both C and X are initial, and Y then
        // becomes producible even though C's delta is zero.
        let mut crn = Crn::new();
        crn.parse_reaction("C + X -> C + Y").unwrap();
        let compiled = CompiledCrn::compile(&crn);
        let c = crn.species_named("C").unwrap().index();
        let x = crn.species_named("X").unwrap().index();
        let y = crn.species_named("Y").unwrap().index();
        let live = Liveness::analyze(&compiled, &[c, x]);
        assert!(live.fireable(0));
        assert!(live.producible(y));
        let starved = Liveness::analyze(&compiled, &[x]);
        assert!(!starved.fireable(0));
        assert!(!starved.producible(y));
    }

    #[test]
    fn out_of_range_initials_are_ignored() {
        let mut crn = Crn::new();
        crn.parse_reaction("X -> Y").unwrap();
        let compiled = CompiledCrn::compile(&crn);
        let live = Liveness::analyze(&compiled, &[99]);
        assert!(!live.producible(99));
        assert!(!live.fireable(0));
    }
}
