//! Minimal siphons and traps of the underlying Petri net.
//!
//! A *siphon* is a species set `S` such that every reaction producing into
//! `S` also consumes from `S`: once `S` is empty (unmarked) it stays empty
//! forever, structurally disabling every reaction that needs it.  A *trap*
//! is the time-reversed notion — every reaction consuming from `S` also
//! produces into `S` — so once a trap is marked it can never be emptied
//! again.  Both are computed over the *catalyst-aware* pre/post sets: a
//! catalyst (consumed and re-produced) counts as both consumed-from and
//! produced-into, exactly matching token dynamics.
//!
//! Minimal siphons are enumerated by the standard saturation algorithm: for
//! each seed species, repeatedly pick the first reaction violating the
//! closure condition and branch over the candidate species that could fix
//! it, with mutual-exclusion branching so no closed set is visited twice
//! from one seed; a final global filter keeps only set-minimal results.
//! The enumeration is worst-case exponential, so it stops after
//! [`SIPHON_NODE_CAP`] search nodes and surfaces the truncation (sound:
//! every returned set is a genuine siphon/trap, some may be missed).

use crate::compiled::CompiledCrn;

/// Default cap on branch-and-bound search nodes across one enumeration,
/// surfaced like [`FARKAS_ROW_CAP`](super::invariants::FARKAS_ROW_CAP): the
/// result is sound but incomplete once the cap is hit.
pub const SIPHON_NODE_CAP: usize = 4096;

/// The result of a capped siphon or trap enumeration: each set is a sorted
/// list of dense species indices, the list of sets is sorted and minimal
/// (no returned set strictly contains another).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralSets {
    /// The minimal sets found, each sorted ascending, sorted by size then
    /// lexicographically.
    pub sets: Vec<Vec<usize>>,
    /// Whether the node cap truncated the enumeration.
    pub truncated: bool,
}

/// Catalyst-aware pre sets (species with positive required count) and post
/// sets (species left present after firing: positive net delta, or a
/// reactant not fully consumed) of every reaction.
fn pre_post(compiled: &CompiledCrn) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let mut pres = Vec::with_capacity(compiled.reaction_count());
    let mut posts = Vec::with_capacity(compiled.reaction_count());
    for reaction in compiled.reactions() {
        let mut pre: Vec<usize> = reaction.reactants().iter().map(|&(s, _)| s).collect();
        pre.sort_unstable();
        pre.dedup();
        let delta_of = |s: usize| {
            reaction
                .delta()
                .iter()
                .find(|&&(t, _)| t == s)
                .map_or(0, |&(_, d)| d)
        };
        let mut post: Vec<usize> = reaction
            .delta()
            .iter()
            .filter(|&&(_, d)| d > 0)
            .map(|&(s, _)| s)
            .collect();
        for &(s, required) in reaction.reactants() {
            // A catalyst or partially-consumed reactant is still present
            // after firing, so it counts as produced-into.
            if i64::try_from(required).expect("counts fit i64") + delta_of(s) > 0 {
                post.push(s);
            }
        }
        post.sort_unstable();
        post.dedup();
        pres.push(pre);
        posts.push(post);
    }
    (pres, posts)
}

/// Enumerates minimal nonempty sets closed under "every reaction touching
/// the set via `trigger` also touches it via `fixer`".  Siphons use
/// `trigger = post, fixer = pre`; traps swap the two.
fn minimal_closed_sets(
    trigger: &[Vec<usize>],
    fixer: &[Vec<usize>],
    stride: usize,
    node_cap: usize,
) -> StructuralSets {
    let mut found: Vec<Vec<bool>> = Vec::new();
    let mut nodes = 0usize;
    let mut truncated = false;
    // Each minimal closed set is enumerated from its smallest member:
    // species below the seed are permanently excluded in that seed's search.
    'seeds: for seed in 0..stride {
        let mut in_set = vec![false; stride];
        in_set[seed] = true;
        let mut excluded = vec![false; stride];
        for e in excluded.iter_mut().take(seed) {
            *e = true;
        }
        let mut stack: Vec<(Vec<bool>, Vec<bool>)> = vec![(in_set, excluded)];
        while let Some((set, mut excluded)) = stack.pop() {
            nodes += 1;
            if nodes > node_cap {
                truncated = true;
                break 'seeds;
            }
            let violated = (0..trigger.len())
                .find(|&r| trigger[r].iter().any(|&s| set[s]) && !fixer[r].iter().any(|&s| set[s]));
            let Some(r) = violated else {
                found.push(set);
                continue;
            };
            // Any closed superset of `set` (avoiding `excluded`) contains
            // some allowed fixer of `r`; partition by the first one it
            // contains so each closed set is reached exactly once.
            for &candidate in &fixer[r] {
                if excluded[candidate] {
                    continue;
                }
                debug_assert!(!set[candidate], "a contained fixer is not a violation");
                let mut child = set.clone();
                child[candidate] = true;
                stack.push((child, excluded.clone()));
                excluded[candidate] = true;
            }
        }
    }

    let mut sets: Vec<Vec<usize>> = found
        .into_iter()
        .map(|set| (0..stride).filter(|&s| set[s]).collect())
        .collect();
    super::invariants::retain_minimal_support(&mut sets, |set| {
        let mut sup = vec![false; stride];
        for &s in set {
            sup[s] = true;
        }
        sup
    });
    sets.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    sets.dedup();
    StructuralSets { sets, truncated }
}

/// Enumerates the minimal siphons of `compiled`, capped at `node_cap`
/// search nodes.
#[must_use]
pub fn minimal_siphons(compiled: &CompiledCrn, node_cap: usize) -> StructuralSets {
    let (pre, post) = pre_post(compiled);
    minimal_closed_sets(&post, &pre, compiled.stride(), node_cap)
}

/// Enumerates the minimal traps of `compiled`, capped at `node_cap` search
/// nodes.
#[must_use]
pub fn minimal_traps(compiled: &CompiledCrn, node_cap: usize) -> StructuralSets {
    let (pre, post) = pre_post(compiled);
    minimal_closed_sets(&pre, &post, compiled.stride(), node_cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crn::Crn;
    use crate::examples;

    fn compiled(crn: &Crn) -> CompiledCrn {
        CompiledCrn::compile(crn)
    }

    fn named(crn: &Crn, sets: &StructuralSets) -> Vec<Vec<String>> {
        sets.sets
            .iter()
            .map(|set| {
                set.iter()
                    .map(|&s| crn.species().name(crate::species::Species(s)).to_owned())
                    .collect()
            })
            .collect()
    }

    /// Brute-force reference: every nonempty subset, checked directly, then
    /// filtered to minimal sets.
    fn brute_force(trigger: &[Vec<usize>], fixer: &[Vec<usize>], stride: usize) -> Vec<Vec<usize>> {
        let mut all: Vec<Vec<usize>> = Vec::new();
        for mask in 1u32..(1 << stride) {
            let set: Vec<usize> = (0..stride).filter(|&s| mask & (1 << s) != 0).collect();
            let closed = (0..trigger.len()).all(|r| {
                !trigger[r].iter().any(|&s| set.contains(&s))
                    || fixer[r].iter().any(|&s| set.contains(&s))
            });
            if closed {
                all.push(set);
            }
        }
        let minimal: Vec<Vec<usize>> = all
            .iter()
            .filter(|set| {
                !all.iter()
                    .any(|other| other.len() < set.len() && other.iter().all(|s| set.contains(s)))
            })
            .cloned()
            .collect();
        let mut minimal = minimal;
        minimal.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        minimal
    }

    #[test]
    fn max_crn_siphons_are_the_inputs_and_it_has_no_traps() {
        // X1 and X2 are never produced, so {X1} and {X2} are minimal
        // siphons and every larger siphon contains one of them.  Every
        // species eventually funnels into K + Y -> 0, which produces
        // nothing, so no trap exists at all.
        let max = examples::max_crn();
        let c = compiled(max.crn());
        let siphons = minimal_siphons(&c, SIPHON_NODE_CAP);
        assert!(!siphons.truncated);
        assert_eq!(
            named(max.crn(), &siphons),
            vec![vec!["X1".to_owned()], vec!["X2".to_owned()]]
        );
        let traps = minimal_traps(&c, SIPHON_NODE_CAP);
        assert!(!traps.truncated);
        assert!(traps.sets.is_empty());
    }

    #[test]
    fn min_crn_output_is_a_trap() {
        // X1 + X2 -> Y: nothing consumes Y, so {Y} is a trap.
        let min = examples::min_crn();
        let c = compiled(min.crn());
        let traps = minimal_traps(&c, SIPHON_NODE_CAP);
        assert_eq!(named(min.crn(), &traps), vec![vec!["Y".to_owned()]]);
    }

    #[test]
    fn catalysts_count_as_produced_into() {
        // C + X -> C + Y: {C} is both a siphon and a trap (the catalyst is
        // consumed-from and produced-into), and {Y} is a trap.
        let mut crn = Crn::new();
        crn.parse_reaction("C + X -> C + Y").unwrap();
        let c = compiled(&crn);
        let siphons = named(&crn, &minimal_siphons(&c, SIPHON_NODE_CAP));
        assert!(siphons.contains(&vec!["C".to_owned()]), "{siphons:?}");
        assert!(siphons.contains(&vec!["X".to_owned()]), "{siphons:?}");
        let traps = named(&crn, &minimal_traps(&c, SIPHON_NODE_CAP));
        assert!(traps.contains(&vec!["C".to_owned()]), "{traps:?}");
        assert!(traps.contains(&vec!["Y".to_owned()]), "{traps:?}");
    }

    #[test]
    fn a_cycle_is_both_siphon_and_trap() {
        let mut crn = Crn::new();
        crn.parse_reaction("A -> B").unwrap();
        crn.parse_reaction("B -> A").unwrap();
        let c = compiled(&crn);
        assert_eq!(
            named(&crn, &minimal_siphons(&c, SIPHON_NODE_CAP)),
            vec![vec!["A".to_owned(), "B".to_owned()]]
        );
        assert_eq!(
            named(&crn, &minimal_traps(&c, SIPHON_NODE_CAP)),
            vec![vec!["A".to_owned(), "B".to_owned()]]
        );
    }

    #[test]
    fn a_tiny_node_cap_surfaces_truncation() {
        let max = examples::max_crn();
        let c = compiled(max.crn());
        let cut = minimal_siphons(&c, 1);
        assert!(cut.truncated);
        let full = minimal_siphons(&c, SIPHON_NODE_CAP);
        assert!(cut.sets.len() <= full.sets.len());
    }

    #[test]
    fn enumeration_matches_brute_force_on_assorted_nets() {
        let sources = [
            vec!["X1 + X2 -> Y"],
            vec!["X -> 2Y", "Y -> Z", "Z + X -> Y"],
            vec!["A -> B", "B -> A", "A + C -> D", "D -> C"],
            vec!["L -> W", "W + X -> Y + V", "P -> Q"],
            vec!["2A -> B + C", "C -> A", "B + C -> 2C"],
        ];
        for reactions in &sources {
            let mut crn = Crn::new();
            for r in reactions {
                crn.parse_reaction(r).unwrap();
            }
            let c = compiled(&crn);
            let (pre, post) = pre_post(&c);
            let siphons = minimal_siphons(&c, SIPHON_NODE_CAP);
            assert!(!siphons.truncated);
            assert_eq!(
                siphons.sets,
                brute_force(&post, &pre, c.stride()),
                "siphons of {reactions:?}"
            );
            let traps = minimal_traps(&c, SIPHON_NODE_CAP);
            assert_eq!(
                traps.sets,
                brute_force(&pre, &post, c.stride()),
                "traps of {reactions:?}"
            );
        }
    }
}
