//! Conservation laws: integer P-invariants of the stoichiometry matrix.
//!
//! A weight vector `v ∈ Z^S` is a *conservation law* when `v·N = 0` for the
//! stoichiometry matrix `N` — firing any reaction leaves `v·c` unchanged, so
//! `v·c` is constant along every trajectory.  Two law families are computed
//! here, both with exact arithmetic (no floating point anywhere):
//!
//! * [`conservation_basis`] — a basis of the full (signed) left nullspace of
//!   `N`, by rational Gaussian elimination over [`crn_numeric::Rational`] and
//!   scaling each basis vector to a primitive integer vector.  Complete: any
//!   linear invariant is a rational combination of these, which makes the
//!   basis the right engine for reachability *refutation* (if some law weighs
//!   source and target differently, the target is unreachable).
//! * [`nonnegative_laws`] — minimal-support nonnegative laws (P-semiflows) by
//!   the classical Farkas construction.  Nonnegative laws bound species
//!   counts (`v(s)·c(s) ≤ v·c₀` for all `s`), which is what the `C005`
//!   output-starvation lint consumes.

use crn_numeric::{gcd_i128, lcm_i128, Rational};

use crate::species::SpeciesSet;

use super::stoichiometry::Stoichiometry;

/// An integer conservation law: weights `v` with `v·N = 0`, stored as one
/// weight per dense species index and kept *primitive* (the gcd of the
/// weights is 1, and the first nonzero weight is positive for signed laws).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConservationLaw {
    weights: Vec<i128>,
}

impl ConservationLaw {
    /// The weight vector, indexed by dense species index.
    #[must_use]
    pub fn weights(&self) -> &[i128] {
        &self.weights
    }

    /// The weight of species index `s` (zero past the law's stride).
    #[must_use]
    pub fn weight(&self, s: usize) -> i128 {
        self.weights.get(s).copied().unwrap_or(0)
    }

    /// Whether every weight is nonnegative (the law is a P-semiflow).
    #[must_use]
    pub fn is_nonnegative(&self) -> bool {
        self.weights.iter().all(|&w| w >= 0)
    }

    /// The invariant value `v·counts`.  Counts past the law's stride weigh
    /// zero; weights past the counts' length multiply an implicit zero count.
    #[must_use]
    pub fn weigh(&self, counts: &[u64]) -> i128 {
        self.weights
            .iter()
            .zip(counts)
            .map(|(&w, &c)| w * i128::from(c))
            .sum()
    }

    /// Whether the law proves `target` unreachable from `source`: a law
    /// weighs every configuration of a trajectory identically, so different
    /// weights refute reachability (in either direction).
    #[must_use]
    pub fn refutes(&self, source: &[u64], target: &[u64]) -> bool {
        self.weigh(source) != self.weigh(target)
    }

    /// Renders the law as a signed sum of species names, e.g.
    /// `X1 + Y - Z2 - K` or `L + W + 2Y`.  Species outside the interner are
    /// shown by index as `#i`.
    #[must_use]
    pub fn display(&self, species: &SpeciesSet) -> String {
        let mut out = String::new();
        for (i, &w) in self.weights.iter().enumerate() {
            if w == 0 {
                continue;
            }
            let name = if i < species.len() {
                species.name(crate::species::Species(i)).to_owned()
            } else {
                format!("#{i}")
            };
            if out.is_empty() {
                if w < 0 {
                    out.push('-');
                }
            } else if w < 0 {
                out.push_str(" - ");
            } else {
                out.push_str(" + ");
            }
            let magnitude = w.unsigned_abs();
            if magnitude != 1 {
                out.push_str(&magnitude.to_string());
            }
            out.push_str(&name);
        }
        if out.is_empty() {
            out.push('0');
        }
        out
    }

    /// Builds a law from raw weights, reducing to primitive form.  Returns
    /// `None` for the zero vector.
    fn primitive(mut weights: Vec<i128>) -> Option<Self> {
        let g = weights.iter().fold(0i128, |acc, &w| gcd_i128(acc, w));
        if g == 0 {
            return None;
        }
        for w in &mut weights {
            *w /= g;
        }
        Some(ConservationLaw { weights })
    }
}

/// A basis of the signed left nullspace `{v : v·N = 0}` as primitive integer
/// vectors, via rational Gaussian elimination on the transposed system
/// `Nᵀ·vᵀ = 0` (one equation per reaction, one unknown per species).
///
/// Species untouched by any reaction yield unit laws, so a basis always
/// exists for them; a CRN with no reactions gets one unit law per species
/// slot.  The basis is complete for linear refutation: any integer (indeed
/// rational) conservation law is a combination of the returned vectors.
#[must_use]
pub fn conservation_basis(stoich: &Stoichiometry) -> Vec<ConservationLaw> {
    let cols = stoich.stride();
    let rows = stoich.reaction_count();
    // The constraint matrix A = Nᵀ: A[r][s] = net change of s by reaction r.
    let mut a: Vec<Vec<Rational>> = (0..rows)
        .map(|r| {
            (0..cols)
                .map(|s| Rational::from(stoich.entry(s, r)))
                .collect()
        })
        .collect();

    // Forward elimination to row echelon form, tracking pivot columns.
    let mut pivot_cols: Vec<usize> = Vec::new();
    let mut rank = 0usize;
    for col in 0..cols {
        let Some(pivot_row) = (rank..rows).find(|&r| !a[r][col].is_zero()) else {
            continue;
        };
        a.swap(rank, pivot_row);
        let pivot = a[rank][col];
        for cell in &mut a[rank] {
            *cell /= pivot;
        }
        let pivot_row = a[rank].clone();
        for (r, row) in a.iter_mut().enumerate() {
            if r != rank && !row[col].is_zero() {
                let factor = row[col];
                for (cell, &p) in row.iter_mut().zip(&pivot_row) {
                    *cell -= p * factor;
                }
            }
        }
        pivot_cols.push(col);
        rank += 1;
        if rank == rows {
            break;
        }
    }

    // One basis vector per free column: set that free variable to 1, every
    // other free variable to 0, and read the pivot variables off the RREF.
    let mut basis = Vec::with_capacity(cols - rank);
    for free in 0..cols {
        if pivot_cols.contains(&free) {
            continue;
        }
        let mut v = vec![Rational::ZERO; cols];
        v[free] = Rational::ONE;
        for (row, &pc) in pivot_cols.iter().enumerate() {
            v[pc] = -a[row][free];
        }
        // Scale to a primitive integer vector: multiply by the lcm of the
        // denominators, then divide by the gcd; flip so the first nonzero
        // weight is positive (a canonical sign for stable output).
        let scale = v
            .iter()
            .fold(1i128, |acc, value| lcm_i128(acc, value.denom()));
        let mut weights: Vec<i128> = v
            .iter()
            .map(|value| {
                (*value * Rational::new(scale, 1))
                    .to_integer()
                    .expect("scaled by the denominator lcm")
            })
            .collect();
        if let Some(first) = weights.iter().find(|&&w| w != 0) {
            if *first < 0 {
                for w in &mut weights {
                    *w = -*w;
                }
            }
        }
        if let Some(law) = ConservationLaw::primitive(weights) {
            basis.push(law);
        }
    }
    basis
}

/// Default cap on intermediate Farkas rows: the construction is worst-case
/// exponential, so [`nonnegative_laws`] truncates (soundly — every returned
/// law is genuine, some may be missed) past this many candidate rows.
pub const FARKAS_ROW_CAP: usize = 4096;

/// The result of a capped P-semiflow enumeration: the laws found plus
/// whether the Farkas row cap cut the search short.  A truncated enumeration
/// is still *sound* (every returned law is genuine) but no longer complete,
/// so consumers that reason from the *absence* of a law must check the flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemiflowEnumeration {
    /// The minimal-support nonnegative laws found.
    pub laws: Vec<ConservationLaw>,
    /// Whether the intermediate-row cap truncated the enumeration.
    pub truncated: bool,
}

/// Runs the Farkas annulment loop over the first `annul` columns of `table`,
/// combining positive/negative row pairs with positive coefficients and
/// keeping at most `max_rows` intermediate rows per column.  Returns the
/// surviving rows (whose first `annul` entries are all zero) and whether the
/// cap cut the enumeration short.
pub(super) fn farkas_annul(
    mut table: Vec<Vec<i128>>,
    annul: usize,
    max_rows: usize,
) -> (Vec<Vec<i128>>, bool) {
    let mut truncated = false;
    for col in 0..annul {
        let (zero, nonzero): (Vec<_>, Vec<_>) = table.drain(..).partition(|row| row[col] == 0);
        let mut next = zero;
        let positive: Vec<&Vec<i128>> = nonzero.iter().filter(|row| row[col] > 0).collect();
        let negative: Vec<&Vec<i128>> = nonzero.iter().filter(|row| row[col] < 0).collect();
        'pairs: for p in &positive {
            for n in &negative {
                let a = -n[col];
                let b = p[col];
                let mut combined: Vec<i128> = p
                    .iter()
                    .zip(n.iter())
                    .map(|(&x, &y)| a * x + b * y)
                    .collect();
                debug_assert_eq!(combined[col], 0);
                let g = combined.iter().fold(0i128, |acc, &w| gcd_i128(acc, w));
                if g > 1 {
                    for w in &mut combined {
                        *w /= g;
                    }
                }
                if !next.contains(&combined) {
                    next.push(combined);
                }
                if next.len() >= max_rows {
                    truncated = true;
                    break 'pairs;
                }
            }
        }
        table = next;
    }
    (table, truncated)
}

/// Drops every item whose support strictly contains another item's support.
/// Items with empty support are kept untouched (and must not occur alongside
/// nonempty ones, or they would knock everything out).
pub(super) fn retain_minimal_support<T>(items: &mut Vec<T>, support_of: impl Fn(&T) -> Vec<bool>) {
    let supports: Vec<Vec<bool>> = items.iter().map(&support_of).collect();
    let minimal: Vec<bool> = supports
        .iter()
        .enumerate()
        .map(|(i, sup)| {
            !supports.iter().enumerate().any(|(j, other)| {
                i != j
                    && other.iter().zip(sup).all(|(&o, &s)| !o || s)
                    && sup.iter().zip(other).any(|(&s, &o)| s && !o)
            })
        })
        .collect();
    let mut keep = minimal.into_iter();
    items.retain(|_| keep.next().expect("one flag per item"));
}

/// Minimal-support nonnegative conservation laws (P-semiflows) by the Farkas
/// algorithm, capped at `max_rows` intermediate rows, with the truncation
/// flag surfaced.
///
/// Starting from `[N | I]` (one row per species), each reaction column is
/// annulled in turn by adding every positive multiple-pair combination of
/// rows with opposite signs and discarding rows with a nonzero entry; the
/// identity half of the surviving rows are nonnegative laws.  Rows are
/// reduced by their gcd and deduplicated, and the result is filtered to laws
/// of minimal support.  Truncation at `max_rows` only loses laws, it never
/// fabricates one.
#[must_use]
pub fn nonnegative_laws_capped(stoich: &Stoichiometry, max_rows: usize) -> SemiflowEnumeration {
    let species = stoich.stride();
    let reactions = stoich.reaction_count();
    // Each row is [reaction part (length R) | species weights (length S)].
    let table: Vec<Vec<i128>> = (0..species)
        .map(|s| {
            let mut row = vec![0i128; reactions + species];
            for (r, cell) in row[..reactions].iter_mut().enumerate() {
                *cell = i128::from(stoich.entry(s, r));
            }
            row[reactions + s] = 1;
            row
        })
        .collect();

    let (table, truncated) = farkas_annul(table, reactions, max_rows);

    let mut laws: Vec<ConservationLaw> = table
        .into_iter()
        .filter_map(|row| ConservationLaw::primitive(row[reactions..].to_vec()))
        .collect();
    // Keep only minimal-support laws: drop any law whose support strictly
    // contains another law's support (the Farkas combination step can emit
    // sums of smaller semiflows).
    retain_minimal_support(&mut laws, |law| {
        law.weights().iter().map(|&w| w != 0).collect()
    });
    laws.sort_by(|a, b| a.weights().cmp(b.weights()));
    laws.dedup();
    SemiflowEnumeration { laws, truncated }
}

/// [`nonnegative_laws_capped`] without the truncation flag, for callers that
/// only consume the laws positively (a found law is always genuine).
#[must_use]
pub fn nonnegative_laws(stoich: &Stoichiometry, max_rows: usize) -> Vec<ConservationLaw> {
    nonnegative_laws_capped(stoich, max_rows).laws
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompiledCrn;
    use crate::crn::Crn;
    use crate::examples;

    fn stoich(crn: &Crn) -> Stoichiometry {
        Stoichiometry::of(&CompiledCrn::compile(crn))
    }

    /// Every law must annihilate every reaction column exactly.
    fn assert_laws_hold(laws: &[ConservationLaw], n: &Stoichiometry) {
        for law in laws {
            for r in 0..n.reaction_count() {
                let dot: i128 = (0..n.stride())
                    .map(|s| law.weight(s) * i128::from(n.entry(s, r)))
                    .sum();
                assert_eq!(dot, 0, "law {:?} broken by reaction {r}", law.weights());
            }
        }
    }

    #[test]
    fn max_crn_has_a_two_dimensional_law_space() {
        let max = examples::max_crn();
        let n = stoich(max.crn());
        let basis = conservation_basis(&n);
        // 6 species (X1 Z1 Y X2 Z2 K), 4 independent reactions ⇒ 2 basis laws.
        assert_laws_hold(&basis, &n);
        assert_eq!(basis.len(), 2);
        // The basis separates I_(2,3) from the pure target {Y: 5}: the
        // overshoot configuration is refuted without exploration.
        let crn = max.crn();
        let idx = |name: &str| crn.species_named(name).unwrap().index();
        let mut source = vec![0u64; n.stride()];
        source[idx("X1")] = 2;
        source[idx("X2")] = 3;
        let mut target = vec![0u64; n.stride()];
        target[idx("Y")] = 5;
        assert!(basis.iter().any(|law| law.refutes(&source, &target)));
    }

    #[test]
    fn min_crn_semiflows_are_the_two_joins() {
        // X1 + X2 -> Y: minimal semiflows are X1 + Y and X2 + Y.
        let min = examples::min_crn();
        let n = stoich(min.crn());
        let laws = nonnegative_laws(&n, FARKAS_ROW_CAP);
        assert_laws_hold(&laws, &n);
        assert_eq!(laws.len(), 2);
        assert!(laws.iter().all(ConservationLaw::is_nonnegative));
        let names: Vec<String> = laws
            .iter()
            .map(|law| law.display(min.crn().species()))
            .collect();
        assert!(names.contains(&"X1 + Y".to_owned()), "{names:?}");
        assert!(names.contains(&"X2 + Y".to_owned()), "{names:?}");
    }

    #[test]
    fn untouched_species_get_unit_laws() {
        let mut crn = Crn::new();
        crn.add_species("A");
        crn.add_species("B");
        crn.parse_reaction("A -> 2A").unwrap();
        let n = stoich(&crn);
        let basis = conservation_basis(&n);
        // A -> 2A admits no law on A; B is untouched so e_B is a law.
        assert_laws_hold(&basis, &n);
        assert_eq!(basis.len(), 1);
        assert_eq!(basis[0].display(crn.species()), "B");
    }

    #[test]
    fn weighted_law_of_the_starved_output() {
        // L -> W ; 2W -> Y: the semiflow L + W + 2Y bounds Y by floor(1/2)=0.
        let mut crn = Crn::new();
        crn.parse_reaction("L -> W").unwrap();
        crn.parse_reaction("2W -> Y").unwrap();
        let n = stoich(&crn);
        let laws = nonnegative_laws(&n, FARKAS_ROW_CAP);
        assert_laws_hold(&laws, &n);
        assert_eq!(laws.len(), 1);
        assert_eq!(laws[0].display(crn.species()), "L + W + 2Y");
        let l = crn.species_named("L").unwrap().index();
        let mut init = vec![0u64; n.stride()];
        init[l] = 1;
        assert_eq!(laws[0].weigh(&init), 1);
    }

    #[test]
    fn display_renders_signs_and_magnitudes() {
        let law = ConservationLaw {
            weights: vec![-1, 0, 3],
        };
        let mut set = SpeciesSet::new();
        set.intern("A");
        set.intern("B");
        set.intern("C");
        assert_eq!(law.display(&set), "-A + 3C");
        let zero = ConservationLaw { weights: vec![0] };
        assert_eq!(zero.display(&set), "0");
    }

    #[test]
    fn weigh_tolerates_mismatched_lengths() {
        let law = ConservationLaw {
            weights: vec![1, 2],
        };
        assert_eq!(law.weigh(&[3]), 3);
        assert_eq!(law.weigh(&[3, 1, 9]), 5);
        assert_eq!(law.weight(7), 0);
    }

    #[test]
    fn a_tiny_row_cap_surfaces_truncation() {
        // min's Farkas run needs three intermediate rows; a cap of one row
        // cannot hold them, and the flag must say so instead of silently
        // narrowing the law set.
        let min = examples::min_crn();
        let n = stoich(min.crn());
        let full = nonnegative_laws_capped(&n, FARKAS_ROW_CAP);
        assert!(!full.truncated);
        assert_eq!(full.laws.len(), 2);
        let cut = nonnegative_laws_capped(&n, 1);
        assert!(cut.truncated);
        assert!(cut.laws.len() < full.laws.len());
        // Whatever survives the cap is still a genuine law.
        assert_laws_hold(&cut.laws, &n);
    }

    #[test]
    fn no_reactions_means_all_unit_laws() {
        let mut crn = Crn::new();
        crn.add_species("A");
        crn.add_species("B");
        let n = stoich(&crn);
        assert_eq!(conservation_basis(&n).len(), 2);
        assert_eq!(nonnegative_laws(&n, FARKAS_ROW_CAP).len(), 2);
    }
}
