//! The discrete chemical reaction network (CRN) model of Severson, Haley and
//! Doty, "Composable computation in discrete chemical reaction networks"
//! (PODC 2019), Section 2.
//!
//! A CRN is a finite set of species and reactions `(R, P) ∈ N^S × N^S`.  A
//! configuration assigns an integer count to every species; a reaction is
//! applicable when its reactants are present and firing it replaces them by
//! its products.  This crate provides:
//!
//! * the core data model ([`Species`], [`Reaction`], [`Configuration`], [`Crn`]),
//! * the shared compiled-CRN layer ([`CompiledCrn`], [`DenseState`]): dense
//!   species-indexed reaction tables plus the reaction dependency graph,
//!   consumed by both the reachability engine and the `crn-sim` simulator,
//! * *function CRNs* ([`FunctionCrn`]) with designated input species, output
//!   species and an optional leader, including the stable-computation
//!   semantics of Section 2.2,
//! * exhaustive bounded reachability and stable-computation checking
//!   ([`reachability`]), with a conservation-law refutation oracle,
//! * a static-analysis layer ([`analysis`]): the exact stoichiometry matrix,
//!   integer conservation laws, producible/fireable liveness and the typed
//!   structural and semantic lints `C001`–`C009` (siphons, traps,
//!   T-invariants and species bounds behind the analysis-v2 codes),
//! * the structural predicates of Section 2.3 (output-oblivious,
//!   output-monotonic) and the transformation of Observation 2.4,
//! * composition by concatenation (Observation 2.2 / Lemma 2.3) generalized
//!   to the n-stage, capture-proof [`compose::Pipeline`] engine, fan-out and
//!   fixed-input hardcoding (Observation 5.3) in [`compose`] and [`transform`],
//! * the worked example CRNs of Figures 1 and 2 in [`examples`].
//!
//! # Quick example
//!
//! ```
//! use crn_model::examples;
//! use crn_numeric::NVec;
//!
//! // The single-reaction CRN X1 + X2 -> Y stably computes min(x1, x2).
//! let min = examples::min_crn();
//! let verdict = crn_model::reachability::check_stable_computation(
//!     &min,
//!     &NVec::from(vec![3, 5]),
//!     3,
//!     10_000,
//! ).unwrap();
//! assert!(verdict.is_correct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod compiled;
pub mod compose;
pub mod config;
pub mod crn;
pub mod error;
pub mod examples;
pub mod function;
pub mod reachability;
pub mod reaction;
pub mod species;
pub mod transform;

pub use analysis::{
    conservation_basis, lint, nonnegative_laws, ConservationLaw, Lint, LintCode, Liveness,
    Stoichiometry,
};
pub use compiled::{CompiledCrn, CompiledReaction, DenseState};
pub use compose::{concatenate, fan_out, parallel_union, PipeSource, Pipeline, StageId};
pub use config::Configuration;
pub use crn::Crn;
pub use error::CrnError;
pub use function::{FunctionCrn, Roles};
pub use reachability::{
    check_on_box, check_on_box_baseline, check_on_box_baseline_stats,
    check_on_box_baseline_with_workers, check_on_box_reference, check_on_box_reference_stats,
    check_on_box_reference_with_workers, check_on_box_stats, check_on_box_with_stats,
    check_on_box_with_workers, check_stable_computation, max_output_reachable,
    reachable_configurations, target_reachable, target_reachable_exhaustive, BoxCheckStats,
    InvariantOracle, ReachabilityLimits, StableComputationVerdict,
};
pub use reaction::Reaction;
pub use species::{Species, SpeciesSet};
pub use transform::{
    bimolecularize, hardcode_input, import_module, make_output_oblivious, rename_species,
};
