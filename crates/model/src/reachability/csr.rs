//! Compressed-sparse-row successor storage.
//!
//! The exploration appends the successors of node `i` while `i` is the node
//! being expanded and nodes are expanded in id order, so the edge list can be
//! laid out directly in CSR form: one flat target vector plus one offset per
//! node, with no per-node `Vec` allocations and no linear `contains` scans
//! (duplicate edges are filtered with an O(1) stamp check during the build).

/// A forward-star (CSR) successor graph over dense node ids.
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    /// `offsets[i]..offsets[i + 1]` indexes the successors of node `i`.
    offsets: Vec<usize>,
    targets: Vec<usize>,
}

impl CsrGraph {
    /// Creates an empty graph ready to receive node 0's edges.
    pub(crate) fn new() -> Self {
        CsrGraph {
            offsets: vec![0],
            targets: Vec::new(),
        }
    }

    /// Empties the graph for a fresh build, keeping both allocations.
    pub(crate) fn reset(&mut self) {
        self.offsets.clear();
        self.offsets.push(0);
        self.targets.clear();
    }

    /// Appends an out-edge of the node currently being sealed.
    pub(crate) fn push_edge(&mut self, target: usize) {
        self.targets.push(target);
    }

    /// Seals the current node: all edges pushed since the previous seal belong
    /// to it.
    pub(crate) fn seal_node(&mut self) {
        self.offsets.push(self.targets.len());
    }

    /// The number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The number of (deduplicated) edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// The successors of node `v`, in discovery order.
    #[must_use]
    pub fn successors(&self, v: usize) -> &[usize] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a CSR graph from per-node adjacency lists, the way `explore`
    /// does: edges of node `i` are pushed while node `i` is being expanded.
    fn from_adjacency(adj: &[&[usize]]) -> CsrGraph {
        let mut g = CsrGraph::new();
        for succs in adj {
            for &t in *succs {
                g.push_edge(t);
            }
            g.seal_node();
        }
        g
    }

    #[test]
    fn layout_matches_adjacency() {
        let g = from_adjacency(&[&[1, 2], &[], &[0, 2]]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.successors(0), &[1, 2]);
        assert_eq!(g.successors(1), &[] as &[usize]);
        assert_eq!(g.successors(2), &[0, 2]);
    }

    #[test]
    fn empty_graph_has_no_nodes() {
        let g = from_adjacency(&[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
