//! The naive fixpoint reference engine.
//!
//! This is the seed implementation of stable-computation checking, kept
//! verbatim in spirit: sparse `Configuration` keys in a `HashMap`, per-node
//! `Vec` successor lists with linear dedup scans, and iterate-until-stable
//! fixpoint loops for the three reachability queries.  It exists for two
//! reasons: the property tests differentially check the SCC engine against it
//! on random CRNs, and the E13 benchmark measures the speedup over it.  It
//! must produce verdicts *identical* to [`super::check_stable_computation`].

use std::collections::{HashMap, VecDeque};

use crn_numeric::NVec;

use crate::config::Configuration;
use crate::crn::Crn;
use crate::error::CrnError;
use crate::function::FunctionCrn;

use super::{ReachabilityLimits, StableComputationVerdict};

/// The seed reachability graph: sparse configurations, `Vec<Vec<_>>` edges.
struct NaiveGraph {
    configurations: Vec<Configuration>,
    successors: Vec<Vec<usize>>,
}

impl NaiveGraph {
    fn explore(
        crn: &Crn,
        start: &Configuration,
        limits: ReachabilityLimits,
    ) -> Result<Self, CrnError> {
        let mut index: HashMap<Configuration, usize> = HashMap::new();
        let mut configurations = Vec::new();
        let mut successors: Vec<Vec<usize>> = Vec::new();
        let mut queue = VecDeque::new();

        index.insert(start.clone(), 0);
        configurations.push(start.clone());
        successors.push(Vec::new());
        queue.push_back(0usize);

        while let Some(current) = queue.pop_front() {
            let config = configurations[current].clone();
            for reaction in crn.reactions() {
                if !config.can_apply(reaction) {
                    continue;
                }
                let next = config.apply(reaction);
                let next_index = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        if configurations.len() >= limits.max_configurations {
                            return Err(CrnError::SearchLimitExceeded {
                                limit: format!(
                                    "{} reachable configurations",
                                    limits.max_configurations
                                ),
                            });
                        }
                        let i = configurations.len();
                        index.insert(next.clone(), i);
                        configurations.push(next);
                        successors.push(Vec::new());
                        queue.push_back(i);
                        i
                    }
                };
                if !successors[current].contains(&next_index) {
                    successors[current].push(next_index);
                }
            }
        }
        Ok(NaiveGraph {
            configurations,
            successors,
        })
    }

    fn max_reachable_metric(&self, metric: impl Fn(&Configuration) -> u64) -> Vec<u64> {
        let mut value: Vec<u64> = self.configurations.iter().map(&metric).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.configurations.len() {
                for &j in &self.successors[i] {
                    if value[j] > value[i] {
                        value[i] = value[j];
                        changed = true;
                    }
                }
            }
        }
        value
    }

    fn min_reachable_metric(&self, metric: impl Fn(&Configuration) -> u64) -> Vec<u64> {
        let mut value: Vec<u64> = self.configurations.iter().map(&metric).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.configurations.len() {
                for &j in &self.successors[i] {
                    if value[j] < value[i] {
                        value[i] = value[j];
                        changed = true;
                    }
                }
            }
        }
        value
    }

    fn can_reach(&self, good: &[bool]) -> Vec<bool> {
        let mut ok = good.to_vec();
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.configurations.len() {
                if ok[i] {
                    continue;
                }
                if self.successors[i].iter().any(|&j| ok[j]) {
                    ok[i] = true;
                    changed = true;
                }
            }
        }
        ok
    }
}

/// Checks stable computation with the fixpoint reference engine.  Produces a
/// verdict identical to [`super::check_stable_computation`], only slower.
///
/// # Errors
///
/// Returns [`CrnError::DimensionMismatch`] for an input of the wrong arity and
/// [`CrnError::SearchLimitExceeded`] if the reachable space exceeds
/// `max_configurations`.
pub fn check_stable_computation_naive(
    crn: &FunctionCrn,
    x: &NVec,
    expected_output: u64,
    max_configurations: usize,
) -> Result<StableComputationVerdict, CrnError> {
    let start = crn.initial_configuration(x)?;
    let graph = NaiveGraph::explore(crn.crn(), &start, ReachabilityLimits { max_configurations })?;
    let output = crn.output();
    let out_of = |c: &Configuration| c.count(output);

    let max_out = graph.max_reachable_metric(out_of);
    let min_out = graph.min_reachable_metric(out_of);

    let len = graph.configurations.len();
    let stable: Vec<bool> = (0..len).map(|i| max_out[i] == min_out[i]).collect();
    let correct_stable: Vec<bool> = (0..len)
        .map(|i| stable[i] && graph.configurations[i].count(output) == expected_output)
        .collect();
    let can_recover = graph.can_reach(&correct_stable);

    let mut stable_outputs: Vec<u64> = (0..len)
        .filter(|&i| stable[i])
        .map(|i| graph.configurations[i].count(output))
        .collect();
    stable_outputs.sort_unstable();
    stable_outputs.dedup();

    let all_recover = can_recover.iter().all(|&b| b);
    let failure = if all_recover {
        None
    } else {
        let bad = (0..len).find(|&i| !can_recover[i]).expect("some bad index");
        Some(format!(
            "configuration {} cannot reach a stable configuration with output {}",
            graph.configurations[bad].display(crn.crn().species()),
            expected_output
        ))
    };

    Ok(StableComputationVerdict {
        input: x.clone(),
        expected_output,
        correct: all_recover,
        reachable_configurations: len,
        max_output_reachable: max_out[0],
        stable_outputs,
        failure,
    })
}

/// Checks every input of the box `[0, bound]^d` sequentially with the
/// fixpoint reference engine, returning the first failing verdict.
///
/// # Errors
///
/// Propagates the errors of [`check_stable_computation_naive`].
pub fn check_on_box_naive(
    crn: &FunctionCrn,
    f: impl Fn(&NVec) -> u64,
    bound: u64,
    max_configurations: usize,
) -> Result<Option<StableComputationVerdict>, CrnError> {
    check_on_box_naive_stats(crn, f, bound, max_configurations).0
}

/// [`check_on_box_naive`] returning the sweep's [`super::BoxCheckStats`]
/// alongside
/// the outcome.  The seed engine has no pruning, symmetry, or cache layers,
/// so only `points`, `evaluated`, and `configs_explored` are filled; on a
/// failing (or erroring) sweep `evaluated` reports how far the sequential
/// scan got.
pub fn check_on_box_naive_stats(
    crn: &FunctionCrn,
    f: impl Fn(&NVec) -> u64,
    bound: u64,
    max_configurations: usize,
) -> (
    Result<Option<StableComputationVerdict>, CrnError>,
    super::BoxCheckStats,
) {
    let mut stats = super::BoxCheckStats::default();
    let radix = bound.saturating_add(1);
    stats.points = (0..crn.dim()).fold(1u64, |acc, _| acc.saturating_mul(radix));
    let result = (|| {
        for x in NVec::enumerate_box(crn.dim(), bound) {
            stats.evaluated += 1;
            let verdict = check_stable_computation_naive(crn, &x, f(&x), max_configurations)?;
            stats.configs_explored +=
                u64::try_from(verdict.reachable_configurations).expect("usize fits u64");
            if !verdict.is_correct() {
                return Ok(Some(verdict));
            }
        }
        Ok(None)
    })();
    (result, stats)
}
