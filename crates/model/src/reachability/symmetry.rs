//! Input-permutation automorphism detection for symmetry-orbit reduction.
//!
//! A species permutation `σ` that maps the reaction multiset to itself and
//! fixes the output (and leader) species is an automorphism of the whole
//! transition system: it carries the reachability graph of `I_x` onto the
//! graph of the permuted input, preserving terminality, strong connectivity,
//! output counts and the reachable-set size.  Verifying the box therefore
//! only needs one representative per input orbit — the driver skips a point
//! `x` whenever some detected permutation produces a lexicographically
//! smaller equivalent point with the same expected output.
//!
//! Detection enumerates candidate bijections of the input species (capped at
//! [`MAX_SYMMETRY_DIM`] inputs) and extends each to a full species
//! permutation by backtracking over the species that occur in reactions,
//! pruned by a permutation-invariant per-species signature and a global node
//! budget.  The search is sound but deliberately incomplete: a missed
//! automorphism only costs redundant work, never a wrong verdict.

use std::collections::BTreeMap;

use crate::compiled::CompiledCrn;
use crate::function::FunctionCrn;

/// Largest input dimension the detector enumerates candidate permutations
/// for (`d!` candidates).
const MAX_SYMMETRY_DIM: usize = 6;

/// Backtracking-node budget per candidate input bijection; exhausting it
/// abandons the candidate (sound — the orbit is simply not reduced).
const EXTENSION_BUDGET: usize = 10_000;

/// A reaction in σ-comparable canonical form: sorted reactant and delta
/// lists.
type CanonicalReaction = (Vec<(usize, u64)>, Vec<(usize, i64)>);

/// The permutation-invariant signature of one species: the sorted multiset,
/// over all reactions, of its (reactant coefficient, product coefficient)
/// pairs, omitting reactions that do not mention it.
fn species_signature(compiled: &CompiledCrn, s: usize) -> Vec<(u64, u64)> {
    let mut sig = Vec::new();
    for reaction in compiled.reactions() {
        let rc = reaction
            .reactants()
            .iter()
            .find(|&&(t, _)| t == s)
            .map_or(0, |&(_, c)| c);
        let delta = reaction
            .delta()
            .iter()
            .find(|&&(t, _)| t == s)
            .map_or(0, |&(_, d)| d);
        let pc = u64::try_from(i64::try_from(rc).expect("coefficient fits i64") + delta)
            .expect("product coefficients are nonnegative");
        if (rc, pc) != (0, 0) {
            sig.push((rc, pc));
        }
    }
    sig.sort_unstable();
    sig
}

/// Applies `sigma` to one reaction and returns its canonical form.
fn map_reaction(
    reaction: &crate::compiled::CompiledReaction,
    sigma: &[usize],
) -> CanonicalReaction {
    let mut reactants: Vec<(usize, u64)> = reaction
        .reactants()
        .iter()
        .map(|&(s, c)| (sigma[s], c))
        .collect();
    reactants.sort_unstable();
    let mut delta: Vec<(usize, i64)> = reaction
        .delta()
        .iter()
        .map(|&(s, d)| (sigma[s], d))
        .collect();
    delta.sort_unstable();
    (reactants, delta)
}

/// Whether `sigma` (a full species permutation) maps the reaction multiset
/// onto itself.
fn preserves_reactions(
    compiled: &CompiledCrn,
    canon: &[CanonicalReaction],
    sigma: &[usize],
) -> bool {
    let mut mapped: Vec<CanonicalReaction> = compiled
        .reactions()
        .iter()
        .map(|r| map_reaction(r, sigma))
        .collect();
    mapped.sort_unstable();
    mapped == canon
}

/// Extends the partial permutation `sigma` over the remaining `assign` list
/// by backtracking; candidate targets range over all of `targets` through
/// the shared `used` mask.  Every completion is verified with
/// `preserves_reactions`; the first success sets `found`.
#[allow(clippy::too_many_arguments)]
fn extend(
    compiled: &CompiledCrn,
    canon: &[CanonicalReaction],
    signatures: &BTreeMap<usize, Vec<(u64, u64)>>,
    sigma: &mut [usize],
    assign: &[usize],
    targets: &[usize],
    used: &mut [bool],
    budget: &mut usize,
    found: &mut bool,
) {
    if *found || *budget == 0 {
        return;
    }
    *budget -= 1;
    let Some((&s, rest)) = assign.split_first() else {
        if preserves_reactions(compiled, canon, sigma) {
            *found = true;
        }
        return;
    };
    for (slot, &t) in targets.iter().enumerate() {
        if used[slot] || signatures[&s] != signatures[&t] {
            continue;
        }
        used[slot] = true;
        sigma[s] = t;
        extend(
            compiled, canon, signatures, sigma, rest, targets, used, budget, found,
        );
        used[slot] = false;
        sigma[s] = s;
        if *found {
            return;
        }
    }
}

/// Detects non-identity input permutations that extend to CRN automorphisms
/// fixing the output and leader species.
///
/// Each returned array `p` (of length `dim`) encodes one permutation in
/// *skip orientation*: the point `y` with `y[k] = x[p[k]]` is equivalent to
/// `x` — some automorphism maps `I_x` onto `I_y` — so the box driver may
/// skip `x` whenever `y` is lexicographically smaller and carries the same
/// expected output.
pub(super) fn input_automorphisms(crn: &FunctionCrn, compiled: &CompiledCrn) -> Vec<Vec<usize>> {
    let d = crn.dim();
    if !(2..=MAX_SYMMETRY_DIM).contains(&d) {
        return Vec::new();
    }
    let stride = compiled.stride().max(crn.role_stride());
    let inputs: Vec<usize> = crn.roles().inputs.iter().map(|s| s.index()).collect();
    if inputs.iter().any(|&s| s >= stride) {
        return Vec::new();
    }
    let out = crn.output().index();
    let leader = crn.leader().map(|l| l.index());

    // Movable species: everything a reaction mentions.  Species outside this
    // set (and outside the roles) are untouched by the dynamics, so fixing
    // them loses no automorphism that matters for reachability.
    let mut movable = vec![false; stride];
    for reaction in compiled.reactions() {
        for &(s, _) in reaction.reactants() {
            movable[s] = true;
        }
        for &(s, _) in reaction.delta() {
            movable[s] = true;
        }
    }

    let signatures: BTreeMap<usize, Vec<(u64, u64)>> = (0..stride)
        .filter(|&s| movable[s])
        .map(|s| (s, species_signature(compiled, s)))
        .collect();
    let mut canon: Vec<CanonicalReaction> = {
        let identity: Vec<usize> = (0..stride).collect();
        compiled
            .reactions()
            .iter()
            .map(|r| map_reaction(r, &identity))
            .collect()
    };
    canon.sort_unstable();

    // The species the backtracker assigns: movable, not an input, not a
    // pinned role.
    let free: Vec<usize> = (0..stride)
        .filter(|&s| movable[s] && !inputs.contains(&s) && Some(s) != leader && s != out)
        .collect();

    let mut results: Vec<Vec<usize>> = Vec::new();
    let mut pi: Vec<usize> = (0..d).collect();
    permute_all(&mut pi, 0, &mut |pi| {
        if pi.iter().enumerate().all(|(j, &t)| j == t) {
            return; // identity
        }
        // Candidate: σ(input_j) = input_{pi[j]}.  Signatures must agree
        // pairwise, and a role pinned to itself must be fixed by pi (inputs
        // are validated distinct from output and leader, so no clash).
        let compatible = pi.iter().enumerate().all(|(j, &t)| {
            let (a, b) = (inputs[j], inputs[t]);
            match (movable[a], movable[b]) {
                (true, true) => signatures[&a] == signatures[&b],
                (false, false) => true,
                _ => false,
            }
        });
        if !compatible {
            return;
        }
        let mut sigma: Vec<usize> = (0..stride).collect();
        for (j, &t) in pi.iter().enumerate() {
            sigma[inputs[j]] = inputs[t];
        }
        let mut used = vec![false; free.len()];
        let mut budget = EXTENSION_BUDGET;
        let mut found = false;
        extend(
            compiled,
            &canon,
            &signatures,
            &mut sigma,
            &free,
            &free,
            &mut used,
            &mut budget,
            &mut found,
        );
        if found {
            // Skip orientation: σ(I_x) = I_y with y[pi[j]] = x[j], i.e.
            // y[k] = x[pi⁻¹(k)].
            let mut p = vec![0usize; d];
            for (j, &t) in pi.iter().enumerate() {
                p[t] = j;
            }
            if !results.contains(&p) {
                results.push(p);
            }
        }
    });
    results
}

/// Calls `visit` on every permutation of `items` (Heap's algorithm, the
/// recursive form).
fn permute_all(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute_all(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;

    #[test]
    fn max_crn_has_the_input_swap() {
        let max = examples::max_crn();
        let compiled = CompiledCrn::compile(max.crn());
        let perms = input_automorphisms(&max, &compiled);
        assert_eq!(perms, vec![vec![1, 0]]);
    }

    #[test]
    fn min_crn_has_the_input_swap() {
        let min = examples::min_crn();
        let compiled = CompiledCrn::compile(min.crn());
        let perms = input_automorphisms(&min, &compiled);
        assert_eq!(perms, vec![vec![1, 0]]);
    }

    #[test]
    fn single_input_crns_have_no_orbits() {
        let double = examples::double_crn();
        let compiled = CompiledCrn::compile(double.crn());
        assert!(input_automorphisms(&double, &compiled).is_empty());
    }

    #[test]
    fn asymmetric_reactions_defeat_the_swap() {
        // X1 -> Y but X2 -> 2Y: swapping the inputs changes the reaction
        // multiset, so no automorphism exists.
        let mut crn = crate::crn::Crn::new();
        crn.parse_reaction("X1 -> Y").unwrap();
        crn.parse_reaction("X2 -> 2Y").unwrap();
        let f = FunctionCrn::with_named_roles(crn, &["X1", "X2"], "Y", None).unwrap();
        let compiled = CompiledCrn::compile(f.crn());
        assert!(input_automorphisms(&f, &compiled).is_empty());
    }

    #[test]
    fn symmetric_reactions_without_coupling_species_still_detect() {
        // X1 -> Y and X2 -> Y: the swap is an automorphism with no further
        // species to extend over.
        let mut crn = crate::crn::Crn::new();
        crn.parse_reaction("X1 -> Y").unwrap();
        crn.parse_reaction("X2 -> Y").unwrap();
        let f = FunctionCrn::with_named_roles(crn, &["X1", "X2"], "Y", None).unwrap();
        let compiled = CompiledCrn::compile(f.crn());
        assert_eq!(input_automorphisms(&f, &compiled), vec![vec![1, 0]]);
    }
}
