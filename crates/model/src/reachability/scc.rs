//! Tarjan condensation and the linear-time reachability DPs.
//!
//! Every vertex of a strongly connected component can reach exactly the same
//! set of configurations, so "max/min metric over everything reachable" and
//! "can some good configuration be reached" are component properties.  Tarjan
//! emits components in reverse topological order of the condensation (every
//! edge leaves a component for an *earlier-emitted* one), so one pass over the
//! components in emission order computes each query — replacing the seed
//! engine's iterate-until-stable fixpoint loops, whose round count grows with
//! the graph diameter.

use super::csr::CsrGraph;

/// Marker for an unvisited vertex during Tarjan's algorithm.
const UNVISITED: usize = usize::MAX;

/// The strongly-connected-component condensation of a [`CsrGraph`].
///
/// Component ids are Tarjan emission order: component 0 is a sink of the
/// condensation and every edge `v → w` of the underlying graph satisfies
/// `component_of(w) <= component_of(v)`.
#[derive(Debug, Clone, Default)]
pub struct Condensation {
    comp_of: Vec<usize>,
    /// Vertex ids grouped by component: component `c`'s members are
    /// `members[member_offsets[c]..member_offsets[c + 1]]`.
    members: Vec<usize>,
    member_offsets: Vec<usize>,
    // Tarjan scratch, kept so `rebuild` allocates nothing when warm.
    index: Vec<usize>,
    lowlink: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    /// `(vertex, next successor position)` frames of the simulated recursion.
    frames: Vec<(usize, usize)>,
    cursor: Vec<usize>,
    // Per-component DP scratch for `all_recover`, one cell pushed at each
    // component emission.
    dp_max: Vec<u64>,
    dp_min: Vec<u64>,
    dp_rec: Vec<bool>,
}

impl Condensation {
    /// An empty condensation, ready for [`rebuild`](Condensation::rebuild).
    #[must_use]
    pub fn empty() -> Self {
        Condensation::default()
    }

    /// Computes the condensation of `graph` with an iterative Tarjan pass
    /// (explicit stack, so deep chains of configurations cannot overflow the
    /// call stack).
    #[must_use]
    pub fn of(graph: &CsrGraph) -> Self {
        let mut cond = Condensation::empty();
        cond.rebuild(graph);
        cond
    }

    /// Recomputes the condensation of `graph` in place, reusing every
    /// internal buffer — the engine calls this once per verdict, so a box
    /// check condenses thousands of graphs with a handful of allocations.
    pub fn rebuild(&mut self, graph: &CsrGraph) {
        let n = graph.node_count();
        self.index.clear();
        self.index.resize(n, UNVISITED);
        self.lowlink.clear();
        self.lowlink.resize(n, 0);
        self.on_stack.clear();
        self.on_stack.resize(n, false);
        self.comp_of.clear();
        self.comp_of.resize(n, 0);
        self.stack.clear();
        self.frames.clear();

        let index = &mut self.index;
        let lowlink = &mut self.lowlink;
        let on_stack = &mut self.on_stack;
        let comp_of = &mut self.comp_of;
        let stack = &mut self.stack;
        let frames = &mut self.frames;
        let mut next_index = 0usize;
        let mut num_components = 0usize;

        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            frames.push((root, 0));
            while let Some(frame) = frames.last_mut() {
                let v = frame.0;
                if frame.1 == 0 {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let succs = graph.successors(v);
                if frame.1 < succs.len() {
                    let w = succs[frame.1];
                    frame.1 += 1;
                    if index[w] == UNVISITED {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                    continue;
                }
                frames.pop();
                if lowlink[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w] = false;
                        comp_of[w] = num_components;
                        if w == v {
                            break;
                        }
                    }
                    num_components += 1;
                }
                if let Some(parent) = frames.last() {
                    lowlink[parent.0] = lowlink[parent.0].min(lowlink[v]);
                }
            }
        }

        // Counting-sort the vertices by component id so the DPs can walk the
        // components in emission order.
        self.member_offsets.clear();
        self.member_offsets.resize(num_components + 1, 0);
        for &c in self.comp_of.iter() {
            self.member_offsets[c + 1] += 1;
        }
        for c in 0..num_components {
            self.member_offsets[c + 1] += self.member_offsets[c];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.member_offsets);
        self.members.clear();
        self.members.resize(n, 0);
        for (v, &c) in self.comp_of.iter().enumerate() {
            self.members[self.cursor[c]] = v;
            self.cursor[c] += 1;
        }
    }

    /// Decides "can every reachable configuration still reach a stable
    /// configuration with output `expected`?" — the verdict engine's
    /// `all_recover` — in one fused pass: Tarjan emits each component with
    /// all successor components already final, so the three per-component
    /// folds (closure max, closure min, recovers) are evaluated right at the
    /// pop instead of as three separate traversals over a materialized
    /// member grouping.  Returns exactly what
    /// [`rebuild`](Condensation::rebuild) followed by the three
    /// [`fold_into`](Condensation::fold_into) passes would conclude, and
    /// exits early on the first non-recovering component.
    ///
    /// Overwrites the Tarjan scratch and `comp_of` without refreshing the
    /// member grouping: after this call the public component accessors are
    /// unspecified until the next `rebuild`.
    pub(crate) fn all_recover(
        &mut self,
        graph: &CsrGraph,
        out_of: impl Fn(usize) -> u64,
        expected: u64,
    ) -> bool {
        let n = graph.node_count();
        self.index.clear();
        self.index.resize(n, UNVISITED);
        self.lowlink.clear();
        self.lowlink.resize(n, 0);
        self.on_stack.clear();
        self.on_stack.resize(n, false);
        self.comp_of.clear();
        self.comp_of.resize(n, 0);
        self.stack.clear();
        self.frames.clear();
        self.dp_max.clear();
        self.dp_min.clear();
        self.dp_rec.clear();

        let index = &mut self.index;
        let lowlink = &mut self.lowlink;
        let on_stack = &mut self.on_stack;
        let comp_of = &mut self.comp_of;
        let stack = &mut self.stack;
        let frames = &mut self.frames;
        let dp_max = &mut self.dp_max;
        let dp_min = &mut self.dp_min;
        let dp_rec = &mut self.dp_rec;
        let mut next_index = 0usize;
        let mut num_components = 0usize;

        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            frames.push((root, 0));
            while let Some(frame) = frames.last_mut() {
                let v = frame.0;
                if frame.1 == 0 {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let succs = graph.successors(v);
                if frame.1 < succs.len() {
                    let w = succs[frame.1];
                    frame.1 += 1;
                    if index[w] == UNVISITED {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                    continue;
                }
                frames.pop();
                if lowlink[v] == index[v] {
                    // The component is the stack suffix of Tarjan indices at
                    // least `index[v]` (the stack is in push = index order).
                    let mut base = stack.len();
                    while base > 0 && index[stack[base - 1]] >= index[v] {
                        base -= 1;
                    }
                    let c = num_components;
                    num_components += 1;
                    for &w in &stack[base..] {
                        on_stack[w] = false;
                        comp_of[w] = c;
                    }
                    // Every edge out of the component lands in an
                    // already-emitted (hence final) component, so the three
                    // folds complete in this one walk of the members.
                    let mut mx = u64::MIN;
                    let mut mn = u64::MAX;
                    let mut rec = false;
                    for &m in &stack[base..] {
                        let val = out_of(m);
                        mx = mx.max(val);
                        mn = mn.min(val);
                        for &w in graph.successors(m) {
                            let cw = comp_of[w];
                            if cw != c {
                                mx = mx.max(dp_max[cw]);
                                mn = mn.min(dp_min[cw]);
                                rec = rec || dp_rec[cw];
                            }
                        }
                    }
                    rec = rec || (mx == mn && mx == expected);
                    if !rec {
                        // A non-recovering component decides the answer: its
                        // own configurations cannot recover no matter what
                        // the rest of the graph looks like.
                        return false;
                    }
                    dp_max.push(mx);
                    dp_min.push(mn);
                    dp_rec.push(rec);
                    stack.truncate(base);
                }
                if let Some(parent) = frames.last() {
                    lowlink[parent.0] = lowlink[parent.0].min(lowlink[v]);
                }
            }
        }
        true
    }

    /// The number of strongly connected components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.member_offsets.len() - 1
    }

    /// The component id of vertex `v` (emission order, sinks first).
    #[must_use]
    pub fn component_of(&self, v: usize) -> usize {
        self.comp_of[v]
    }

    /// The vertices of component `c`.
    #[must_use]
    pub fn component_members(&self, c: usize) -> &[usize] {
        &self.members[self.member_offsets[c]..self.member_offsets[c + 1]]
    }

    /// Folds a per-vertex value over each component's reachable closure in
    /// one linear reverse-topological pass, writing the per-component results
    /// into `comp_val` (cleared and refilled; a reusable buffer avoids
    /// allocating per query).  Component `c`'s result merges `value_of(v)`
    /// over its members and the results of all successor components, which
    /// are final before `c` by emission order.  This is the single
    /// implementation behind both the public per-vertex queries and the
    /// verdict engine's component arrays.
    ///
    /// `merge` must be idempotent (`merge(a, a) == a`, like max/min/or): an
    /// intra-component edge merges the partially-built cell into itself, so a
    /// non-idempotent merge (e.g. sum) would silently inflate the result.
    pub(crate) fn fold_into<T: Copy>(
        &self,
        graph: &CsrGraph,
        identity: T,
        value_of: impl Fn(usize) -> T,
        merge: impl Fn(T, T) -> T,
        comp_val: &mut Vec<T>,
    ) {
        comp_val.clear();
        comp_val.resize(self.component_count(), identity);
        for c in 0..self.component_count() {
            for &v in self.component_members(c) {
                comp_val[c] = merge(comp_val[c], value_of(v));
                for &w in graph.successors(v) {
                    comp_val[c] = merge(comp_val[c], comp_val[self.comp_of[w]]);
                }
            }
        }
    }

    /// [`fold_into`](Condensation::fold_into) expanded back to one result per
    /// vertex.
    fn fold<T: Copy>(
        &self,
        graph: &CsrGraph,
        value: &[T],
        identity: T,
        merge: impl Fn(T, T) -> T,
    ) -> Vec<T> {
        let mut comp_val = Vec::new();
        self.fold_into(graph, identity, |v| value[v], merge, &mut comp_val);
        self.comp_of.iter().map(|&c| comp_val[c]).collect()
    }

    /// For every vertex, the maximum of `value` over all vertices reachable
    /// from it (including itself).
    #[must_use]
    pub fn max_reachable(&self, graph: &CsrGraph, value: &[u64]) -> Vec<u64> {
        self.fold(graph, value, u64::MIN, u64::max)
    }

    /// For every vertex, the minimum of `value` over all vertices reachable
    /// from it (including itself).
    #[must_use]
    pub fn min_reachable(&self, graph: &CsrGraph, value: &[u64]) -> Vec<u64> {
        self.fold(graph, value, u64::MAX, u64::min)
    }

    /// For every vertex, whether some vertex satisfying `good` is reachable
    /// from it (including itself).
    #[must_use]
    pub fn can_reach(&self, graph: &CsrGraph, good: &[bool]) -> Vec<bool> {
        self.fold(graph, good, false, |a, b| a || b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(adj: &[&[usize]]) -> CsrGraph {
        let mut g = CsrGraph::new();
        for succs in adj {
            for &t in *succs {
                g.push_edge(t);
            }
            g.seal_node();
        }
        g
    }

    #[test]
    fn condensation_of_two_cycles_and_a_bridge() {
        // 0 <-> 1 -> 2 <-> 3, 4 isolated.
        let g = graph(&[&[1], &[0, 2], &[3], &[2], &[]]);
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 3);
        assert_eq!(c.component_of(0), c.component_of(1));
        assert_eq!(c.component_of(2), c.component_of(3));
        assert_ne!(c.component_of(0), c.component_of(2));
        // Emission order: every edge goes to an earlier-or-equal component.
        for v in 0..g.node_count() {
            for &w in g.successors(v) {
                assert!(c.component_of(w) <= c.component_of(v));
            }
        }
        let sink = c.component_of(2);
        assert_eq!(c.component_members(sink).len(), 2);
    }

    #[test]
    fn self_loops_are_singleton_components() {
        let g = graph(&[&[0, 1], &[]]);
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), 2);
        assert_ne!(c.component_of(0), c.component_of(1));
    }

    #[test]
    fn reachability_folds_on_a_chain() {
        // 0 -> 1 -> 2 with values [5, 1, 3].
        let g = graph(&[&[1], &[2], &[]]);
        let c = Condensation::of(&g);
        assert_eq!(c.max_reachable(&g, &[5, 1, 3]), vec![5, 3, 3]);
        assert_eq!(c.min_reachable(&g, &[5, 1, 3]), vec![1, 1, 3]);
        assert_eq!(
            c.can_reach(&g, &[false, false, true]),
            vec![true, true, true]
        );
        assert_eq!(
            c.can_reach(&g, &[true, false, false]),
            vec![true, false, false]
        );
    }

    #[test]
    fn folds_see_through_cycles() {
        // 0 -> 1 <-> 2, 2 -> 3.
        let g = graph(&[&[1], &[2], &[1, 3], &[]]);
        let c = Condensation::of(&g);
        let max = c.max_reachable(&g, &[0, 9, 2, 4]);
        assert_eq!(max, vec![9, 9, 9, 4]);
        let min = c.min_reachable(&g, &[7, 9, 2, 4]);
        assert_eq!(min, vec![2, 2, 2, 4]);
        let reach = c.can_reach(&g, &[false, false, false, true]);
        assert_eq!(reach, vec![true, true, true, true]);
    }

    #[test]
    fn fused_decision_matches_the_folds_on_a_failing_graph() {
        // 0 -> 1 <-> 2 (outputs 1, 2, 3): component {1, 2} never stabilizes
        // on any single output, so nothing recovers for expected = 2.
        let g = graph(&[&[1], &[2], &[1]]);
        let vals = [1u64, 2, 3];
        let mut c = Condensation::of(&g);
        assert!(!c.all_recover(&g, |v| vals[v], 2));
        // A self-stabilizing sink with the expected output recovers everyone.
        let g = graph(&[&[1], &[2], &[]]);
        let vals = [1u64, 7, 2];
        assert!(c.all_recover(&g, |v| vals[v], 2));
        assert!(!c.all_recover(&g, |v| vals[v], 7));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        /// The fused Tarjan decision pass agrees with `rebuild` plus the
        /// three `fold_into` traversals on arbitrary graphs.
        #[test]
        fn fused_decision_matches_the_folds(
            adj in proptest::collection::vec(
                proptest::collection::vec(0usize..8, 0..4), 1..8),
            raw_vals in proptest::collection::vec(0u64..3, 8),
            expected in 0u64..3,
        ) {
            let n = adj.len();
            let mut g = CsrGraph::new();
            for succs in &adj {
                for &t in succs {
                    g.push_edge(t % n);
                }
                g.seal_node();
            }
            let vals = &raw_vals[..n];
            let mut cond = Condensation::empty();
            cond.rebuild(&g);
            let mut comp_max = Vec::new();
            let mut comp_min = Vec::new();
            let mut comp_rec = Vec::new();
            cond.fold_into(&g, u64::MIN, |v| vals[v], u64::max, &mut comp_max);
            cond.fold_into(&g, u64::MAX, |v| vals[v], u64::min, &mut comp_min);
            cond.fold_into(
                &g,
                false,
                |v| {
                    let c = cond.component_of(v);
                    comp_max[c] == comp_min[c] && comp_max[c] == expected
                },
                |a, b| a || b,
                &mut comp_rec,
            );
            let folded = comp_rec.iter().all(|&r| r);
            proptest::prop_assert_eq!(cond.all_recover(&g, |v| vals[v], expected), folded);
        }
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        // 0 -> 1 -> … -> 99_999: recursion here would overflow.
        let n = 100_000usize;
        let mut g = CsrGraph::new();
        for v in 0..n {
            if v + 1 < n {
                g.push_edge(v + 1);
            }
            g.seal_node();
        }
        let c = Condensation::of(&g);
        assert_eq!(c.component_count(), n);
        let values: Vec<u64> = (0..n as u64).collect();
        let max = c.max_reachable(&g, &values);
        assert!(max.iter().all(|&m| m == n as u64 - 1));
    }
}
