//! Parallel box checking.
//!
//! `check_on_box` walks the inputs of `[0, bound]^d` in lexicographic order
//! and shards them across scoped worker threads (the vendored stubs have no
//! rayon, so the pool is a plain `crn_sync::thread::scope` with an atomic
//! work-stealing cursor).  Box points are never materialized up front: each
//! worker decodes its drawn index into one reused count vector through the
//! mixed-radix place values of the box, so the sweep takes `O(1)` memory in
//! the box size.  The result is deterministic regardless of thread
//! interleaving: every worker records the index of the first failing (or
//! erroring) input it sees, indices past the best-known failure are skipped,
//! and the verdict returned is the one at the smallest index — exactly what
//! the sequential loop would have produced.
//!
//! Three engine modes share the driver (see [`EngineMode`]): the unpruned
//! reference scan, the analysis-pruned baseline, and the incremental engine
//! layering symmetry-orbit skipping and the cross-point memo cache on top of
//! the baseline's static pruning.

use crn_sync::atomic::{AtomicU64, Ordering};
use crn_sync::Arc;

use crn_numeric::NVec;

use crate::error::CrnError;
use crate::function::FunctionCrn;

use super::engine::{StaticOutcome, SweepPlan, VerdictEngine};
use super::memo::{MemoCache, Summary};
use super::{BoxCheckStats, StableComputationVerdict};

/// One input's outcome: the check failed, or the search errored out.
type BoxOutcome = Result<StableComputationVerdict, CrnError>;

/// A worker's record of one non-passing input: the full outcome, or a bad
/// point left unmaterialized (statically refuted, or rejected by a decision
/// pass) — only the lexicographically smallest bad input is ever expanded
/// into a real verdict.
enum BadPoint {
    Full(BoxOutcome),
    Deferred,
}

/// How the sharded driver evaluates each box point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum EngineMode {
    /// Full verdict construction at every point, no static analysis.  The
    /// differential baseline every other mode must match bit for bit.
    Reference,
    /// Static interval pruning plus the per-point fused decision pass — the
    /// pre-incremental engine, kept as the E19 comparison point.
    Baseline,
    /// The incremental engine: symmetry-orbit skipping, adaptive static
    /// pruning, and cross-point memoization / packed exploration.
    Incremental,
}

/// The default shard grants each worker at least this many inputs, so a box
/// never spawns threads whose startup cost dwarfs their microsecond-scale
/// share of the work.  An explicit worker count via
/// [`super::check_on_box_with_workers`] overrides this.
pub(super) const MIN_POINTS_PER_WORKER: u64 = 8;

/// After this many consecutive static abstentions a worker stops consulting
/// the static verdict and goes straight to the decision pass.  Purely a
/// performance valve: the decision pass subsumes the static answer, so
/// verdicts are unaffected.  Any static answer re-arms the counter.
const STATIC_ABSTAIN_CUTOFF: u32 = 16;

/// The number of points in `[0, bound]^d`, saturating at `u64::MAX` (a box
/// that large cannot be swept anyway).
fn box_point_count(dim: usize, bound: u64) -> u64 {
    let radix = bound.saturating_add(1);
    let mut total = 1u64;
    for _ in 0..dim {
        total = match total.checked_mul(radix) {
            Some(t) => t,
            None => return u64::MAX,
        };
    }
    total
}

/// Decodes a lexicographic box index into the point it names, writing into a
/// reused vector: the last coordinate is the least significant digit, exactly
/// the order of [`NVec::box_iter`].
fn decode_point(mut index: u64, radix: u64, x: &mut NVec) {
    for j in (0..x.dim()).rev() {
        x[j] = index % radix;
        index /= radix;
    }
    debug_assert_eq!(index, 0, "index lies inside the box");
}

/// Checks every input of the box on `workers` threads, returning the verdict
/// (or error) of the lexicographically-first input that does not pass, plus
/// the sweep's observability counters.
///
/// All three modes return bit-identical outcomes; they differ only in how
/// much work each point costs.  Non-reference modes record only the *index*
/// of a bad point during the scan; the one bad index that wins the race is
/// re-checked in full, so the returned outcome is byte-identical to the
/// reference scan — failure messages and errors included.
pub(super) fn check_on_box_sharded(
    crn: &FunctionCrn,
    f: &(impl Fn(&NVec) -> u64 + Sync),
    bound: u64,
    max_configurations: usize,
    workers: usize,
    mode: EngineMode,
) -> (
    Result<Option<StableComputationVerdict>, CrnError>,
    BoxCheckStats,
) {
    let _sweep = crn_obs::span("model.box.sweep");
    let dim = crn.dim();
    let radix = bound.saturating_add(1);
    let total = box_point_count(dim, bound);
    let workers = workers.clamp(1, usize::try_from(total).unwrap_or(usize::MAX).max(1));

    // Everything point-independent is computed once for the whole sweep: the
    // static analysis (baseline and incremental) and the incremental plan
    // (hull code space, packed spec, input automorphisms, shared cache log).
    let shared_analysis = match mode {
        EngineMode::Reference => None,
        EngineMode::Baseline | EngineMode::Incremental => Some(VerdictEngine::analyze(crn)),
    };
    let plan = (mode == EngineMode::Incremental).then(|| {
        SweepPlan::build(
            crn,
            shared_analysis.as_ref().expect("incremental analyzes"),
            bound,
            max_configurations,
        )
    });
    let make_engine = || match &shared_analysis {
        Some(analysis) => VerdictEngine::with_analysis(crn, Some(Arc::clone(analysis))),
        None => VerdictEngine::reference(crn),
    };

    // Ordering audit (model-checked in crn-sync tests/model.rs; see
    // DESIGN.md § Concurrency model).  Correctness of this driver does NOT
    // depend on memory ordering at all: `fetch_add`/`fetch_min` atomicity
    // gives each index to exactly one worker and makes `first_bad`
    // monotonically non-increasing, and a stale `first_bad` read can only
    // *overestimate* the bound — a worker then evaluates a point it could
    // have skipped, never skips one it must evaluate.  Determinism comes
    // from the per-worker local `best` records merged after the scope join,
    // not from the atomics.  `first_bad_reduction_never_loses_lex_first`
    // checks the protocol exhaustively as written;
    // `first_bad_reduction_tolerates_relaxed` checks the all-Relaxed
    // downgrade also passes, confirming the orderings below are a
    // documentation choice (Acquire/AcqRel marks the load/reduction pair as
    // a cross-thread protocol), not a correctness requirement.
    let next = AtomicU64::new(0);
    let first_bad = AtomicU64::new(u64::MAX);

    // One worker's scan: draw indices from the shared cursor until the box
    // (or the best-known bad prefix) is exhausted.  Returns its first bad
    // index — its draws strictly increase, so it may stop at the first — and
    // its statistics.
    let run_worker = || -> (Option<(u64, BadPoint)>, BoxCheckStats) {
        let mut engine = make_engine();
        let mut cache = plan
            .as_ref()
            .is_some_and(|p| p.cache_enabled)
            .then(MemoCache::new);
        let mut pending: Vec<(u64, Summary)> = Vec::new();
        let mut x = NVec::zeros(dim);
        let mut y = NVec::zeros(dim);
        let mut stats = BoxCheckStats::default();
        let mut best: Option<(u64, BadPoint)> = None;
        let mut abstains = 0u32;
        let mut static_armed = true;
        let mut draws = 0u64;
        'scan: loop {
            // Ordering: Relaxed — the cursor is a pure ticket dispenser; the
            // RMW's atomicity (each index drawn exactly once) is the whole
            // invariant, and no data is published through it.
            let i = next.fetch_add(1, Ordering::Relaxed);
            // Inputs beyond the best known failure cannot change the answer;
            // the cursor only grows, so this worker is done.
            //
            // Ordering: Acquire — pairs with the AcqRel `fetch_min` below.
            // A stale read is still sound (it only widens the scanned
            // prefix; see the audit note at the declarations), so this is
            // protocol documentation, not a correctness dependency —
            // `first_bad_reduction_tolerates_relaxed` proves the downgrade
            // safe.
            if i >= total || i > first_bad.load(Ordering::Acquire) {
                break;
            }
            draws += 1;
            decode_point(i, radix, &mut x);
            let expected = f(&x);

            if let Some(plan) = &plan {
                // Symmetry-orbit reduction: skip `x` whenever some detected
                // automorphism maps it to a lexicographically smaller point
                // with the same expected output — that point's verdict (at
                // a smaller index, so inside the scanned prefix) is `x`'s
                // verdict.  The lexicographically-first bad point maps only
                // to larger-or-equal bad points, so it is never skipped and
                // the winner is unchanged.
                for p in &plan.perms {
                    for k in 0..dim {
                        y[k] = x[p[k]];
                    }
                    if y.as_slice() < x.as_slice() && f(&y) == expected {
                        stats.symmetry_skipped += 1;
                        continue 'scan;
                    }
                }
            }
            stats.evaluated += 1;

            let passes = match mode {
                EngineMode::Reference => {
                    let outcome = engine.check(&x, expected, max_configurations);
                    if matches!(&outcome, Ok(v) if v.is_correct()) {
                        true
                    } else {
                        best = Some((i, BadPoint::Full(outcome)));
                        // Ordering: AcqRel — see the audit note at the
                        // declarations: fetch_min atomicity keeps the bound
                        // monotone; the release half is protocol
                        // documentation for the Acquire load above.
                        first_bad.fetch_min(i, Ordering::AcqRel);
                        break;
                    }
                }
                EngineMode::Baseline => {
                    match engine.static_verdict(&x, expected, max_configurations) {
                        Some(StaticOutcome::Pass) => {
                            stats.static_pass += 1;
                            true
                        }
                        Some(StaticOutcome::Fail) => {
                            stats.static_fail += 1;
                            false
                        }
                        None => {
                            stats.decided += 1;
                            // An error (it would recur identically at
                            // materialization) counts as not passing.
                            engine
                                .decide(&x, expected, max_configurations)
                                .unwrap_or(false)
                        }
                    }
                }
                EngineMode::Incremental => {
                    let static_outcome = if static_armed {
                        engine.static_verdict(&x, expected, max_configurations)
                    } else {
                        None
                    };
                    match static_outcome {
                        Some(StaticOutcome::Pass) => {
                            stats.static_pass += 1;
                            abstains = 0;
                            true
                        }
                        Some(StaticOutcome::Fail) => {
                            stats.static_fail += 1;
                            abstains = 0;
                            false
                        }
                        None => {
                            if static_armed {
                                abstains += 1;
                                if abstains >= STATIC_ABSTAIN_CUTOFF {
                                    static_armed = false;
                                }
                            }
                            let plan = plan.as_ref().expect("incremental builds a plan");
                            engine
                                .decide_incremental(
                                    &x,
                                    expected,
                                    max_configurations,
                                    plan,
                                    cache.as_mut(),
                                    &mut pending,
                                    &mut stats,
                                )
                                .unwrap_or(false)
                        }
                    }
                }
            };
            if !passes {
                best = Some((i, BadPoint::Deferred));
                // Ordering: AcqRel — same audit note as the Reference-mode
                // reduction above.
                first_bad.fetch_min(i, Ordering::AcqRel);
                break;
            }
        }
        if let Some(cache) = &cache {
            stats.cache_lookups = cache.lookups;
            stats.cache_hits = cache.hits;
            stats.cache_entries = u64::try_from(cache.len()).expect("usize fits u64");
        }
        // One registry flush per worker, after the scan: the hot loop above
        // only touches local counters.
        if crn_obs::enabled() {
            let (collisions, grows) = engine.arena_metrics();
            crn_obs::add("model.arena.collisions", collisions);
            crn_obs::add("model.arena.grows", grows);
            crn_obs::observe("model.box.worker_draws", draws);
        }
        (best, stats)
    };

    let mut results: Vec<(Option<(u64, BadPoint)>, BoxCheckStats)> = if workers == 1 {
        vec![run_worker()]
    } else {
        let parent = crn_obs::SpanPath::current();
        crn_sync::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let parent = parent.clone();
                    scope.spawn(move || {
                        let _adopted = parent.adopt();
                        let _span = crn_obs::span("worker");
                        run_worker()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker does not panic"))
                .collect()
        })
    };

    let mut stats = BoxCheckStats {
        points: total,
        ..BoxCheckStats::default()
    };
    let mut winner: Option<(u64, BadPoint)> = None;
    for (best, worker_stats) in results.drain(..) {
        stats.merge(&worker_stats);
        if let Some((i, bad)) = best {
            if winner.as_ref().map_or(true, |&(w, _)| i < w) {
                winner = Some((i, bad));
            }
        }
    }
    publish_sweep_metrics(&stats, workers);

    let outcome = match winner {
        None => return (Ok(None), stats),
        Some((_, BadPoint::Full(outcome))) => outcome,
        Some((i, BadPoint::Deferred)) => {
            // Materialize the winning bad point into the exact outcome the
            // reference scan would have produced at this input.
            let mut x = NVec::zeros(dim);
            decode_point(i, radix, &mut x);
            let outcome = make_engine().check(&x, f(&x), max_configurations);
            debug_assert!(
                !matches!(&outcome, Ok(v) if v.is_correct()),
                "a deferred bad input passed the full check"
            );
            outcome
        }
    };
    let result = match outcome {
        Ok(verdict) => Ok(Some(verdict)),
        Err(e) => Err(e),
    };
    (result, stats)
}

/// Publishes one sweep's merged counters into the observability registry
/// (names under `model.box.*` / `model.memo.*`); no-op unless profiling is
/// enabled.  Counts mirror [`BoxCheckStats`] and accumulate across sweeps.
fn publish_sweep_metrics(stats: &BoxCheckStats, workers: usize) {
    if !crn_obs::enabled() {
        return;
    }
    crn_obs::add("model.box.sweeps", 1);
    crn_obs::add("model.box.points", stats.points);
    crn_obs::add("model.box.evaluated", stats.evaluated);
    crn_obs::add("model.box.symmetry_skipped", stats.symmetry_skipped);
    crn_obs::add("model.box.static_pass", stats.static_pass);
    crn_obs::add("model.box.static_fail", stats.static_fail);
    crn_obs::add("model.box.decided", stats.decided);
    crn_obs::add("model.box.cache_served", stats.cache_served);
    crn_obs::add("model.box.configs_explored", stats.configs_explored);
    crn_obs::add("model.memo.lookups", stats.cache_lookups);
    crn_obs::add("model.memo.hits", stats.cache_hits);
    crn_obs::add("model.memo.publish_suppressed", stats.publish_suppressed);
    crn_obs::gauge_max("model.memo.entries", stats.cache_entries);
    crn_obs::gauge_max(
        "model.box.workers",
        u64::try_from(workers).unwrap_or(u64::MAX),
    );
}

/// The default shard width: one worker per available core, capped by the
/// number of inputs.
pub(super) fn default_workers() -> usize {
    crn_sync::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_matches_box_iter() {
        for (dim, bound) in [(1usize, 5u64), (2, 3), (3, 2), (2, 0)] {
            let radix = bound + 1;
            let mut x = NVec::zeros(dim);
            for (i, point) in NVec::box_iter(dim, bound).enumerate() {
                decode_point(u64::try_from(i).unwrap(), radix, &mut x);
                assert_eq!(x, point, "index {i} of [0,{bound}]^{dim}");
            }
            assert_eq!(
                box_point_count(dim, bound),
                u64::try_from(NVec::box_iter(dim, bound).count()).unwrap()
            );
        }
    }

    #[test]
    fn box_point_count_saturates() {
        assert_eq!(box_point_count(0, 7), 1);
        assert_eq!(box_point_count(4, u64::MAX), u64::MAX);
        assert_eq!(box_point_count(64, 2), u64::MAX);
    }
}
