//! Parallel box checking.
//!
//! `check_on_box` enumerates the inputs of `[0, bound]^d` in lexicographic
//! order and shards them across scoped worker threads (the vendored stubs
//! have no rayon, so the pool is a plain `std::thread::scope` with an atomic
//! work-stealing cursor).  The result is deterministic regardless of thread
//! interleaving: every worker records the index of any failing (or erroring)
//! input it sees, indices past the best-known failure are skipped, and the
//! verdict returned is the one at the smallest index — exactly what the
//! sequential loop would have produced.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crn_numeric::NVec;

use crate::error::CrnError;
use crate::function::FunctionCrn;

use super::engine::{StaticOutcome, VerdictEngine};
use super::StableComputationVerdict;

/// One input's outcome: the check failed, or the search errored out.
type BoxOutcome = Result<StableComputationVerdict, CrnError>;

/// A worker's record of one non-passing input: the full outcome, or a bad
/// point left unmaterialized (statically refuted, or rejected by the fused
/// decision pass) — only the lexicographically smallest bad input is ever
/// expanded into a real verdict.
enum BadPoint {
    Full(BoxOutcome),
    Deferred,
}

/// The default shard grants each worker at least this many inputs, so a box
/// never spawns threads whose startup cost dwarfs their microsecond-scale
/// share of the work.  An explicit worker count via
/// [`super::check_on_box_with_workers`] overrides this.
pub(super) const MIN_POINTS_PER_WORKER: u64 = 8;

/// Checks every input of the box on `workers` threads, returning the verdict
/// (or error) of the lexicographically-first input that does not pass.
///
/// With `pruned` set, each worker consults the engine's static verdict
/// first: statically-passing inputs are skipped without building an arena,
/// and statically-refuted inputs only record their index.  Points the
/// analysis abstains on run the engine's fused *decision* pass — the same
/// exploration, but a single Tarjan-fused traversal instead of the full
/// verdict construction — and likewise record only their index when bad.
/// The one bad index that wins the race is re-checked in full, so the
/// returned outcome is bit-identical to the unpruned scan.
pub(super) fn check_on_box_sharded(
    crn: &FunctionCrn,
    f: &(impl Fn(&NVec) -> u64 + Sync),
    bound: u64,
    max_configurations: usize,
    workers: usize,
    pruned: bool,
) -> Result<Option<StableComputationVerdict>, CrnError> {
    // The static analysis depends only on the CRN: run it once for the whole
    // box and hand every worker engine a shared handle.
    let shared_analysis = pruned.then(|| VerdictEngine::analyze(crn));
    let make_engine = || match &shared_analysis {
        Some(analysis) => VerdictEngine::with_analysis(crn, Some(Arc::clone(analysis))),
        None => VerdictEngine::reference(crn),
    };
    let points = NVec::enumerate_box(crn.dim(), bound);
    let workers = workers.clamp(1, points.len().max(1));
    if workers == 1 {
        // Degenerate shard: the plain sequential loop on one reused engine.
        // The first input that does not pass is necessarily the scan's
        // answer, so the full check it falls through to is the
        // materialization.
        let mut engine = make_engine();
        for x in &points {
            let expected = f(x);
            if pruned {
                match engine.static_verdict(x, expected, max_configurations) {
                    Some(StaticOutcome::Pass) => continue,
                    Some(StaticOutcome::Fail) => {}
                    None => {
                        if engine.decide(x, expected, max_configurations)? {
                            continue;
                        }
                    }
                }
            }
            let verdict = engine.check(x, expected, max_configurations)?;
            if !verdict.is_correct() {
                return Ok(Some(verdict));
            }
            debug_assert!(
                !pruned,
                "an input rejected by the decision pass passed in full"
            );
        }
        return Ok(None);
    }

    let next = AtomicUsize::new(0);
    let first_bad = AtomicUsize::new(usize::MAX);
    let found: Mutex<Vec<(usize, BadPoint)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut engine = make_engine();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    // Inputs beyond the best known failure cannot change the
                    // answer; the cursor only grows, so this worker is done.
                    if i >= points.len() || i > first_bad.load(Ordering::Acquire) {
                        break;
                    }
                    let x = &points[i];
                    let expected = f(x);
                    if pruned {
                        let passes = match engine.static_verdict(x, expected, max_configurations) {
                            Some(StaticOutcome::Pass) => true,
                            Some(StaticOutcome::Fail) => false,
                            // An error (it would recur identically at
                            // materialization) counts as not passing.
                            None => engine
                                .decide(x, expected, max_configurations)
                                .unwrap_or(false),
                        };
                        if !passes {
                            first_bad.fetch_min(i, Ordering::AcqRel);
                            found
                                .lock()
                                .expect("no panics hold the lock")
                                .push((i, BadPoint::Deferred));
                        }
                        continue;
                    }
                    let outcome = engine.check(x, expected, max_configurations);
                    let passes = matches!(&outcome, Ok(v) if v.is_correct());
                    if !passes {
                        first_bad.fetch_min(i, Ordering::AcqRel);
                        found
                            .lock()
                            .expect("no panics hold the lock")
                            .push((i, BadPoint::Full(outcome)));
                    }
                }
            });
        }
    });

    let mut found = found.into_inner().expect("no panics hold the lock");
    found.sort_by_key(|&(i, _)| i);
    let outcome = match found.into_iter().next() {
        None => return Ok(None),
        Some((_, BadPoint::Full(outcome))) => outcome,
        Some((i, BadPoint::Deferred)) => {
            // Materialize the winning bad point into the exact outcome the
            // unpruned scan would have produced at this input.
            let x = &points[i];
            let outcome = make_engine().check(x, f(x), max_configurations);
            debug_assert!(
                !matches!(&outcome, Ok(v) if v.is_correct()),
                "a deferred bad input passed the full check"
            );
            outcome
        }
    };
    match outcome {
        Ok(verdict) => Ok(Some(verdict)),
        Err(e) => Err(e),
    }
}

/// The default shard width: one worker per available core, capped by the
/// number of inputs.
pub(super) fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}
