//! Parallel box checking.
//!
//! `check_on_box` enumerates the inputs of `[0, bound]^d` in lexicographic
//! order and shards them across scoped worker threads (the vendored stubs
//! have no rayon, so the pool is a plain `std::thread::scope` with an atomic
//! work-stealing cursor).  The result is deterministic regardless of thread
//! interleaving: every worker records the index of any failing (or erroring)
//! input it sees, indices past the best-known failure are skipped, and the
//! verdict returned is the one at the smallest index — exactly what the
//! sequential loop would have produced.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crn_numeric::NVec;

use crate::error::CrnError;
use crate::function::FunctionCrn;

use super::engine::VerdictEngine;
use super::StableComputationVerdict;

/// One input's outcome: the check failed, or the search errored out.
type BoxOutcome = Result<StableComputationVerdict, CrnError>;

/// The default shard grants each worker at least this many inputs, so a box
/// never spawns threads whose startup cost dwarfs their microsecond-scale
/// share of the work.  An explicit worker count via
/// [`super::check_on_box_with_workers`] overrides this.
pub(super) const MIN_POINTS_PER_WORKER: u64 = 8;

/// Checks every input of the box on `workers` threads, returning the verdict
/// (or error) of the lexicographically-first input that does not pass.
pub(super) fn check_on_box_sharded(
    crn: &FunctionCrn,
    f: &(impl Fn(&NVec) -> u64 + Sync),
    bound: u64,
    max_configurations: usize,
    workers: usize,
) -> Result<Option<StableComputationVerdict>, CrnError> {
    let points = NVec::enumerate_box(crn.dim(), bound);
    let workers = workers.clamp(1, points.len().max(1));
    if workers == 1 {
        // Degenerate shard: the plain sequential loop on one reused engine.
        let mut engine = VerdictEngine::new(crn);
        for x in &points {
            let verdict = engine.check(x, f(x), max_configurations)?;
            if !verdict.is_correct() {
                return Ok(Some(verdict));
            }
        }
        return Ok(None);
    }

    let next = AtomicUsize::new(0);
    let first_bad = AtomicUsize::new(usize::MAX);
    let found: Mutex<Vec<(usize, BoxOutcome)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut engine = VerdictEngine::new(crn);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    // Inputs beyond the best known failure cannot change the
                    // answer; the cursor only grows, so this worker is done.
                    if i >= points.len() || i > first_bad.load(Ordering::Acquire) {
                        break;
                    }
                    let x = &points[i];
                    let outcome = engine.check(x, f(x), max_configurations);
                    let passes = matches!(&outcome, Ok(v) if v.is_correct());
                    if !passes {
                        first_bad.fetch_min(i, Ordering::AcqRel);
                        found
                            .lock()
                            .expect("no panics hold the lock")
                            .push((i, outcome));
                    }
                }
            });
        }
    });

    let mut found = found.into_inner().expect("no panics hold the lock");
    found.sort_by_key(|&(i, _)| i);
    match found.into_iter().next() {
        None => Ok(None),
        Some((_, Ok(verdict))) => Ok(Some(verdict)),
        Some((_, Err(e))) => Err(e),
    }
}

/// The default shard width: one worker per available core, capped by the
/// number of inputs.
pub(super) fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}
