//! Cross-point output-set memoization for the incremental box engine.
//!
//! The set of stable output values reachable from a configuration — and
//! whether *every* configuration reachable from it can still recover one —
//! is a property of the configuration and the CRN alone: it does not depend
//! on which box point the exploration started from.  The memoizing decision
//! pass therefore summarizes every strongly connected component it finishes
//! as a [`Summary`] keyed by the configuration's *hull* code (the mixed-radix
//! code over the box-wide interval hull, so the key space is shared by every
//! point of the sweep), and later points stop expanding wherever their
//! frontier hits a summarized configuration.
//!
//! Output sets are interned in a [`SetPool`]: each distinct sorted set is
//! stored once as an `Arc<[u64]>` and handled by a small [`SetId`], with
//! memoized union/intersection so the per-component folds are `O(1)` for
//! already-seen operand pairs.  A [`SharedLog`] publishes locally discovered
//! summaries to the sweep's other workers as an append-only log drained by
//! cursor; importing re-interns the sets into the worker's own pool, so the
//! hot per-configuration path never takes a lock.
//!
//! Soundness note: summaries are only published for components whose full
//! downstream closure was explored (a Tarjan pop certifies exactly that), and
//! a run that aborts on the configuration limit discards everything it had
//! pending — a truncated exploration never populates the cache.

use crn_sync::{lock_recover, Arc, Mutex};
use std::collections::HashMap;

/// Handle of an interned output set in a [`SetPool`].  Id 0 is always the
/// empty set.
pub(super) type SetId = u32;

/// The memoized reachability summary of one strongly connected component
/// (attached to every configuration in it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) struct Summary {
    /// Largest output count anywhere in the downstream closure.
    pub(super) mx: u64,
    /// Smallest output count anywhere in the downstream closure.
    pub(super) mn: u64,
    /// The *stable-output* set: every value `o` such that some configuration
    /// in the closure is output-stable with output `o`.
    pub(super) so: SetId,
    /// The *recoverable* set: every value `o` such that **every**
    /// configuration in the closure can reach an output-stable configuration
    /// with output `o`.  The point verdict is `expected ∈ rset(start)`.
    pub(super) rset: SetId,
    /// An upper bound on the size of the downstream closure (members plus the
    /// child bounds, which may overcount shared substructure).  Lets a run
    /// that finished early through cache hits certify that the true reachable
    /// set fits the configuration limit.
    pub(super) size_bound: u64,
}

/// An interning pool of sorted `u64` sets with memoized set algebra.
pub(super) struct SetPool {
    sets: Vec<Arc<[u64]>>,
    intern: HashMap<Arc<[u64]>, SetId>,
    singletons: HashMap<u64, SetId>,
    unions: HashMap<(SetId, SetId), SetId>,
    intersections: HashMap<(SetId, SetId), SetId>,
}

/// The empty set's id in every pool.
pub(super) const EMPTY_SET: SetId = 0;

impl SetPool {
    pub(super) fn new() -> Self {
        let empty: Arc<[u64]> = Arc::from(Vec::new());
        let mut intern = HashMap::new();
        intern.insert(Arc::clone(&empty), EMPTY_SET);
        SetPool {
            sets: vec![empty],
            intern,
            singletons: HashMap::new(),
            unions: HashMap::new(),
            intersections: HashMap::new(),
        }
    }

    /// Interns an already-shared sorted set (an import from another worker),
    /// reusing the allocation.
    pub(super) fn intern_shared(&mut self, set: &Arc<[u64]>) -> SetId {
        debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "sets are sorted");
        if let Some(&id) = self.intern.get(set) {
            return id;
        }
        let id = SetId::try_from(self.sets.len()).expect("set pool stays below 2^32 sets");
        self.sets.push(Arc::clone(set));
        self.intern.insert(Arc::clone(set), id);
        id
    }

    fn intern_vec(&mut self, set: Vec<u64>) -> SetId {
        self.intern_shared(&Arc::from(set))
    }

    /// The members of `id`, sorted ascending.
    pub(super) fn get(&self, id: SetId) -> &Arc<[u64]> {
        &self.sets[id as usize]
    }

    /// Whether `value` is a member of `id`.
    pub(super) fn contains(&self, id: SetId, value: u64) -> bool {
        self.sets[id as usize].binary_search(&value).is_ok()
    }

    /// The one-element set `{value}`.
    pub(super) fn singleton(&mut self, value: u64) -> SetId {
        if let Some(&id) = self.singletons.get(&value) {
            return id;
        }
        let id = self.intern_vec(vec![value]);
        self.singletons.insert(value, id);
        id
    }

    /// The union `a ∪ b`.
    pub(super) fn union(&mut self, a: SetId, b: SetId) -> SetId {
        if a == b || b == EMPTY_SET {
            return a;
        }
        if a == EMPTY_SET {
            return b;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&id) = self.unions.get(&key) {
            return id;
        }
        let merged = merge_sorted(&self.sets[a as usize], &self.sets[b as usize], true);
        let id = self.intern_vec(merged);
        self.unions.insert(key, id);
        id
    }

    /// The intersection `a ∩ b`.
    pub(super) fn intersect(&mut self, a: SetId, b: SetId) -> SetId {
        if a == b {
            return a;
        }
        if a == EMPTY_SET || b == EMPTY_SET {
            return EMPTY_SET;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&id) = self.intersections.get(&key) {
            return id;
        }
        let merged = merge_sorted(&self.sets[a as usize], &self.sets[b as usize], false);
        let id = self.intern_vec(merged);
        self.intersections.insert(key, id);
        id
    }
}

/// Merges two sorted slices into their union (`keep_single`) or intersection.
fn merge_sorted(a: &[u64], b: &[u64], keep_single: bool) -> Vec<u64> {
    let mut out = Vec::with_capacity(if keep_single { a.len() + b.len() } else { 0 });
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                if keep_single {
                    out.push(a[i]);
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if keep_single {
                    out.push(b[j]);
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    if keep_single {
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
    }
    out
}

/// A summary with its sets materialized for cross-worker transport
/// (`SetId`s are pool-local).
#[derive(Clone)]
struct SharedSummary {
    mx: u64,
    mn: u64,
    so: Arc<[u64]>,
    rset: Arc<[u64]>,
    size_bound: u64,
}

/// The sweep-wide summary exchange: an append-only log each worker drains by
/// cursor before starting a point, so the per-configuration hot path stays
/// lock-free.
pub(super) struct SharedLog {
    entries: Mutex<Vec<(u64, SharedSummary)>>,
}

impl SharedLog {
    pub(super) fn new() -> Self {
        SharedLog {
            entries: Mutex::new(Vec::new()),
        }
    }
}

/// Hard cap on locally cached summaries; once full, new summaries are simply
/// not recorded (the decision passes stay correct, later points just
/// re-explore).
const CACHE_ENTRY_CAP: usize = 1 << 20;

/// One worker's view of the cross-point cache: the hull-code → summary map,
/// the worker's own [`SetPool`], and its drain cursor into the shared log.
pub(super) struct MemoCache {
    pub(super) pool: SetPool,
    map: HashMap<u64, Summary>,
    cursor: usize,
    /// Total lookups and hits, for the sweep's observability counters.
    pub(super) lookups: u64,
    pub(super) hits: u64,
}

impl MemoCache {
    pub(super) fn new() -> Self {
        MemoCache {
            pool: SetPool::new(),
            map: HashMap::new(),
            cursor: 0,
            lookups: 0,
            hits: 0,
        }
    }

    /// The cached summary of `code`, if any; counts toward the hit-rate
    /// statistics.
    pub(super) fn lookup(&mut self, code: u64) -> Option<Summary> {
        self.lookups += 1;
        let found = self.map.get(&code).copied();
        if found.is_some() {
            self.hits += 1;
        }
        found
    }

    /// Records a summary locally (subject to the entry cap).
    pub(super) fn insert(&mut self, code: u64, summary: Summary) {
        if self.map.len() < CACHE_ENTRY_CAP {
            self.map.insert(code, summary);
        }
    }

    /// The number of locally cached summaries.
    pub(super) fn len(&self) -> usize {
        self.map.len()
    }

    /// Publishes locally discovered summaries to the other workers.  The
    /// worker's own cursor advances past its contribution, so it never
    /// re-imports what it exported.
    pub(super) fn export(&mut self, log: &SharedLog, batch: &[(u64, Summary)]) {
        if batch.is_empty() {
            return;
        }
        let shared: Vec<(u64, SharedSummary)> = batch
            .iter()
            .map(|&(code, s)| {
                (
                    code,
                    SharedSummary {
                        mx: s.mx,
                        mn: s.mn,
                        so: Arc::clone(self.pool.get(s.so)),
                        rset: Arc::clone(self.pool.get(s.rset)),
                        size_bound: s.size_bound,
                    },
                )
            })
            .collect();
        // Poisoning: `lock_recover` per the workspace policy (crn_sync crate
        // docs) — the log is append-only, so a torn critical section can at
        // worst lose the panicking thread's batch, never corrupt an entry.
        // The publish-only-complete-summaries invariant is model-checked by
        // `memo_truncation_never_publishes` (crn-sync tests/model.rs).
        let mut entries = lock_recover(&log.entries);
        if self.cursor == entries.len() {
            self.cursor += shared.len();
        }
        entries.extend(shared);
    }

    /// Drains summaries other workers published since the last import,
    /// re-interning their sets into this worker's pool.
    pub(super) fn import(&mut self, log: &SharedLog) {
        let fresh: Vec<(u64, SharedSummary)> = {
            let entries = lock_recover(&log.entries);
            if self.cursor >= entries.len() {
                return;
            }
            let fresh = entries[self.cursor..].to_vec();
            self.cursor = entries.len();
            fresh
        };
        for (code, s) in fresh {
            if self.map.len() >= CACHE_ENTRY_CAP {
                break;
            }
            let summary = Summary {
                mx: s.mx,
                mn: s.mn,
                so: self.pool.intern_shared(&s.so),
                rset: self.pool.intern_shared(&s.rset),
                size_bound: s.size_bound,
            };
            self.map.entry(code).or_insert(summary);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_algebra_interns_and_memoizes() {
        let mut pool = SetPool::new();
        let a = pool.singleton(3);
        let b = pool.singleton(5);
        let ab = pool.union(a, b);
        assert_eq!(pool.get(ab).as_ref(), &[3, 5]);
        assert_eq!(pool.union(b, a), ab, "union is commutative and memoized");
        assert_eq!(pool.intersect(ab, a), a);
        assert_eq!(pool.intersect(a, b), EMPTY_SET);
        assert!(pool.contains(ab, 5));
        assert!(!pool.contains(ab, 4));
        assert_eq!(pool.union(ab, EMPTY_SET), ab);
    }

    #[test]
    fn shared_log_round_trips_summaries() {
        let log = SharedLog::new();
        let mut producer = MemoCache::new();
        let so = producer.pool.singleton(2);
        let summary = Summary {
            mx: 2,
            mn: 0,
            so,
            rset: so,
            size_bound: 7,
        };
        producer.insert(41, summary);
        producer.export(&log, &[(41, summary)]);

        let mut consumer = MemoCache::new();
        consumer.import(&log);
        let got = consumer.lookup(41).expect("imported");
        assert_eq!(got.mx, 2);
        assert_eq!(got.size_bound, 7);
        assert_eq!(consumer.pool.get(got.rset).as_ref(), &[2]);
        assert_eq!(consumer.lookups, 1);
        assert_eq!(consumer.hits, 1);

        // The producer's cursor skipped its own contribution.
        producer.import(&log);
        assert_eq!(producer.len(), 1);
    }
}
