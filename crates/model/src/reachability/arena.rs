//! Interned dense storage for explored configurations.
//!
//! The breadth-first exploration of the seed engine kept every configuration
//! twice (once in the result vector, once as a `HashMap` key) and cloned a
//! `BTreeMap` per examined edge.  The arena replaces both: each configuration
//! is a dense count vector of fixed stride (one slot per species), all vectors
//! live contiguously in a single allocation, and an open-addressing hash index
//! maps count vectors back to their dense arena ids in O(1) expected time
//! without a second copy of the keys.

use crate::config::Configuration;
use crate::species::Species;

/// Marker for an empty slot in the open-addressing index.
const EMPTY: usize = usize::MAX;

/// FNV-1a over the `u64` words of a count vector, with an extra avalanche
/// step so that low-entropy counts (almost all configurations are small
/// integers) still spread across the table.
fn hash_counts(counts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in counts {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= h >> 29;
    }
    h ^ (h >> 32)
}

/// An arena of interned configurations over a fixed species stride.
///
/// Configurations enter through one of two doors per exploration: the hash
/// index ([`insert_new`](ConfigArena::insert_new) /
/// [`lookup`](ConfigArena::lookup)), or — when the engine has proven a
/// perfect mixed-radix index over the reachable box —
/// [`push_unindexed`](ConfigArena::push_unindexed), which stores the counts
/// without hashing at all (the direct index owns deduplication).  The two
/// modes must not be mixed within one exploration.
#[derive(Debug, Clone)]
pub(crate) struct ConfigArena {
    stride: usize,
    /// The number of stored configurations (`hashes` tracks it only in hash
    /// mode; unindexed pushes grow `len` without touching the index).
    len: usize,
    /// Concatenated count vectors; configuration `i` occupies
    /// `counts[i * stride .. (i + 1) * stride]`.
    counts: Vec<u64>,
    /// Cached hash of every stored configuration (avoids rehashing on probe
    /// comparisons and on table growth).
    hashes: Vec<u64>,
    /// Open-addressing table of arena ids; length is a power of two.
    slots: Vec<usize>,
    /// Probe steps past the home slot across every placement, cumulative over
    /// the arena's lifetime (resets do not clear it): the dedup-collision
    /// metric the observability layer reports.
    collisions: u64,
    /// Slot-table doublings over the arena's lifetime.
    grows: u64,
}

impl ConfigArena {
    /// Creates an empty arena for count vectors of length `stride`.
    pub(crate) fn new(stride: usize) -> Self {
        ConfigArena {
            stride,
            len: 0,
            counts: Vec::new(),
            hashes: Vec::new(),
            slots: vec![EMPTY; 16],
            collisions: 0,
            grows: 0,
        }
    }

    /// The species stride (count-vector length) of this arena.
    pub(crate) fn stride(&self) -> usize {
        self.stride
    }

    /// Empties the arena for a fresh exploration over `stride` species,
    /// keeping every allocation for reuse.
    pub(crate) fn reset(&mut self, stride: usize) {
        self.stride = stride;
        self.len = 0;
        self.counts.clear();
        self.hashes.clear();
        self.slots.iter_mut().for_each(|s| *s = EMPTY);
    }

    /// The number of stored configurations.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Stores `v` without entering it into the hash index; the caller owns
    /// deduplication (the direct-indexed exploration mode).  Must not be
    /// mixed with [`insert_new`](ConfigArena::insert_new) in one exploration.
    pub(crate) fn push_unindexed(&mut self, v: &[u64]) -> usize {
        debug_assert_eq!(v.len(), self.stride);
        debug_assert!(self.hashes.is_empty(), "mixed indexed and unindexed use");
        let id = self.len;
        self.counts.extend_from_slice(v);
        self.len += 1;
        id
    }

    /// The count vector of configuration `id`.
    pub(crate) fn get(&self, id: usize) -> &[u64] {
        &self.counts[id * self.stride..(id + 1) * self.stride]
    }

    /// The arena id of `v`, if it has been interned.
    pub(crate) fn lookup(&self, v: &[u64]) -> Option<usize> {
        debug_assert_eq!(v.len(), self.stride);
        let hash = hash_counts(v);
        let mask = self.slots.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let id = self.slots[slot];
            if id == EMPTY {
                return None;
            }
            if self.hashes[id] == hash && self.get(id) == v {
                return Some(id);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Interns `v`, which the caller has established is not present, and
    /// returns its new arena id.
    pub(crate) fn insert_new(&mut self, v: &[u64]) -> usize {
        debug_assert_eq!(v.len(), self.stride);
        debug_assert!(self.lookup(v).is_none(), "insert_new of a present vector");
        debug_assert_eq!(
            self.hashes.len(),
            self.len,
            "mixed indexed and unindexed use"
        );
        let id = self.len;
        self.counts.extend_from_slice(v);
        self.hashes.push(hash_counts(v));
        self.len += 1;
        // Grow at 7/8 load so probe chains stay short.
        if (self.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        self.place(id);
        id
    }

    /// Rebuilds the slot table at twice the capacity from the cached hashes.
    fn grow(&mut self) {
        self.grows += 1;
        let new_len = self.slots.len() * 2;
        self.slots.clear();
        self.slots.resize(new_len, EMPTY);
        for id in 0..self.len() {
            self.place(id);
        }
    }

    /// Writes `id` into the first free slot of its probe chain.
    fn place(&mut self, id: usize) {
        let mask = self.slots.len() - 1;
        let mut slot = (self.hashes[id] as usize) & mask;
        while self.slots[slot] != EMPTY {
            self.collisions += 1;
            slot = (slot + 1) & mask;
        }
        self.slots[slot] = id;
    }

    /// `(collisions, grows)` accumulated over the arena's lifetime — probe
    /// steps past the home slot on placement, and slot-table doublings.
    pub(crate) fn metrics(&self) -> (u64, u64) {
        (self.collisions, self.grows)
    }

    /// Materializes configuration `id` as a sparse [`Configuration`].
    pub(crate) fn sparse(&self, id: usize) -> Configuration {
        Configuration::from_counts(
            self.get(id)
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (Species(i), c)),
        )
    }
}

/// Lowers a sparse configuration onto a dense count vector of length
/// `stride`, or `None` if it holds a positive count of a species outside the
/// stride (such a configuration cannot have been interned).
pub(crate) fn to_dense(config: &Configuration, stride: usize) -> Option<Vec<u64>> {
    let mut v = vec![0u64; stride];
    for (s, c) in config.iter() {
        if s.index() >= stride {
            return None;
        }
        v[s.index()] = c;
    }
    Some(v)
}

/// The smallest stride covering both a base stride (usually
/// [`crate::compiled::CompiledCrn::stride`], which spans the CRN's species
/// set and its reactions) and a start configuration (which may, through the
/// public API, mention further species).
pub(crate) fn stride_for(base: usize, start: &Configuration) -> usize {
    start
        .iter()
        .map(|(s, _)| s.index() + 1)
        .max()
        .unwrap_or(0)
        .max(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_lookup_roundtrip() {
        let mut arena = ConfigArena::new(3);
        assert_eq!(arena.lookup(&[1, 0, 2]), None);
        let a = arena.insert_new(&[1, 0, 2]);
        let b = arena.insert_new(&[0, 0, 0]);
        assert_ne!(a, b);
        assert_eq!(arena.lookup(&[1, 0, 2]), Some(a));
        assert_eq!(arena.lookup(&[0, 0, 0]), Some(b));
        assert_eq!(arena.lookup(&[2, 0, 1]), None);
        assert_eq!(arena.get(a), &[1, 0, 2]);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn index_survives_growth() {
        let mut arena = ConfigArena::new(2);
        for i in 0..500u64 {
            arena.insert_new(&[i, i * 7 + 1]);
        }
        for i in 0..500u64 {
            assert_eq!(arena.lookup(&[i, i * 7 + 1]), Some(i as usize));
        }
        assert_eq!(arena.lookup(&[500, 1]), None);
    }

    #[test]
    fn unindexed_pushes_store_without_hashing() {
        let mut arena = ConfigArena::new(2);
        let a = arena.push_unindexed(&[1, 2]);
        let b = arena.push_unindexed(&[3, 4]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(1), &[3, 4]);
        // A reset returns the arena to hash mode.
        arena.reset(2);
        assert_eq!(arena.len(), 0);
        let c = arena.insert_new(&[1, 2]);
        assert_eq!(arena.lookup(&[1, 2]), Some(c));
    }

    #[test]
    fn sparse_materialization_drops_zeros() {
        let mut arena = ConfigArena::new(3);
        let id = arena.insert_new(&[2, 0, 5]);
        let sparse = arena.sparse(id);
        assert_eq!(sparse.count(Species(0)), 2);
        assert_eq!(sparse.count(Species(1)), 0);
        assert_eq!(sparse.count(Species(2)), 5);
        assert_eq!(sparse.iter().count(), 2);
    }

    #[test]
    fn dense_conversion_rejects_out_of_stride_species() {
        let c = Configuration::from_counts(vec![(Species(0), 1), (Species(5), 2)]);
        assert_eq!(to_dense(&c, 3), None);
        assert_eq!(to_dense(&c, 6), Some(vec![1, 0, 0, 0, 0, 2]));
        assert_eq!(stride_for(3, &c), 6);
        assert_eq!(stride_for(9, &c), 9);
    }
}
