//! Exhaustive bounded reachability and stable-computation checking.
//!
//! Stable computation (Section 2.2) is a reachability property: a CRN stably
//! computes `f` on input `x` if from *every* configuration reachable from the
//! initial configuration `I_x`, a *stable* configuration with output count
//! `f(x)` remains reachable.  For the small CRNs used throughout the paper the
//! reachable configuration space is finite, so the property can be checked
//! exactly by exhaustive search; this module implements that check plus the
//! "maximum output ever reachable" query used by the impossibility witnesses
//! (Lemma 4.1 / Figure 6).
//!
//! # Engine architecture
//!
//! The checker is organised as a small subsystem:
//!
//! * [`arena`](self) (internal) — an interned **configuration arena**: dense
//!   count vectors in one allocation, with an open-addressing hash index over
//!   arena ids, so exploration never clones a sparse configuration per edge;
//! * [`CsrGraph`] — successor storage laid out in **compressed sparse row**
//!   form directly during the breadth-first exploration;
//! * [`Condensation`] — **Tarjan SCC condensation**; the three reachability
//!   queries behind a verdict (max/min reachable output, recoverability)
//!   each become one linear pass over the components in reverse topological
//!   order instead of an iterate-until-stable fixpoint;
//! * [`check_on_box`] — a **parallel driver** sharding the input box across
//!   scoped threads with a deterministic, lexicographically-first result;
//! * [`oracle`] — the seed fixpoint engine, kept as the differential-testing
//!   baseline and the comparison point of the E13 benchmark.

mod arena;
mod csr;
mod engine;
mod memo;
pub mod oracle;
mod parallel;
mod scc;
mod symmetry;

use crn_sync::OnceLock;

use serde::{Deserialize, Serialize};

use crn_numeric::NVec;

use crate::config::Configuration;
use crate::crn::Crn;
use crate::error::CrnError;
use crate::function::FunctionCrn;
use crate::species::Species;

use arena::ConfigArena;
use engine::{ExploreState, VerdictEngine};

pub use csr::CsrGraph;
pub use engine::InvariantOracle;
pub use scc::Condensation;

/// Limits for exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReachabilityLimits {
    /// Maximum number of distinct configurations to explore before giving up.
    pub max_configurations: usize,
}

impl Default for ReachabilityLimits {
    fn default() -> Self {
        ReachabilityLimits {
            max_configurations: 200_000,
        }
    }
}

/// Observability counters for one box sweep: how many points the engine
/// actually explored versus decided statically, served from the cross-point
/// cache, or skipped as symmetry replays.  Returned by
/// [`check_on_box_with_stats`] and surfaced by `crn verify --stats`.
///
/// The counters never influence verdicts; they exist so the effect of each
/// incremental layer is measurable on real sweeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct BoxCheckStats {
    /// Total number of points in the box.
    pub points: u64,
    /// Points that reached an engine pass (everything except symmetry skips).
    pub evaluated: u64,
    /// Points skipped because an input automorphism maps them to a
    /// lexicographically smaller point with the same expected output.
    pub symmetry_skipped: u64,
    /// Points decided `Pass` by the static interval analysis alone.
    pub static_pass: u64,
    /// Points decided `Fail` by the static interval analysis alone.
    pub static_fail: u64,
    /// Points settled by a decision pass (fused exploration, packed, or
    /// memoizing — including runs that populated or consulted the cache).
    pub decided: u64,
    /// Points whose decision came at least partly from cached summaries (a
    /// root-level cache hit, or a frontier that hit summarized territory).
    pub cache_served: u64,
    /// Configurations materialized across every exploration of the sweep.
    pub configs_explored: u64,
    /// Lookups into the cross-point summary cache.
    pub cache_lookups: u64,
    /// Lookups that found a summary.
    pub cache_hits: u64,
    /// Distinct summaries held by the largest per-worker cache at the end of
    /// the sweep.
    pub cache_entries: u64,
    /// Component summaries discarded unpublished because their memoizing
    /// exploration errored out (the error, not the summaries, is the
    /// exploration's result; publishing partial work could differ between
    /// worker interleavings).
    pub publish_suppressed: u64,
}

impl BoxCheckStats {
    /// The fraction of cache lookups that hit, or 0.0 for a sweep that never
    /// looked (cache disabled or no decision pass ran).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.cache_hits as f64 / self.cache_lookups as f64
            }
        }
    }

    /// Folds one worker's counters into the sweep totals.  `points` is set
    /// once by the driver, and `cache_entries` reports the largest per-worker
    /// cache (entries are duplicated across workers by the shared log, so
    /// summing would double-count).
    fn merge(&mut self, other: &BoxCheckStats) {
        self.evaluated += other.evaluated;
        self.symmetry_skipped += other.symmetry_skipped;
        self.static_pass += other.static_pass;
        self.static_fail += other.static_fail;
        self.decided += other.decided;
        self.cache_served += other.cache_served;
        self.configs_explored += other.configs_explored;
        self.cache_lookups += other.cache_lookups;
        self.cache_hits += other.cache_hits;
        self.cache_entries = self.cache_entries.max(other.cache_entries);
        self.publish_suppressed += other.publish_suppressed;
    }
}

/// The reachability graph over the configurations reachable from a start
/// configuration.
///
/// Configurations live in a dense interned arena; sparse [`Configuration`]
/// values are materialized lazily, only if [`configurations`] is called.
///
/// [`configurations`]: ReachabilityGraph::configurations
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    arena: ConfigArena,
    csr: CsrGraph,
    sparse: OnceLock<Vec<Configuration>>,
}

impl ReachabilityGraph {
    /// Explores all configurations reachable from `start` in `crn`,
    /// breadth-first.  Configuration ids are discovery (BFS) order; id 0 is
    /// `start`.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::SearchLimitExceeded`] if more than
    /// `limits.max_configurations` distinct configurations are found.
    pub fn explore(
        crn: &Crn,
        start: &Configuration,
        limits: ReachabilityLimits,
    ) -> Result<Self, CrnError> {
        let compiled = crate::compiled::CompiledCrn::compile(crn);
        let stride = arena::stride_for(compiled.stride(), start);
        let start_dense = arena::to_dense(start, stride).expect("stride covers start");
        let mut state = ExploreState::new();
        state.run(&compiled, stride, &start_dense, limits)?;
        Ok(ReachabilityGraph {
            arena: state.arena,
            csr: state.csr,
            sparse: OnceLock::new(),
        })
    }

    /// The number of distinct reachable configurations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether the graph is empty (never the case after a successful explore).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arena.len() == 0
    }

    /// All reachable configurations (index 0 is the start configuration).
    ///
    /// Materialized from the arena on first call and cached.
    #[must_use]
    pub fn configurations(&self) -> &[Configuration] {
        self.sparse.get_or_init(|| {
            (0..self.arena.len())
                .map(|i| self.arena.sparse(i))
                .collect()
        })
    }

    /// Whether `target` is reachable from the start configuration.
    ///
    /// An O(1) expected-time query through the arena's hash index, which stays
    /// alive after [`explore`](ReachabilityGraph::explore).
    #[must_use]
    pub fn contains(&self, target: &Configuration) -> bool {
        match arena::to_dense(target, self.arena.stride()) {
            Some(dense) => self.arena.lookup(&dense).is_some(),
            // A positive count of a species outside the explored stride can
            // never have been interned.
            None => false,
        }
    }

    /// The successors of configuration `id`, in discovery order.
    #[must_use]
    pub fn successors(&self, id: usize) -> &[usize] {
        self.csr.successors(id)
    }

    /// The CSR successor structure of the graph.
    #[must_use]
    pub fn graph(&self) -> &CsrGraph {
        &self.csr
    }

    /// The Tarjan condensation of the graph (one linear pass).
    #[must_use]
    pub fn condensation(&self) -> Condensation {
        Condensation::of(&self.csr)
    }

    /// The count of `species` in every reachable configuration, by id.
    #[must_use]
    pub fn species_counts(&self, species: Species) -> Vec<u64> {
        let idx = species.index();
        if idx >= self.arena.stride() {
            return vec![0; self.arena.len()];
        }
        (0..self.arena.len())
            .map(|i| self.arena.get(i)[idx])
            .collect()
    }
}

/// The result of checking whether a CRN stably computes a value on one input.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StableComputationVerdict {
    /// The input that was checked.
    pub input: NVec,
    /// The expected output `f(x)`.
    pub expected_output: u64,
    /// Whether the CRN stably computes `f(x)` on this input.
    pub correct: bool,
    /// The number of distinct reachable configurations explored.
    pub reachable_configurations: usize,
    /// The largest output count in any reachable configuration.  A value
    /// greater than `expected_output` in an output-oblivious CRN is a proof of
    /// incorrectness (output can never be consumed again).
    pub max_output_reachable: u64,
    /// The set of output values of stable reachable configurations.
    pub stable_outputs: Vec<u64>,
    /// If incorrect, a human-readable reason.
    pub failure: Option<String>,
}

impl StableComputationVerdict {
    /// Whether the CRN stably computes the expected value on this input.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.correct
    }
}

/// Checks whether `crn` stably computes `expected_output` on input `x` by
/// exhaustive bounded reachability.
///
/// One BFS exploration plus one Tarjan condensation answer all three
/// reachability queries (max/min reachable output and recoverability) in time
/// linear in the explored graph.
///
/// # Errors
///
/// Returns [`CrnError::DimensionMismatch`] for an input of the wrong arity and
/// [`CrnError::SearchLimitExceeded`] if the reachable space exceeds
/// `max_configurations`.
pub fn check_stable_computation(
    crn: &FunctionCrn,
    x: &NVec,
    expected_output: u64,
    max_configurations: usize,
) -> Result<StableComputationVerdict, CrnError> {
    VerdictEngine::new(crn).check(x, expected_output, max_configurations)
}

/// Checks stable computation of `f` on every input in the box `[0, bound]^d`,
/// sharding the inputs across worker threads (up to one per available core,
/// with each worker granted enough inputs to amortize its spawn cost).
///
/// The scan runs the *incremental* box engine: on top of the static interval
/// pruning and direct-indexed exploration of the analysis-pruned engine, it
/// skips inputs whose symmetry orbit already contains a checked
/// representative, memoizes per-component output-set summaries across box
/// points (keyed by the box-wide hull code, shared across workers), and for
/// certified-acyclic CRNs on small hulls explores through a packed byte
/// encoding — one `u64` per configuration.  Box points are decoded from a
/// mixed-radix index on demand, so the sweep allocates `O(1)` memory in the
/// box size.  The result is nonetheless bit-identical to
/// [`check_on_box_reference`] — the first failing verdict in lexicographic
/// input order, the same one a sequential unpruned scan would return, byte
/// identical failure messages and errors included — or `Ok(None)` if all
/// inputs pass.
///
/// # Errors
///
/// Propagates the errors of [`check_stable_computation`]; when several inputs
/// fail or error, the outcome of the lexicographically-first one wins.
pub fn check_on_box(
    crn: &FunctionCrn,
    f: impl Fn(&NVec) -> u64 + Sync,
    bound: u64,
    max_configurations: usize,
) -> Result<Option<StableComputationVerdict>, CrnError> {
    let workers = default_box_workers(crn.dim(), bound);
    parallel::check_on_box_sharded(
        crn,
        &f,
        bound,
        max_configurations,
        workers,
        parallel::EngineMode::Incremental,
    )
    .0
}

/// [`check_on_box`] with an explicit worker-thread count (mainly for tests
/// and benchmarks; `workers == 1` runs the plain sequential scan).
///
/// # Errors
///
/// Propagates the errors of [`check_stable_computation`] exactly as
/// [`check_on_box`] does.
pub fn check_on_box_with_workers(
    crn: &FunctionCrn,
    f: impl Fn(&NVec) -> u64 + Sync,
    bound: u64,
    max_configurations: usize,
    workers: usize,
) -> Result<Option<StableComputationVerdict>, CrnError> {
    parallel::check_on_box_sharded(
        crn,
        &f,
        bound,
        max_configurations,
        workers,
        parallel::EngineMode::Incremental,
    )
    .0
}

/// [`check_on_box`] returning the sweep's [`BoxCheckStats`] alongside the
/// outcome, with the default worker count.
pub fn check_on_box_stats(
    crn: &FunctionCrn,
    f: impl Fn(&NVec) -> u64 + Sync,
    bound: u64,
    max_configurations: usize,
) -> (
    Result<Option<StableComputationVerdict>, CrnError>,
    BoxCheckStats,
) {
    let workers = default_box_workers(crn.dim(), bound);
    check_on_box_with_stats(crn, f, bound, max_configurations, workers)
}

/// [`check_on_box`] returning the sweep's [`BoxCheckStats`] alongside the
/// outcome: how many points the engine evaluated, decided statically, served
/// from the cross-point cache, or skipped as symmetry replays.  The outcome
/// is exactly that of [`check_on_box_with_workers`] with the same arguments.
pub fn check_on_box_with_stats(
    crn: &FunctionCrn,
    f: impl Fn(&NVec) -> u64 + Sync,
    bound: u64,
    max_configurations: usize,
    workers: usize,
) -> (
    Result<Option<StableComputationVerdict>, CrnError>,
    BoxCheckStats,
) {
    parallel::check_on_box_sharded(
        crn,
        &f,
        bound,
        max_configurations,
        workers,
        parallel::EngineMode::Incremental,
    )
}

/// [`check_on_box`] without any static analysis: every input runs the plain
/// hash-interned exploration, exactly the pre-analysis engine.  Kept as the
/// differential-testing baseline for the pruned and incremental scans (all
/// must agree bit-for-bit, errors included).
///
/// # Errors
///
/// Propagates the errors of [`check_stable_computation`] exactly as
/// [`check_on_box`] does.
pub fn check_on_box_reference(
    crn: &FunctionCrn,
    f: impl Fn(&NVec) -> u64 + Sync,
    bound: u64,
    max_configurations: usize,
) -> Result<Option<StableComputationVerdict>, CrnError> {
    let workers = default_box_workers(crn.dim(), bound);
    parallel::check_on_box_sharded(
        crn,
        &f,
        bound,
        max_configurations,
        workers,
        parallel::EngineMode::Reference,
    )
    .0
}

/// [`check_on_box_reference`] with an explicit worker-thread count, so
/// benchmarks can pin every engine to one worker and measure the purely
/// algorithmic speedup.
///
/// # Errors
///
/// Propagates the errors of [`check_stable_computation`] exactly as
/// [`check_on_box`] does.
pub fn check_on_box_reference_with_workers(
    crn: &FunctionCrn,
    f: impl Fn(&NVec) -> u64 + Sync,
    bound: u64,
    max_configurations: usize,
    workers: usize,
) -> Result<Option<StableComputationVerdict>, CrnError> {
    parallel::check_on_box_sharded(
        crn,
        &f,
        bound,
        max_configurations,
        workers,
        parallel::EngineMode::Reference,
    )
    .0
}

/// The analysis-pruned box scan *without* the incremental layers: static
/// interval pruning plus the per-point fused decision pass, exactly the
/// engine that preceded the incremental one.  Kept as the E18 benchmark
/// subject and the E19 comparison point; verdicts are bit-identical to both
/// other engines.
///
/// # Errors
///
/// Propagates the errors of [`check_stable_computation`] exactly as
/// [`check_on_box`] does.
pub fn check_on_box_baseline(
    crn: &FunctionCrn,
    f: impl Fn(&NVec) -> u64 + Sync,
    bound: u64,
    max_configurations: usize,
) -> Result<Option<StableComputationVerdict>, CrnError> {
    let workers = default_box_workers(crn.dim(), bound);
    check_on_box_baseline_with_workers(crn, f, bound, max_configurations, workers)
}

/// [`check_on_box_baseline`] with an explicit worker-thread count.
///
/// # Errors
///
/// Propagates the errors of [`check_stable_computation`] exactly as
/// [`check_on_box`] does.
pub fn check_on_box_baseline_with_workers(
    crn: &FunctionCrn,
    f: impl Fn(&NVec) -> u64 + Sync,
    bound: u64,
    max_configurations: usize,
    workers: usize,
) -> Result<Option<StableComputationVerdict>, CrnError> {
    parallel::check_on_box_sharded(
        crn,
        &f,
        bound,
        max_configurations,
        workers,
        parallel::EngineMode::Baseline,
    )
    .0
}

/// [`check_on_box_reference`] returning the sweep's [`BoxCheckStats`]
/// alongside the outcome (the reference engine fills only the counters it
/// has: points, evaluated, and symmetry skips are meaningful; the pruning
/// and cache counters stay zero).
pub fn check_on_box_reference_stats(
    crn: &FunctionCrn,
    f: impl Fn(&NVec) -> u64 + Sync,
    bound: u64,
    max_configurations: usize,
) -> (
    Result<Option<StableComputationVerdict>, CrnError>,
    BoxCheckStats,
) {
    let workers = default_box_workers(crn.dim(), bound);
    parallel::check_on_box_sharded(
        crn,
        &f,
        bound,
        max_configurations,
        workers,
        parallel::EngineMode::Reference,
    )
}

/// [`check_on_box_baseline`] returning the sweep's [`BoxCheckStats`]
/// alongside the outcome (static pruning counters are meaningful; the
/// symmetry and cache counters stay zero).
pub fn check_on_box_baseline_stats(
    crn: &FunctionCrn,
    f: impl Fn(&NVec) -> u64 + Sync,
    bound: u64,
    max_configurations: usize,
) -> (
    Result<Option<StableComputationVerdict>, CrnError>,
    BoxCheckStats,
) {
    let workers = default_box_workers(crn.dim(), bound);
    parallel::check_on_box_sharded(
        crn,
        &f,
        bound,
        max_configurations,
        workers,
        parallel::EngineMode::Baseline,
    )
}

/// One worker per available core, capped so every worker gets at least
/// [`parallel::MIN_POINTS_PER_WORKER`] box points.
fn default_box_workers(dim: usize, bound: u64) -> usize {
    let points = bound
        .saturating_add(1)
        .saturating_pow(u32::try_from(dim).unwrap_or(u32::MAX));
    parallel::default_workers()
        .min(usize::try_from(points / parallel::MIN_POINTS_PER_WORKER).unwrap_or(usize::MAX))
        .max(1)
}

/// The maximum count of the output species over every configuration reachable
/// from `I_x`.  Used to exhibit overproduction: for an output-oblivious CRN the
/// output can never shrink, so a reachable output above `f(x)` shows the CRN
/// does not stably compute `f`.
///
/// # Errors
///
/// Propagates the errors of [`ReachabilityGraph::explore`].
pub fn max_output_reachable(
    crn: &FunctionCrn,
    x: &NVec,
    max_configurations: usize,
) -> Result<u64, CrnError> {
    let start = crn.initial_configuration(x)?;
    let graph =
        ReachabilityGraph::explore(crn.crn(), &start, ReachabilityLimits { max_configurations })?;
    Ok(graph
        .species_counts(crn.output())
        .into_iter()
        .max()
        .unwrap_or(0))
}

/// Whether `target` is reachable from `start` in `crn`, with conservation-law
/// refutation before exploration.
///
/// The query first tries two static refutations: (a) species untouched by
/// every reaction must have identical counts in `start` and `target`, and
/// (b) no basis law of the [`InvariantOracle`] may weigh the two
/// configurations differently.  Either failing proves unreachability in
/// `O(species)` per law, without building an arena.  Only when both pass is
/// the reachable space explored exhaustively.
///
/// The verdict is always identical to [`target_reachable_exhaustive`]; the
/// oracle only ever converts an expensive `false` into a cheap one.
///
/// # Errors
///
/// Returns [`CrnError::SearchLimitExceeded`] if a (non-refuted) exploration
/// exceeds `max_configurations`.
pub fn target_reachable(
    crn: &Crn,
    start: &Configuration,
    target: &Configuration,
    max_configurations: usize,
) -> Result<bool, CrnError> {
    let compiled = crate::compiled::CompiledCrn::compile(crn);
    let stride = arena::stride_for(arena::stride_for(compiled.stride(), start), target);
    let start_dense = arena::to_dense(start, stride).expect("stride covers start");
    let target_dense = arena::to_dense(target, stride).expect("stride covers target");
    // Species at indices past the compiled stride appear in no reaction, so
    // their counts are constant along every trajectory.
    if start_dense[compiled.stride()..] != target_dense[compiled.stride()..] {
        return Ok(false);
    }
    let oracle = InvariantOracle::new(&compiled);
    if oracle.refutes(&start_dense, &target_dense).is_some() {
        return Ok(false);
    }
    let mut state = ExploreState::new();
    state.run(
        &compiled,
        stride,
        &start_dense,
        ReachabilityLimits { max_configurations },
    )?;
    Ok(state.arena.lookup(&target_dense).is_some())
}

/// [`target_reachable`] without the static refutations: always explores.
/// Kept as the differential-testing baseline for the oracle (a refutation
/// must never contradict this function) and as the E17 comparison point.
///
/// # Errors
///
/// Returns [`CrnError::SearchLimitExceeded`] if the exploration exceeds
/// `max_configurations`.
pub fn target_reachable_exhaustive(
    crn: &Crn,
    start: &Configuration,
    target: &Configuration,
    max_configurations: usize,
) -> Result<bool, CrnError> {
    let compiled = crate::compiled::CompiledCrn::compile(crn);
    let stride = arena::stride_for(arena::stride_for(compiled.stride(), start), target);
    let start_dense = arena::to_dense(start, stride).expect("stride covers start");
    let target_dense = arena::to_dense(target, stride).expect("stride covers target");
    let mut state = ExploreState::new();
    state.run(
        &compiled,
        stride,
        &start_dense,
        ReachabilityLimits { max_configurations },
    )?;
    Ok(state.arena.lookup(&target_dense).is_some())
}

/// All configurations reachable from `start` (convenience wrapper).
///
/// # Errors
///
/// Propagates the errors of [`ReachabilityGraph::explore`].
pub fn reachable_configurations(
    crn: &Crn,
    start: &Configuration,
    max_configurations: usize,
) -> Result<Vec<Configuration>, CrnError> {
    Ok(
        ReachabilityGraph::explore(crn, start, ReachabilityLimits { max_configurations })?
            .configurations()
            .to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use crate::reaction::Reaction;
    use proptest::prelude::*;

    #[test]
    fn double_crn_stably_computes_2x() {
        let double = examples::double_crn();
        for x in 0..6u64 {
            let v = check_stable_computation(&double, &NVec::from(vec![x]), 2 * x, 10_000).unwrap();
            assert!(v.is_correct(), "failed at x={x}: {:?}", v.failure);
            assert_eq!(v.max_output_reachable, 2 * x);
            assert_eq!(v.stable_outputs, vec![2 * x]);
        }
    }

    #[test]
    fn min_crn_stably_computes_min() {
        let min = examples::min_crn();
        for x1 in 0..5u64 {
            for x2 in 0..5u64 {
                let v =
                    check_stable_computation(&min, &NVec::from(vec![x1, x2]), x1.min(x2), 10_000)
                        .unwrap();
                assert!(v.is_correct());
            }
        }
    }

    #[test]
    fn min_crn_rejects_wrong_value() {
        let min = examples::min_crn();
        let v = check_stable_computation(&min, &NVec::from(vec![2, 3]), 3, 10_000).unwrap();
        assert!(!v.is_correct());
        assert!(v.failure.is_some());
    }

    #[test]
    fn max_crn_stably_computes_max_despite_overshoot() {
        let max = examples::max_crn();
        for x1 in 0..4u64 {
            for x2 in 0..4u64 {
                let v =
                    check_stable_computation(&max, &NVec::from(vec![x1, x2]), x1.max(x2), 50_000)
                        .unwrap();
                assert!(v.is_correct(), "failed at ({x1},{x2}): {:?}", v.failure);
                // The overshoot phenomenon from Section 1.2: the output can
                // transiently exceed max(x1,x2) (it can reach x1+x2).
                assert_eq!(v.max_output_reachable, x1 + x2);
            }
        }
    }

    #[test]
    fn check_on_box_passes_for_min() {
        let min = examples::min_crn();
        let bad = check_on_box(&min, |x| x[0].min(x[1]), 3, 10_000).unwrap();
        assert!(bad.is_none());
    }

    #[test]
    fn check_on_box_reports_failure() {
        // X1 + X2 -> Y does NOT compute max; the box check finds the failure.
        let min = examples::min_crn();
        let bad = check_on_box(&min, |x| x[0].max(x[1]), 2, 10_000).unwrap();
        let verdict = bad.expect("must fail somewhere");
        assert!(!verdict.is_correct());
    }

    #[test]
    fn sharded_box_check_is_deterministic_and_matches_sequential() {
        let min = examples::min_crn();
        let sequential = check_on_box_with_workers(&min, |x| x[0].max(x[1]), 3, 10_000, 1).unwrap();
        for workers in [2usize, 4, 8] {
            let sharded =
                check_on_box_with_workers(&min, |x| x[0].max(x[1]), 3, 10_000, workers).unwrap();
            assert_eq!(sharded, sequential, "workers={workers}");
        }
        // The failing input must be the lexicographically first one: (0, 1).
        assert_eq!(
            sequential.unwrap().input,
            NVec::from(vec![0, 1]),
            "lexicographically-first failure"
        );
    }

    #[test]
    fn sharded_box_check_propagates_the_first_error() {
        let double = examples::double_crn();
        // Every input from x=3 up exceeds the tiny limit; the error reported
        // must be the one at the first such input regardless of sharding.
        let sequential = check_on_box_with_workers(&double, |x| 2 * x[0], 8, 4, 1).unwrap_err();
        let sharded = check_on_box_with_workers(&double, |x| 2 * x[0], 8, 4, 4).unwrap_err();
        assert_eq!(sharded, sequential);
    }

    #[test]
    fn pruned_box_check_matches_reference_on_figure_examples() {
        // Passing box (max overshoots transiently but recovers everywhere).
        let max = examples::max_crn();
        assert_eq!(
            check_on_box(&max, |x| x[0].max(x[1]), 3, 100_000).unwrap(),
            check_on_box_reference(&max, |x| x[0].max(x[1]), 3, 100_000).unwrap()
        );
        // Wrong function: 2x+1 is statically refuted at every point (the law
        // 2X + Y caps the output at 2x), so the parallel scan only ever
        // materializes the winner — which must be bit-identical to the
        // reference scan's lexicographically-first failure.
        let double = examples::double_crn();
        let pruned = check_on_box(&double, |x| 2 * x[0] + 1, 4, 10_000).unwrap();
        let reference = check_on_box_reference(&double, |x| 2 * x[0] + 1, 4, 10_000).unwrap();
        assert_eq!(pruned, reference);
        assert_eq!(pruned.unwrap().input, NVec::from(vec![0]));
        // Failing box with the failure mid-box.
        let min = examples::min_crn();
        assert_eq!(
            check_on_box(&min, |x| x[0].max(x[1]), 3, 10_000).unwrap(),
            check_on_box_reference(&min, |x| x[0].max(x[1]), 3, 10_000).unwrap()
        );
    }

    #[test]
    fn pruned_box_check_matches_reference_on_errors() {
        // The search limit blows mid-box; pruned and reference scans must
        // surface the identical (lexicographically-first) error.
        let double = examples::double_crn();
        let pruned = check_on_box_with_workers(&double, |x| 2 * x[0], 8, 4, 4).unwrap_err();
        let reference = check_on_box_reference(&double, |x| 2 * x[0], 8, 4).unwrap_err();
        assert_eq!(pruned, reference);
    }

    #[test]
    fn pruned_box_check_matches_reference_on_cyclic_crns() {
        // `X -> Y; Y -> X` cycles forever, so no positive input ever
        // stabilizes: the T-invariant acyclicity certificate does not apply
        // and the pruned scan takes the fused exploration-plus-Tarjan
        // decision path.  Both the failing box and the passing one (the
        // identity-on-zero slice) must match the reference bit for bit.
        let mut crn = Crn::new();
        crn.parse_reaction("X -> Y").unwrap();
        crn.parse_reaction("Y -> X").unwrap();
        let flip = FunctionCrn::with_named_roles(crn, &["X"], "Y", None).expect("valid roles");
        let pruned = check_on_box(&flip, |x| x[0], 3, 10_000).unwrap();
        let reference = check_on_box_reference(&flip, |x| x[0], 3, 10_000).unwrap();
        assert_eq!(pruned, reference);
        assert_eq!(
            pruned.expect("x = 1 never stabilizes").input,
            NVec::from(vec![1])
        );
        // A cyclic CRN where every box point passes: X converts to Y once
        // and the A/B flip-flop is debris that never touches the output —
        // every sink component is reachable and output-stable.
        let mut crn = Crn::new();
        crn.parse_reaction("X -> Y + A").unwrap();
        crn.parse_reaction("A -> B").unwrap();
        crn.parse_reaction("B -> A").unwrap();
        let id = FunctionCrn::with_named_roles(crn, &["X"], "Y", None).expect("valid roles");
        let pruned = check_on_box(&id, |x| x[0], 3, 10_000).unwrap();
        let reference = check_on_box_reference(&id, |x| x[0], 3, 10_000).unwrap();
        assert_eq!(pruned, reference);
        assert!(pruned.is_none());
    }

    /// The two-reaction sum gadget `X1 -> Y; X2 -> Y`: symmetric in its
    /// inputs, acyclic, and conserving `X1 + X2 + Y` — which leaves the
    /// input-law rank at 1 < 2, so the cross-point cache stays enabled.
    fn sum_crn() -> FunctionCrn {
        let mut crn = Crn::new();
        crn.parse_reaction("X1 -> Y").unwrap();
        crn.parse_reaction("X2 -> Y").unwrap();
        FunctionCrn::with_named_roles(crn, &["X1", "X2"], "Y", None).expect("valid roles")
    }

    #[test]
    fn box_stats_count_symmetry_cache_and_static_work() {
        let sum = sum_crn();
        let f = |x: &NVec| x[0] + x[1];
        let (result, stats) = check_on_box_with_stats(&sum, f, 2, 10_000, 1);
        assert_eq!(result.unwrap(), None, "the sum CRN computes the sum");
        assert_eq!(stats.points, 9);
        // The input swap is detected, so the strict lower triangle of the
        // box — (1,0), (2,0), (2,1) — replays the verdicts of its mirror
        // images.
        assert_eq!(stats.symmetry_skipped, 3);
        assert_eq!(stats.evaluated + stats.symmetry_skipped, stats.points);
        // Later points stop their expansions on summaries cached by earlier
        // ones (e.g. (1,1) hits territory summarized under (0,1) and (0,2)).
        assert!(stats.cache_hits > 0, "no cache hits: {stats:?}");
        assert!(stats.cache_entries > 0);
        assert!(stats.cache_lookups >= stats.cache_hits);
        assert!(stats.cache_hit_rate() > 0.0);
        // Every evaluated point is accounted to exactly one engine pass.
        assert_eq!(
            stats.static_pass + stats.static_fail + stats.decided,
            stats.evaluated
        );
        // The sharded sweep agrees with the sequential one.
        let (sharded, _) = check_on_box_with_stats(&sum, f, 2, 10_000, 3);
        assert_eq!(sharded.unwrap(), None);
    }

    #[test]
    fn truncated_explorations_never_populate_the_cache() {
        // With a limit of 2 configurations: (0,0) passes statically, (0,1)
        // explores exactly 2 configurations and publishes their summaries,
        // (1,0) is a symmetry replay of (0,1), and (1,1) — 4 reachable
        // configurations — blows the limit mid-exploration.  The truncated
        // run must discard its partial summaries, leaving exactly the two
        // entries (0,1) published, and the sweep must surface the identical
        // (lexicographically-first) error the reference scan produces.
        let sum = sum_crn();
        let f = |x: &NVec| x[0] + x[1];
        let (result, stats) = check_on_box_with_stats(&sum, f, 1, 2, 1);
        let reference = check_on_box_reference(&sum, f, 1, 2);
        assert_eq!(result, reference);
        result.unwrap_err();
        assert_eq!(stats.symmetry_skipped, 1);
        assert_eq!(
            stats.cache_entries, 2,
            "the truncated run at (1,1) must not leak summaries: {stats:?}"
        );
    }

    #[test]
    fn symmetry_replay_failures_are_byte_identical() {
        // The max CRN with the *wrong* expected function: failures must
        // surface with byte-identical messages through the orbit-reduced
        // scan, at every worker count.
        let max = examples::max_crn();
        let symmetric = |x: &NVec| x[0].min(x[1]);
        let asymmetric = |x: &NVec| x[0];
        let reference_sym = check_on_box_reference(&max, symmetric, 3, 100_000);
        let reference_asym = check_on_box_reference(&max, asymmetric, 3, 100_000);
        for workers in 1..=4 {
            assert_eq!(
                check_on_box_with_workers(&max, symmetric, 3, 100_000, workers),
                reference_sym,
                "workers={workers}"
            );
            assert_eq!(
                check_on_box_with_workers(&max, asymmetric, 3, 100_000, workers),
                reference_asym,
                "workers={workers}"
            );
        }
        let verdict = reference_sym.unwrap().expect("min is not max");
        assert_eq!(verdict.input, NVec::from(vec![0, 1]));
        assert!(verdict.failure.is_some());
    }

    #[test]
    fn max_output_reachable_detects_overshoot() {
        let max = examples::max_crn();
        let m = max_output_reachable(&max, &NVec::from(vec![2, 3]), 50_000).unwrap();
        assert_eq!(m, 5);
    }

    #[test]
    fn search_limit_is_enforced() {
        let double = examples::double_crn();
        let err = check_stable_computation(&double, &NVec::from(vec![30]), 60, 5).unwrap_err();
        assert!(matches!(err, CrnError::SearchLimitExceeded { .. }));
    }

    #[test]
    fn reachable_configurations_of_double() {
        let double = examples::double_crn();
        let start = double.initial_configuration(&NVec::from(vec![2])).unwrap();
        let reach = reachable_configurations(double.crn(), &start, 1000).unwrap();
        // {2X}, {1X,2Y}, {0X,4Y}
        assert_eq!(reach.len(), 3);
    }

    #[test]
    fn contains_answers_through_the_arena_index() {
        let double = examples::double_crn();
        let start = double.initial_configuration(&NVec::from(vec![2])).unwrap();
        let graph = ReachabilityGraph::explore(double.crn(), &start, ReachabilityLimits::default())
            .unwrap();
        assert!(graph.contains(&start));
        let x = double.roles().inputs[0];
        let y = double.output();
        assert!(graph.contains(&Configuration::from_counts(vec![(x, 1), (y, 2)])));
        assert!(graph.contains(&Configuration::from_counts(vec![(y, 4)])));
        assert!(!graph.contains(&Configuration::from_counts(vec![(y, 3)])));
        // A species the exploration never saw cannot be contained.
        assert!(!graph.contains(&Configuration::from_counts(vec![(Species(99), 1)])));
    }

    #[test]
    fn reactions_with_foreign_species_do_not_panic() {
        // `Crn::add_reaction` does not validate that reaction species belong
        // to the CRN's interner; the dense stride must still cover them (the
        // seed's sparse engine accepted such CRNs without crashing).
        let mut crn = Crn::new();
        let a = crn.add_species("A");
        let foreign = Species(5);
        crn.add_reaction(Reaction::new(vec![(a, 1)], vec![(foreign, 1)]));
        let start = Configuration::from_counts(vec![(a, 2)]);
        let reach = reachable_configurations(&crn, &start, 100).unwrap();
        // {2A}, {1A, 1F}, {2F}
        assert_eq!(reach.len(), 3);
        let graph =
            ReachabilityGraph::explore(&crn, &start, ReachabilityLimits::default()).unwrap();
        assert!(graph.contains(&Configuration::from_counts(vec![(foreign, 2)])));
    }

    #[test]
    fn roles_with_foreign_species_do_not_panic() {
        // `FunctionCrn::new` validates only role distinctness, so a Species
        // interned by a *larger* CRN can serve as a role of a smaller one;
        // the engine's stride must cover it (the seed engine returned a
        // verdict here rather than crashing).
        let mut crn = Crn::new();
        crn.parse_reaction("A -> A").unwrap();
        let f = FunctionCrn::new(
            crn,
            crate::function::Roles {
                inputs: vec![Species(7)],
                output: Species(9),
                leader: None,
            },
        )
        .unwrap();
        let x = NVec::from(vec![2]);
        let fast = check_stable_computation(&f, &x, 0, 1_000).unwrap();
        let slow = oracle::check_stable_computation_naive(&f, &x, 0, 1_000).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn min1x_leader_crn_is_oblivious_and_correct() {
        let crn = examples::min1_leader_crn();
        assert!(crn.is_output_oblivious());
        for x in 0..5u64 {
            let expected = x.min(1);
            let v = check_stable_computation(&crn, &NVec::from(vec![x]), expected, 10_000).unwrap();
            assert!(v.is_correct());
        }
    }

    #[test]
    fn min1x_leaderless_crn_is_correct_but_not_oblivious() {
        let crn = examples::min1_leaderless_crn();
        assert!(!crn.is_output_oblivious());
        for x in 0..5u64 {
            let expected = x.min(1);
            let v = check_stable_computation(&crn, &NVec::from(vec![x]), expected, 10_000).unwrap();
            assert!(v.is_correct());
        }
    }

    #[test]
    fn scc_engine_matches_oracle_on_figure_examples() {
        // E2 parity: the SCC engine's verdicts must be bit-identical to the
        // seed fixpoint engine on the Figure 1/2 examples, passing or failing.
        let cases: Vec<(FunctionCrn, NVec, u64)> = vec![
            (examples::double_crn(), NVec::from(vec![4]), 8),
            (examples::min_crn(), NVec::from(vec![3, 5]), 3),
            (examples::min_crn(), NVec::from(vec![2, 3]), 3), // failing
            (examples::max_crn(), NVec::from(vec![2, 3]), 3),
            (examples::max_crn(), NVec::from(vec![2, 3]), 5), // failing
            (examples::min1_leader_crn(), NVec::from(vec![4]), 1),
            (examples::min1_leaderless_crn(), NVec::from(vec![0]), 0),
        ];
        for (crn, x, expected) in &cases {
            let fast = check_stable_computation(crn, x, *expected, 100_000);
            let slow = oracle::check_stable_computation_naive(crn, x, *expected, 100_000);
            assert_eq!(fast, slow, "diverged on input {x}");
        }
        // Box-level parity, including a failing box.
        let min = examples::min_crn();
        assert_eq!(
            check_on_box(&min, |x| x[0].min(x[1]), 3, 10_000).unwrap(),
            oracle::check_on_box_naive(&min, |x| x[0].min(x[1]), 3, 10_000).unwrap()
        );
        assert_eq!(
            check_on_box(&min, |x| x[0].max(x[1]), 2, 10_000).unwrap(),
            oracle::check_on_box_naive(&min, |x| x[0].max(x[1]), 2, 10_000).unwrap()
        );
        let max = examples::max_crn();
        assert_eq!(
            check_on_box(&max, |x| x[0].max(x[1]), 3, 100_000).unwrap(),
            oracle::check_on_box_naive(&max, |x| x[0].max(x[1]), 3, 100_000).unwrap()
        );
    }

    /// Builds a small arbitrary CRN over species `{X, Y, Z}` from sampled
    /// stoichiometries: input `X`, output `Y`.
    fn random_crn(stoich: &[Vec<u64>]) -> FunctionCrn {
        let mut crn = Crn::new();
        let x = crn.add_species("X");
        let y = crn.add_species("Y");
        let z = crn.add_species("Z");
        let species = [x, y, z];
        for row in stoich {
            let reactants: Vec<(Species, u64)> = species
                .iter()
                .zip(&row[0..3])
                .map(|(&s, &c)| (s, c))
                .collect();
            let products: Vec<(Species, u64)> = species
                .iter()
                .zip(&row[3..6])
                .map(|(&s, &c)| (s, c))
                .collect();
            crn.add_reaction(Reaction::new(reactants, products));
        }
        FunctionCrn::with_named_roles(crn, &["X"], "Y", None).expect("valid roles")
    }

    #[test]
    fn oracle_refutes_max_overshoot_statically() {
        // From I_(x1,x2) of the max CRN, the pure configuration {Y: x1+x2}
        // is unreachable whenever x1+x2 > 0 (the Z/K debris cannot all be
        // cleared while keeping every Y), and the laws X1+Y-Z2-K and
        // X2+Y-Z1-K prove it without exploration.
        let max = examples::max_crn();
        let compiled = crate::compiled::CompiledCrn::compile(max.crn());
        let oracle = InvariantOracle::new(&compiled);
        assert_eq!(oracle.laws().len(), 2);
        let y = max.output();
        for x1 in 0..4u64 {
            for x2 in 0..4u64 {
                let input = NVec::from(vec![x1, x2]);
                let start = max.initial_configuration(&input).unwrap();
                let target = Configuration::from_counts(vec![(y, x1 + x2)]);
                let start_dense = arena::to_dense(&start, compiled.stride()).unwrap();
                let target_dense = arena::to_dense(&target, compiled.stride()).unwrap();
                let refuted = oracle.refutes(&start_dense, &target_dense).is_some();
                assert_eq!(refuted, x1 + x2 > 0, "at ({x1},{x2})");
                // Bit-identical verdicts with and without the oracle.
                let fast = target_reachable(max.crn(), &start, &target, 100_000).unwrap();
                let slow =
                    target_reachable_exhaustive(max.crn(), &start, &target, 100_000).unwrap();
                assert_eq!(fast, slow, "at ({x1},{x2})");
                assert_eq!(fast, x1 + x2 == 0, "at ({x1},{x2})");
            }
        }
    }

    #[test]
    fn target_reachable_finds_reachable_targets() {
        let double = examples::double_crn();
        let start = double.initial_configuration(&NVec::from(vec![3])).unwrap();
        let x = double.roles().inputs[0];
        let y = double.output();
        for k in 0..=3u64 {
            let target = Configuration::from_counts(vec![(x, 3 - k), (y, 2 * k)]);
            assert!(target_reachable(double.crn(), &start, &target, 1_000).unwrap());
        }
        // {Y: 3} is refuted by the law 2X + Y: 2·3 + 0 = 6 ≠ 2·0 + 3.
        let odd = Configuration::from_counts(vec![(y, 3)]);
        let compiled = crate::compiled::CompiledCrn::compile(double.crn());
        let oracle = InvariantOracle::new(&compiled);
        let s = arena::to_dense(&start, compiled.stride()).unwrap();
        let t = arena::to_dense(&odd, compiled.stride()).unwrap();
        assert!(oracle.refutes(&s, &t).is_some());
        assert!(!target_reachable(double.crn(), &start, &odd, 1_000).unwrap());
    }

    #[test]
    fn foreign_species_mismatch_is_refuted_without_exploring() {
        // A species no reaction touches differs between start and target: the
        // constant-species precheck refutes it even with a limit of 1.
        let double = examples::double_crn();
        let start = double.initial_configuration(&NVec::from(vec![2])).unwrap();
        let mut target = start.clone();
        target.add(Species(40), 1);
        assert!(!target_reachable(double.crn(), &start, &target, 1).unwrap());
    }

    /// Builds a CRN over `{X1, X2, Y, Z}` that is symmetric in its inputs by
    /// construction: each sampled reaction is added twice, once as drawn and
    /// once with X1 and X2 swapped, so the input swap is always an
    /// automorphism of the union.
    fn symmetric_random_crn(stoich: &[Vec<u64>]) -> FunctionCrn {
        let mut crn = Crn::new();
        let x1 = crn.add_species("X1");
        let x2 = crn.add_species("X2");
        let y = crn.add_species("Y");
        let z = crn.add_species("Z");
        for row in stoich {
            for species in [[x1, x2, y, z], [x2, x1, y, z]] {
                let reactants: Vec<(Species, u64)> = species
                    .iter()
                    .zip(&row[0..4])
                    .map(|(&s, &c)| (s, c))
                    .collect();
                let products: Vec<(Species, u64)> = species
                    .iter()
                    .zip(&row[4..8])
                    .map(|(&s, &c)| (s, c))
                    .collect();
                crn.add_reaction(Reaction::new(reactants, products));
            }
        }
        FunctionCrn::with_named_roles(crn, &["X1", "X2"], "Y", None).expect("valid roles")
    }

    proptest! {
        /// Orbit-reduced sweeps on CRNs with forced input symmetry return
        /// outcomes bit-identical to the reference scan — for symmetric
        /// *and* asymmetric expected functions (the latter disables most
        /// replays through the `f(y) == f(x)` guard), sequential and
        /// sharded.  On an all-pass box the swap must actually have been
        /// detected: exactly the strict lower triangle is replayed.
        #[test]
        fn symmetric_box_check_matches_reference(
            stoich in proptest::collection::vec(proptest::collection::vec(0u64..3, 8), 1..3),
            a in 0u64..3,
            b in 0u64..2,
            bound in 0u64..3,
        ) {
            let crn = symmetric_random_crn(&stoich);
            let symmetric = |x: &NVec| a * (x[0] + x[1]) + b;
            let reference = check_on_box_reference(&crn, symmetric, bound, 300);
            let (sequential, stats) = check_on_box_with_stats(&crn, symmetric, bound, 300, 1);
            prop_assert_eq!(&sequential, &reference);
            let sharded = check_on_box_with_workers(&crn, symmetric, bound, 300, 3);
            prop_assert_eq!(&sharded, &reference);
            if matches!(&sequential, Ok(None)) {
                prop_assert_eq!(stats.symmetry_skipped, bound * (bound + 1) / 2);
                prop_assert_eq!(stats.evaluated + stats.symmetry_skipped, stats.points);
            }
            let asymmetric = |x: &NVec| a * x[0] + b;
            let reference = check_on_box_reference(&crn, asymmetric, bound, 300);
            let sequential = check_on_box_with_workers(&crn, asymmetric, bound, 300, 1);
            prop_assert_eq!(&sequential, &reference);
            let sharded = check_on_box_with_workers(&crn, asymmetric, bound, 300, 3);
            prop_assert_eq!(&sharded, &reference);
        }

        /// Differential soundness of the invariant oracle: whenever it
        /// refutes a start/target pair of a random CRN, the exhaustive
        /// engine must agree the target is unreachable — and with or
        /// without the oracle the final verdicts are bit-identical.
        #[test]
        fn invariant_oracle_agrees_with_exhaustive_search(
            stoich in proptest::collection::vec(proptest::collection::vec(0u64..3, 6), 1..4),
            x in 0u64..5,
            target_counts in proptest::collection::vec(0u64..5, 3),
        ) {
            let crn = random_crn(&stoich);
            let start = crn.initial_configuration(&NVec::from(vec![x])).unwrap();
            let species = [
                crn.roles().inputs[0],
                crn.output(),
                crn.crn().species_named("Z").unwrap(),
            ];
            let target = Configuration::from_counts(
                species
                    .iter()
                    .zip(&target_counts)
                    .map(|(&s, &c)| (s, c))
                    .collect::<Vec<_>>(),
            );
            let fast = target_reachable(crn.crn(), &start, &target, 5_000);
            let slow = target_reachable_exhaustive(crn.crn(), &start, &target, 5_000);
            match (&fast, &slow) {
                // The oracle may refute without exploring, so it can succeed
                // where the exhaustive engine blows the limit; it must never
                // claim reachable in that case.
                (Ok(v), Err(_)) => prop_assert!(!v),
                _ => prop_assert_eq!(fast, slow),
            }
            // A refutation must never contradict a completed exploration.
            let compiled = crate::compiled::CompiledCrn::compile(crn.crn());
            let oracle = InvariantOracle::new(&compiled);
            let stride = arena::stride_for(compiled.stride(), &start);
            let s = arena::to_dense(&start, stride).unwrap();
            let t = arena::to_dense(&target, stride).unwrap();
            if oracle.refutes(&s, &t).is_some() {
                if let Ok(reachable) = slow {
                    prop_assert!(!reachable, "oracle refuted a reachable target");
                }
            }
        }

        /// Additivity of reachability (Section 2.2): if A ->* B then A + C ->* B + C.
        #[test]
        fn reachability_is_additive(x in 0u64..5, extra in 0u64..4) {
            let double = examples::double_crn();
            let input = NVec::from(vec![x]);
            let start = double.initial_configuration(&input).unwrap();
            let reach = reachable_configurations(double.crn(), &start, 10_000).unwrap();
            // Add `extra` copies of the input species to both sides.
            let x_species = double.roles().inputs[0];
            let mut addition = Configuration::new();
            addition.add(x_species, extra);
            let start_plus = start.plus(&addition);
            let reach_plus = reachable_configurations(double.crn(), &start_plus, 10_000).unwrap();
            for b in &reach {
                prop_assert!(reach_plus.contains(&b.plus(&addition)));
            }
        }

        /// The tentpole determinism contract: the analysis-pruned box scan
        /// (static pass/fail verdicts plus direct-indexed exploration) and
        /// the unpruned reference scan return bit-identical outcomes on
        /// arbitrary small CRNs — same verdict fields, same
        /// lexicographically-first failure, same errors.
        #[test]
        fn pruned_box_check_matches_reference(
            stoich in proptest::collection::vec(proptest::collection::vec(0u64..3, 6), 1..4),
            a in 0u64..3,
            b in 0u64..2,
            bound in 0u64..4,
        ) {
            let crn = random_crn(&stoich);
            let f = |x: &NVec| a * x[0] + b;
            let reference = check_on_box_reference(&crn, f, bound, 300);
            let sequential = check_on_box_with_workers(&crn, f, bound, 300, 1);
            prop_assert_eq!(&sequential, &reference);
            let sharded = check_on_box_with_workers(&crn, f, bound, 300, 3);
            prop_assert_eq!(&sharded, &reference);
        }

        /// Differential check: on arbitrary small CRNs the SCC engine and the
        /// naive fixpoint oracle return identical verdicts — or identical
        /// errors when the reachable space blows past the search limit.
        #[test]
        fn scc_engine_agrees_with_fixpoint_oracle(
            stoich in proptest::collection::vec(proptest::collection::vec(0u64..3, 6), 1..4),
            x in 0u64..5,
            expected in 0u64..5,
        ) {
            let crn = random_crn(&stoich);
            let input = NVec::from(vec![x]);
            let fast = check_stable_computation(&crn, &input, expected, 2_000);
            let slow = oracle::check_stable_computation_naive(&crn, &input, expected, 2_000);
            prop_assert_eq!(fast, slow);
        }
    }
}
